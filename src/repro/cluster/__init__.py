"""Cluster membership as a first-class, epoch'd abstraction.

The :class:`~repro.cluster.view.ClusterView` wraps the shared
:class:`~repro.core.types.ClusterMap` with a ring generation, a
reshard descriptor and an explicit transition log, so that every
reconfiguration — failover repairs, replica joins, §V transitions,
and online resharding — is a named, versioned *view transition*
rather than an ad-hoc epoch bump.  The
:class:`~repro.cluster.migrate.MigrationPump` drives the per-key
copy phase of a reshard on top of the shared one-in-flight
:class:`~repro.core.controlet.Pump` primitive.
"""

from repro.cluster.migrate import MigrationPump
from repro.cluster.view import RESHARD_ADD, RESHARD_REMOVE, ClusterView, ViewTransition

__all__ = [
    "ClusterView",
    "ViewTransition",
    "MigrationPump",
    "RESHARD_ADD",
    "RESHARD_REMOVE",
]
