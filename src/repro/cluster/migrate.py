"""Background per-key migration pump for online resharding.

A :class:`MigrationPump` wraps the shared one-in-flight
:class:`~repro.core.controlet.Pump` primitive with the bookkeeping the
reshard protocol needs: a key census (``feed`` + ``seal``), per-key
outcome counters, and a completion callback that fires exactly once
when every fed key has been copied or skipped.

The *issue* callable owns the actual copy — read the key at the source
authority, ship a rid-stamped idempotent ``migrate_put`` to the
new-ring owner — and reports back through the ``complete(outcome)``
continuation it is handed.  Outcomes:

``"moved"``
    the destination applied the copy;
``"skipped"``
    the destination (or its lock/log authority) reported the key dirty
    — a client wrote it during the window, so the copy would clobber a
    newer value — or the key vanished at the source;
``"retry"``
    transient failure (timeout); the key is requeued at the *front* so
    FIFO retry keeps the same rid and stays idempotent.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from repro.core.controlet import Pump

__all__ = ["MigrationPump"]

#: outcome labels an issue callable may report.
OUTCOMES = ("moved", "skipped", "retry")


class MigrationPump:
    """Drives one shard's side of a reshard key migration."""

    def __init__(
        self,
        issue: Callable[[str, Callable[[str], None]], None],
        on_done: Optional[Callable[[], None]] = None,
    ):
        self._issue = issue
        self._on_done = on_done
        self.pump = Pump(self._issue_one)
        self.total = 0
        self.moved = 0
        self.skipped = 0
        self.retries = 0
        self._sealed = False
        self._finished = False

    # -- census ----------------------------------------------------------
    def feed(self, keys: Iterable[str]) -> None:
        """Queue keys for copy (issued one at a time, FIFO)."""
        for key in keys:
            self.total += 1
            self.pump.push(key)

    def seal(self) -> None:
        """No more keys will be fed; completion may now fire."""
        self._sealed = True
        self._maybe_finish()

    @property
    def finished(self) -> bool:
        return self._finished

    # -- pump glue -------------------------------------------------------
    def _issue_one(self, key: str, done: Callable[[], None]) -> None:
        def complete(outcome: str) -> None:
            if outcome == "retry":
                self.retries += 1
                self.pump.requeue_front([key])
            elif outcome == "skipped":
                self.skipped += 1
            else:
                self.moved += 1
            done()
            self._maybe_finish()

        self._issue(key, complete)

    def _maybe_finish(self) -> None:
        if self._finished or not self._sealed:
            return
        if self.pump.busy or len(self.pump):
            return
        self._finished = True
        if self._on_done is not None:
            self._on_done()

    def stats(self) -> dict:
        return {
            "total": self.total,
            "moved": self.moved,
            "skipped": self.skipped,
            "retries": self.retries,
        }
