"""The epoch'd cluster view: membership + ring generation + transition log.

A :class:`ClusterView` owns the authoritative routing state of one
coordinator.  It *wraps* (never copies) the deployment's shared
:class:`~repro.core.types.ClusterMap` so existing consumers that hold
the map object — the deployment harness, the model checker's client,
tests poking ``dep.map`` — keep observing every change, while all
mutation now flows through named transitions:

``commit(kind, ...)``
    bump the map epoch and append a :class:`ViewTransition` to the
    bounded transition log — the only sanctioned way to advance the
    epoch.
``begin_reshard`` / ``commit_reshard``
    open and close the double-ring window: during a reshard the view
    carries *both* ring member lists (``old``/``new``) plus the ring
    generation, and every config broadcast ships them so controlets
    and clients route against the same pair of rings.
``install(state)``
    epoch-fenced adoption of a peer view (standby sync): a stale
    snapshot — equal or older epoch — is ignored entirely.

Everything serializes through ``to_dict``/``from_dict`` so views
travel in coordinator sync messages and client refreshes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.types import ClusterMap
from repro.errors import ConfigError

__all__ = ["ClusterView", "ViewTransition", "RESHARD_ADD", "RESHARD_REMOVE"]

RESHARD_ADD = "add"
RESHARD_REMOVE = "remove"

#: bounded transition history — enough for any soak's worth of
#: failovers while keeping snapshots and sync payloads small.
LOG_CAP = 64


@dataclass(frozen=True)
class ViewTransition:
    """One named membership change, stamped with the epoch it produced."""

    kind: str
    epoch: int
    detail: str = ""

    def to_dict(self) -> Dict[str, object]:
        return {"kind": self.kind, "epoch": self.epoch, "detail": self.detail}

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "ViewTransition":
        return cls(str(d["kind"]), int(d["epoch"]), str(d.get("detail", "")))


class ClusterView:
    """Versioned membership state: map + ring generation + reshard window."""

    def __init__(self, cluster_map: Optional[ClusterMap] = None):
        self.map = cluster_map if cluster_map is not None else ClusterMap()
        #: bumped once per *completed* reshard begin — both rings of a
        #: generation share it, so "which ring pair" is one integer.
        self.ring_gen = 0
        #: open double-ring window, or None when the topology is settled:
        #: ``{"action", "shard", "gen", "old", "new"}`` with old/new the
        #: sorted shard-id member lists of the two rings.
        self.reshard: Optional[Dict[str, object]] = None
        self.log: List[ViewTransition] = []
        if self.map.shards:
            self._append("bootstrap", ",".join(self.map.shard_ids()))

    # -- epoch bookkeeping -------------------------------------------------
    @property
    def epoch(self) -> int:
        return self.map.epoch

    def _append(self, kind: str, detail: str = "") -> ViewTransition:
        t = ViewTransition(kind, self.map.epoch, detail)
        if len(self.log) >= LOG_CAP:
            del self.log[: len(self.log) - LOG_CAP + 1]
        self.log.append(t)
        return t

    def commit(self, kind: str, detail: str = "") -> ViewTransition:
        """Advance the epoch with a named transition (the only bump path)."""
        self.map.bump()
        return self._append(kind, detail)

    def note(self, kind: str, detail: str = "") -> ViewTransition:
        """Record a transition that does not re-version routing state
        (e.g. bootstrap, observational markers)."""
        return self._append(kind, detail)

    # -- resharding --------------------------------------------------------
    def begin_reshard(self, action: str, shard_id: str) -> ViewTransition:
        """Open the double-ring window: old ring = the current members,
        new ring = members with ``shard_id`` added/removed."""
        if action not in (RESHARD_ADD, RESHARD_REMOVE):
            raise ConfigError(f"unknown reshard action {action!r}")
        if self.reshard is not None:
            raise ConfigError("reshard already in progress")
        old = self.map.shard_ids()
        if action == RESHARD_ADD:
            if shard_id in old:
                raise ConfigError(f"shard {shard_id!r} already present")
            new = sorted(old + [shard_id])
        else:
            if shard_id not in old:
                raise ConfigError(f"shard {shard_id!r} not present")
            if len(old) < 2:
                raise ConfigError("cannot remove the last shard")
            new = [s for s in old if s != shard_id]
        self.ring_gen += 1
        self.reshard = {
            "action": action,
            "shard": shard_id,
            "gen": self.ring_gen,
            "old": old,
            "new": new,
        }
        return self.commit("reshard-begin", f"{action}:{shard_id}@g{self.ring_gen}")

    def commit_reshard(self) -> ViewTransition:
        """Close the window: the new ring becomes the only ring."""
        if self.reshard is None:
            raise ConfigError("no reshard in progress")
        desc, self.reshard = self.reshard, None
        return self.commit("reshard-commit", f"{desc['action']}:{desc['shard']}@g{desc['gen']}")

    def ring_members(self) -> List[str]:
        """Members of the *current authoritative* ring (new during a
        reshard window, else the settled member set)."""
        if self.reshard is not None:
            return list(self.reshard["new"])  # type: ignore[index]
        return self.map.shard_ids()

    def ring_info(self) -> Dict[str, object]:
        """The routing block every config broadcast / refresh carries."""
        info: Dict[str, object] = {"gen": self.ring_gen, "ids": self.ring_members()}
        if self.reshard is not None:
            info["reshard"] = dict(self.reshard)
        return info

    # -- peer sync ---------------------------------------------------------
    def install(self, state: Dict[str, object]) -> bool:
        """Adopt a serialized peer view — epoch-fenced: a reordered
        snapshot at an older epoch than ours is stale and ignored.
        Equal-epoch snapshots are idempotent repeats (every membership
        change bumps), so re-installing them is harmless — and the very
        first follower sync arrives at the bootstrap epoch."""
        epoch = int(state["map"]["epoch"])  # type: ignore[index]
        if epoch < self.map.epoch:
            return False
        installed = ClusterMap.from_dict(state["map"])  # type: ignore[arg-type]
        # mutate the shared map in place: harness/checker hold the object
        self.map.shards = installed.shards
        self.map.epoch = installed.epoch
        self.map.degraded = installed.degraded
        self.ring_gen = int(state.get("ring_gen", 0))  # type: ignore[arg-type]
        reshard = state.get("reshard")
        self.reshard = dict(reshard) if reshard else None  # type: ignore[arg-type]
        self.log = [
            ViewTransition.from_dict(t)  # type: ignore[arg-type]
            for t in state.get("log", [])
        ]
        return True

    def to_dict(self) -> Dict[str, object]:
        return {
            "map": self.map.to_dict(),
            "ring_gen": self.ring_gen,
            "reshard": dict(self.reshard) if self.reshard else None,
            "log": [t.to_dict() for t in self.log],
        }

    # -- introspection -----------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """Deterministic summary for model-checker fingerprints: the
        transition log as (kind, epoch) pairs — no clock-valued fields."""
        return {
            "ring_gen": self.ring_gen,
            "reshard": (
                f"{self.reshard['action']}:{self.reshard['shard']}@g{self.reshard['gen']}"
                if self.reshard
                else None
            ),
            "transitions": [(t.kind, t.epoch) for t in self.log],
        }
