"""Seeded randomized soak runner.

One :func:`run_combo` call is the full chaos loop for one
topology/consistency combination:

1. deploy a multi-shard cluster with a standby pool and enough
   headroom for every scheduled crash;
2. start client sessions (closed loops over a shared keyspace, every
   written value globally unique: ``"{client}:{seq}"``);
3. replay a :func:`~repro.chaos.schedule.random_schedule` drawn from
   the run seed;
4. heal everything, write per-shard marker keys (so EC anti-entropy has
   a fresh tail to converge on), quiesce;
5. final strong/EC read sweep + raw replica dumps;
6. run the matching consistency oracle.

Everything — schedule, fault application order, client jitter, network
jitter — derives from ``(seed, spec)`` on the simulated clock, so two
runs with the same seed produce identical histories, timelines and
digests (the property ``tests/test_chaos_soak.py`` pins down).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.chaos.controller import ChaosController
from repro.chaos.history import HistoryRecorder
from repro.chaos.oracle import (
    OracleReport,
    check_eventual,
    check_linearizable,
    check_recovery,
)
from repro.chaos.schedule import (
    FaultSchedule,
    random_schedule,
    rolling_restart_schedule,
)
from repro.core.types import Consistency, Topology
from repro.errors import BespoError

__all__ = ["ComboResult", "SoakReport", "run_combo", "run_soak", "ALL_COMBOS"]

ALL_COMBOS: Tuple[Tuple[Topology, Consistency], ...] = (
    (Topology.MS, Consistency.STRONG),
    (Topology.MS, Consistency.EVENTUAL),
    (Topology.AA, Consistency.STRONG),
    (Topology.AA, Consistency.EVENTUAL),
)


@dataclass
class ComboResult:
    """Outcome of one chaotic run of one combo."""

    topology: Topology
    consistency: Consistency
    seed: int
    report: OracleReport
    schedule: FaultSchedule
    digest: str  # determinism fingerprint (schedule + timeline + history)
    stats: Dict[str, int] = field(default_factory=dict)
    #: full recorded history (diagnosis; not part of the digest fields)
    records: List = field(default_factory=list)
    #: schedule-sensitivity reports when ``detect_races=True``
    #: (:class:`repro.analysis.races.RaceReport`); advisory — a tied
    #: pair is a *potential* divergence, the oracle stays the judge.
    races: List = field(default_factory=list)
    #: the :class:`~repro.obs.trace.SpanRecorder` when ``trace=True``
    #: (``chaos --trace`` prints span trees of violating requests).
    #: Never part of the digest: tracing must not perturb the run.
    recorder: Optional[object] = None

    @property
    def ok(self) -> bool:
        return self.report.ok

    @property
    def label(self) -> str:
        sc = "SC" if self.consistency is Consistency.STRONG else "EC"
        return f"{self.topology.value.upper()}+{sc}"

    def describe(self) -> str:
        head = (
            f"{self.label} seed={self.seed}: "
            f"{'PASS' if self.ok else 'FAIL'} {self.stats} digest={self.digest[:16]}"
        )
        lines = [head] + [f"  {line}" for line in self.report.describe().splitlines()[1:]]
        for race in self.races:
            lines.append(f"  RACE {race.describe()}")
        return "\n".join(lines)


@dataclass
class SoakReport:
    """Aggregate of a multi-seed, multi-combo soak."""

    results: List[ComboResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)

    def failures(self) -> List[ComboResult]:
        return [r for r in self.results if not r.ok]

    def describe(self) -> str:
        lines = [r.describe() for r in self.results]
        if self.ok:
            lines.append(f"soak: PASS ({len(self.results)} runs)")
        else:
            repro = ", ".join(
                f"{r.label} --seed {r.seed}" for r in self.failures()
            )
            lines.append(f"soak: FAIL — reproduce with: {repro}")
        return "\n".join(lines)


def run_combo(
    topology: Topology,
    consistency: Consistency,
    seed: int,
    duration: float = 15.0,
    shards: int = 2,
    replicas: int = 3,
    clients: int = 3,
    keys: int = 24,
    chaos_start: float = 2.0,
    quiesce: float = 10.0,
    schedule: Optional[FaultSchedule] = None,
    spec_overrides: Optional[dict] = None,
    detect_races: bool = False,
    sanitize: bool = False,
    trace: bool = False,
    durable: bool = False,
    restarts: bool = False,
    rolling_restart: bool = False,
    reshard: bool = False,
) -> ComboResult:
    """Run one seeded chaotic soak of one combo and judge the history.

    ``durable=True`` gives every datalet a WAL on its host's durable
    store; ``restarts=True`` additionally draws crash + recover-restart
    pairs (WAL replay + stale rejoin) into the random schedule and runs
    the recovery oracle over the resulting recoveries.
    ``rolling_restart=True`` replaces the random schedule with a
    deterministic :func:`~repro.chaos.schedule.rolling_restart_schedule`
    power-cycling every data host in sequence (implies both of the
    above).

    ``reshard=True`` drives two online reshards through the soaked
    cluster — a shard *add* at ~25% of the load window, then a drain +
    *remove* of an original shard at ~60% — while the client sessions
    keep hammering the shared keyspace.  The random schedule drops to
    the mild fault menu (latency spikes, slow nodes, duplicates,
    reorders): reshard participants are assumed live for the window.
    The usual consistency oracle judges the full history, so a lost or
    duplicated key at the cutover fails the run.
    """
    from repro.harness.deploy import Deployment, DeploymentSpec  # local: avoid cycle

    topology = Topology(topology)
    consistency = Consistency(consistency)
    if rolling_restart:
        restarts = True  # every host recovers; the recovery oracle must judge it
    if restarts and not durable:
        durable = True  # a recover-restart without a WAL has nothing to replay
    spec_kwargs = dict(
        shards=shards,
        replicas=replicas,
        topology=topology,
        consistency=consistency,
        seed=seed,
        standbys=replicas + 1,  # headroom for every scheduled crash
        durable=durable,
    )
    spec_kwargs.update(spec_overrides or {})
    dep = Deployment(DeploymentSpec(**spec_kwargs))
    sim = dep.sim
    detector = None
    if detect_races:
        from repro.analysis.races import RaceDetector  # local: keep chaos importable alone

        detector = RaceDetector()
        # before start(): boot timers must be instrumented too
        dep.cluster.attach_race_detector(detector)
    sanitizer = None
    if sanitize:
        # before start(): boot-time sends must be digested and frozen
        # too, or a handler stashing a boot payload escapes the check
        sanitizer = dep.cluster.attach_sanitizer()
    spans = None
    if trace:
        # before start(): every actor must carry the recorder hook.
        # Pure observation — no RNG draws, no timing effects — so the
        # run's digest is identical with tracing on or off.
        spans = dep.cluster.attach_obs()
    dep.start()

    recorder = HistoryRecorder(sim)
    sessions = [
        dep.client(f"chaos{i}", recorder=recorder, max_retries=8)
        for i in range(clients)
    ]
    for c in sessions:
        sim.run_future(c.connect())
    for c in sessions:
        c.auto_refresh(1.0)

    # data-plane replica hosts only: never the coordinator, DLM,
    # shared logs or client ports
    data_hosts = [
        r.host for shard in dep.map.shards.values() for r in shard.ordered()
    ]
    if schedule is None:
        if rolling_restart:
            schedule = rolling_restart_schedule(data_hosts)
        else:
            schedule = random_schedule(
                seed,
                data_hosts,
                duration,
                topology=topology,
                consistency=consistency,
                failure_timeout=dep.spec.control.failure_timeout,
                restarts=restarts,
                mild=reshard,
            )
    schedule.validate(failure_timeout=dep.spec.control.failure_timeout)

    keyspace = [f"k{n}" for n in range(keys)]
    load_end = chaos_start + duration

    def session_loop(client, idx: int):
        rng = dep.cluster.rng.stream(f"chaos.session{idx}")
        seq = 0
        while sim.now < load_end:
            key = rng.choice(keyspace)
            roll = rng.random()
            seq += 1
            try:
                if roll < 0.55:
                    yield client.put(key, f"{client.name}:{seq}")
                elif roll < 0.95:
                    yield client.get(key)
                else:
                    yield client.delete(key)
            except BespoError:
                pass  # recorded; the oracle judges it
            yield sim.sleep(0.02 + 0.08 * rng.random())

    for i, c in enumerate(sessions):
        sim.spawn(session_loop(c, i))

    # -- online reshards under load --------------------------------------
    reshard_events: List[Dict] = []
    if reshard:

        def reshard_driver():
            yield sim.sleep(chaos_start + 0.25 * duration - sim.now)
            try:
                stats_add = yield dep.request_reshard("add")
                reshard_events.append({"action": "add", **stats_add})
            except BespoError as e:
                reshard_events.append({"action": "add", "error": str(e)})
            target = chaos_start + 0.60 * duration
            if sim.now < target:
                yield sim.sleep(target - sim.now)
            try:
                stats_rm = yield dep.request_reshard("remove", shard="s0")
                reshard_events.append({"action": "remove", **stats_rm})
            except BespoError as e:
                reshard_events.append({"action": "remove", "error": str(e)})

        sim.spawn(reshard_driver())

    # -- chaos window ----------------------------------------------------
    sim.run_until(chaos_start)
    controller = ChaosController(dep, schedule)
    controller.arm()
    sim.run_until(chaos_start + max(duration, schedule.horizon) + 0.5)
    controller.heal_all()

    # -- reshard settle ----------------------------------------------------
    # Both scheduled reshards must have committed before the marker
    # writes and the final sweep: the cluster map (and every ring) has
    # to be settled for the dumps below to describe the final topology.
    if reshard:
        deadline = sim.now + 120.0
        while (
            (len(reshard_events) < 2 or dep.coordinator.view.reshard is not None)
            and sim.now < deadline
        ):
            sim.run_until(sim.now + 1.0)
        if dep.coordinator.view.reshard is not None:
            raise BespoError("reshard window failed to close before quiesce")
        # force the marker/sweep client onto the committed ring
        sim.run_future(sessions[0].connect())

    # -- convergence nudges + quiesce ------------------------------------
    # One marker write routed to every shard: gives each EC stream a
    # fresh tail so gap detection has something recent to diff against.
    writer = sessions[0]
    covered = set()
    marker = 0
    while len(covered) < len(dep.map.shards) and marker < 1000:
        key = f"marker{marker}"
        marker += 1
        sid = writer.shard_for(key).shard_id
        if sid in covered:
            continue
        covered.add(sid)
        try:
            sim.run_future(writer.put(key, f"{writer.name}:marker{marker}"))
        except BespoError:
            pass
    sim.run_until(sim.now + quiesce)

    # -- final read sweep -------------------------------------------------
    reader = sessions[0]
    for key in keyspace:
        try:
            sim.run_future(reader.get(key))
        except BespoError:
            pass

    # -- replica dumps (direct engine access: zero simulation impact) ----
    replica_dumps: Dict[str, Dict[str, Dict[str, str]]] = {}
    for shard in dep.map.shards.values():
        dumps: Dict[str, Dict[str, str]] = {}
        for r in shard.ordered():
            if not dep.cluster.is_host_alive(r.host):
                continue
            actor = dep.cluster.actor(r.datalet)
            dumps[r.datalet] = dict(actor.engine.snapshot())
        replica_dumps[shard.shard_id] = dumps

    # -- oracle ------------------------------------------------------------
    if consistency is Consistency.STRONG:
        # MS+SC deduplicates the request id at every chain member, so a
        # stamped write executes at most once cluster-wide.  AA+SC
        # cannot claim that: retries may enter at a different active
        # whose fan-out the entry gate never saw.
        exact_once = topology is Topology.MS
        report = check_linearizable(recorder.records, exact_once=exact_once)
    else:
        report = check_eventual(recorder.records, replica_dumps)
    recoveries = list(controller.recoveries)
    if durable:
        strong = consistency is Consistency.STRONG
        synced_acks = dep.spec.wal_sync_every == 1
        # Ack-durability is read from the static commit-point contract
        # (repro.analysis.commitpoints.CONTRACTS) instead of a local
        # heuristic, so the oracle and the `repro lint` waiver table can
        # never drift apart.  Today the only waived combo is MS+EC under
        # group commit (wal_sync_every > 1): the ack covers one
        # in-memory replica whose fsync trails it, so a crash may roll
        # back the acked tail and a rejoining master resyncs its slaves
        # to the rolled-back state.
        from repro.analysis.commitpoints import ack_durable_for  # local: avoid cycle

        combo = f"{topology.value}-{'sc' if strong else 'ec'}"
        ack_durable = ack_durable_for(combo, dep.spec.wal_sync_every)
        recovery_report = check_recovery(
            recorder.records,
            recoveries,
            replica_dumps,
            strong=strong,
            synced_acks=synced_acks,
            ack_durable=ack_durable,
        )
        report.violations.extend(recovery_report.violations)
        report.warnings.extend(recovery_report.warnings)
        for k, v in recovery_report.stats.items():
            report.stats[f"recovery_{k}"] = v

    h = hashlib.sha256()
    h.update(schedule.digest().encode())
    h.update(controller.digest().encode())
    h.update(recorder.digest().encode())
    for r in recoveries:
        h.update(
            f"recovery|{r.host}|{r.datalet}|{r.replayed_seq}|"
            f"{r.records_applied}|{r.torn_tail_dropped}\n".encode()
        )
    for ev in reshard_events:
        h.update(
            ("reshard|" + "|".join(f"{k}={ev[k]}" for k in sorted(ev)) + "\n").encode()
        )
    for shard_id in sorted(replica_dumps):
        for datalet in sorted(replica_dumps[shard_id]):
            for k in sorted(replica_dumps[shard_id][datalet]):
                h.update(f"{shard_id}|{datalet}|{k}|{replica_dumps[shard_id][datalet][k]}\n".encode())

    counts = recorder.counts()
    stats = {
        "ops": len(recorder.records),
        "acked": counts.get("ok", 0) + counts.get("not_found", 0),
        "failed": counts.get("fail", 0) + counts.get("pending", 0),
        "faults": len(controller.applied),
        "failovers": dep.coordinator.failovers,
    }
    if durable:
        stats["recoveries"] = len(recoveries)
        stats["torn_tails"] = sum(r.torn_tail_dropped for r in recoveries)
    if reshard:
        stats["reshards"] = sum(1 for ev in reshard_events if "error" not in ev)
        stats["keys_migrated"] = sum(ev.get("moved", 0) for ev in reshard_events)
        failed = [ev for ev in reshard_events if "error" in ev]
        if failed:
            report.violations.extend(
                f"reshard {ev['action']} failed: {ev['error']}" for ev in failed
            )
    if sanitizer is not None:
        stats["sanitized_sends"] = sanitizer.sends
        stats["payload_violations"] = len(sanitizer.violations)
    races: List = []
    if detector is not None:
        detector.finish()
        races = list(detector.races)
        stats["races"] = len(races)
        stats["tied_groups"] = detector.tied_groups
    return ComboResult(
        topology=topology,
        consistency=consistency,
        seed=seed,
        report=report,
        schedule=schedule,
        digest=h.hexdigest(),
        stats=stats,
        records=list(recorder.records),
        races=races,
        recorder=spans,
    )


def run_soak(
    seeds: Sequence[int],
    duration: float = 15.0,
    combos: Sequence[Tuple[Topology, Consistency]] = ALL_COMBOS,
    **combo_kwargs,
) -> SoakReport:
    """All requested combos x all seeds; failures carry their seed."""
    report = SoakReport()
    for seed in seeds:
        for topology, consistency in combos:
            report.results.append(
                run_combo(topology, consistency, seed, duration=duration, **combo_kwargs)
            )
    return report
