"""Client history recorder.

The :class:`~repro.client.kv.KVClient` calls ``invoke`` when an
operation starts and ``complete`` when it resolves — including when it
*fails*: a timed-out or retry-exhausted write may still have taken
effect inside the cluster, and the consistency oracle must account for
that indeterminacy (the failed op's effect may appear later, or never).

Statuses:

* ``ok``         — acknowledged; for gets, ``result`` holds the value.
* ``not_found``  — a definite observation that the key was absent.
* ``fail``       — timeout / retries exhausted / protocol error;
  indeterminate for writes, uninformative for reads.
* ``pending``    — still in flight when the run ended (treated like
  ``fail``: indeterminate).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["OpRecord", "HistoryRecorder"]


@dataclass
class OpRecord:
    """One client operation, from invocation to response."""

    op_id: int
    client: str
    op: str  # "put" | "get" | "del"
    key: str
    value: Optional[str]  # put argument (None for get/del)
    invoke: float
    response: Optional[float] = None
    status: str = "pending"
    result: Optional[str] = None  # get result value
    error: Optional[str] = None
    #: client attempts consumed (timeout/retired/redirect retries).
    attempts: int = 1
    #: how many of those attempts ended in an RPC *timeout* — the only
    #: kind of retry that is fabric-indeterminate (the request may have
    #: executed before the ack was lost).  Redirect/retired bounces are
    #: rejected before execution and can never duplicate, so the oracle
    #: models potential duplicates from ``timeouts``, not ``attempts``.
    timeouts: int = 0
    #: request id stamped by the client on mutations; replicas
    #: deduplicate retries carrying the same id, which lets the oracle
    #: drop ghost writes entirely for combos with a full dedup path.
    req_id: Optional[str] = None
    #: trace id when a SpanRecorder was attached (``chaos --trace``
    #: uses it to print the span tree of a violating request).
    trace_id: Optional[int] = None

    def describe(self) -> str:
        # trace_id deliberately excluded: digests must be identical with
        # tracing on and off.
        resp = f"{self.response:.9f}" if self.response is not None else "-"
        return (
            f"{self.op_id}|{self.client}|{self.op}|{self.key}|{self.value}|"
            f"{self.invoke:.9f}|{resp}|{self.status}|{self.result}|"
            f"{self.attempts}|{self.timeouts}|{self.req_id}"
        )


class HistoryRecorder:
    """Collects every invocation/response with simulated timestamps."""

    def __init__(self, sim):
        self.sim = sim
        self.records: List[OpRecord] = []
        self._next_id = 0
        self._stamp = float("-inf")

    def _now(self) -> float:
        """Strictly monotonic timestamp: ties on the simulated clock are
        broken by recorder-event order.  Client events are serialized
        through the single-threaded scheduler, so that order *is* the
        execution's real-time order — without the tiebreak, the model
        checker's zero-latency deliveries stamp every op at the same
        instant and the linearizability search may legally reorder a
        read before a write the schedule actually completed first."""
        t = self.sim.now
        if t <= self._stamp:
            t = self._stamp + 1e-9
        self._stamp = t
        return t

    # -- KVClient hook surface ------------------------------------------
    def invoke(self, client: str, op: str, key: str, value: Optional[str],
               req_id: Optional[str] = None,
               trace_id: Optional[int] = None) -> OpRecord:
        rec = OpRecord(
            op_id=self._next_id,
            client=client,
            op=op,
            key=key,
            value=value,
            invoke=self._now(),
            req_id=req_id,
            trace_id=trace_id,
        )
        self._next_id += 1
        self.records.append(rec)
        return rec

    def complete(
        self,
        rec: OpRecord,
        status: str,
        value: Optional[str] = None,
        error: Optional[str] = None,
        attempts: int = 1,
        timeouts: int = 0,
    ) -> None:
        rec.response = self._now()
        rec.status = status
        rec.result = value
        rec.error = error
        rec.attempts = max(1, attempts)
        rec.timeouts = max(0, timeouts)

    # -- queries ---------------------------------------------------------
    def by_key(self) -> Dict[str, List[OpRecord]]:
        out: Dict[str, List[OpRecord]] = {}
        for rec in self.records:
            out.setdefault(rec.key, []).append(rec)
        return out

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for rec in self.records:
            out[rec.status] = out.get(rec.status, 0) + 1
        return out

    def digest(self) -> str:
        """Stable content hash of the full history (no message ids)."""
        h = hashlib.sha256()
        for rec in self.records:
            h.update(rec.describe().encode())
            h.update(b"\n")
        return h.hexdigest()
