"""Deterministic chaos engine (robustness harness).

Three parts, mirroring the classic chaos-engineering loop but run
entirely on the simulated clock so every run is replayable from a seed:

* :mod:`repro.chaos.schedule` — declarative, seeded fault schedules
  (crash/restart, symmetric and asymmetric partitions, latency spikes,
  slow nodes, message duplication and reordering);
* :mod:`repro.chaos.controller` — replays a schedule against a live
  :class:`~repro.harness.deploy.Deployment` at exact simulated times;
* :mod:`repro.chaos.history` / :mod:`repro.chaos.oracle` — a client
  history recorder plus a consistency oracle: per-key linearizability
  for the STRONG combos, validity + replica convergence (with session
  staleness warnings) for the EVENTUAL ones;
* :mod:`repro.chaos.runner` — the seeded randomized soak across all
  four topology x consistency combinations.
"""

from repro.chaos.controller import ChaosController
from repro.chaos.history import HistoryRecorder, OpRecord
from repro.chaos.oracle import (
    OracleReport,
    RecoveryRecord,
    check_eventual,
    check_linearizable,
    check_recovery,
)
from repro.chaos.schedule import FaultEvent, FaultSchedule, fault_menu, random_schedule
from repro.chaos.runner import ComboResult, SoakReport, run_combo, run_soak

__all__ = [
    "ChaosController",
    "ComboResult",
    "FaultEvent",
    "FaultSchedule",
    "HistoryRecorder",
    "OpRecord",
    "OracleReport",
    "RecoveryRecord",
    "SoakReport",
    "check_eventual",
    "check_linearizable",
    "check_recovery",
    "fault_menu",
    "random_schedule",
    "run_combo",
    "run_soak",
]
