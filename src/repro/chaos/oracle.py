"""Consistency oracle over recorded client histories.

Two checkers, matched to what each consistency mode actually promises:

* :func:`check_linearizable` — per-key linearizability of the acked
  history (Wing & Gong style search with memoization).  Failed or
  still-pending writes are *optional* events: they may take effect at
  any point after their invocation, or never — exactly the
  indeterminacy a timed-out write leaves behind.  Used for the STRONG
  combos, where chain replication / DLM locking promise it.

* :func:`check_eventual` — for the EVENTUAL combos, which promise much
  less: (1) **validity** — every read returns a value some client
  actually wrote (or absence); (2) **convergence** — after faults heal
  and propagation quiesces, all replicas of a shard hold identical
  state.  Read-your-writes session violations are reported as
  *warnings*, not violations: both EC designs ack after a single
  replica and serve reads from any replica, so a session reading its
  own stale value is legitimate staleness, not a bug (see
  docs/ARCHITECTURE.md).

* :func:`check_recovery` — judges crash-restart recoveries (WAL replay
  + rejoin).  Durability floor: replay must reach the fsync watermark
  at crash time (no synced record lost).  Validity: recovered state
  holds only client-written values.  No resurrection: a settled delete
  must stay deleted, and a settled write's value must survive to the
  final replica state.  "Settled" is deliberately conservative — it
  excludes any key with a failed/pending mutation, whose ghost could
  legitimately land at any later time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.chaos.history import OpRecord

__all__ = [
    "OracleReport",
    "RecoveryRecord",
    "check_linearizable",
    "check_eventual",
    "check_recovery",
]


@dataclass
class OracleReport:
    """Outcome of one oracle pass."""

    violations: List[str] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)
    stats: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations

    def describe(self) -> str:
        lines = [f"oracle: {'PASS' if self.ok else 'FAIL'} {self.stats}"]
        lines += [f"  VIOLATION: {v}" for v in self.violations]
        lines += [f"  warning: {w}" for w in self.warnings]
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# linearizability (STRONG)
# ---------------------------------------------------------------------------
@dataclass
class _Entry:
    """One searchable event for a single key."""

    kind: str  # "w" (write) | "r" (read)
    value: Optional[str]  # written value / observed value (None = absent)
    inv: float
    resp: float  # +inf for optional writes
    optional: bool  # may be skipped (failed/indeterminate write)


def _entries_for_key(ops: Sequence[OpRecord],
                     exact_once: bool = False) -> Optional[List[_Entry]]:
    """Translate records to search entries; None = nothing to check."""
    entries: List[_Entry] = []
    inf = float("inf")
    for rec in ops:
        if rec.op in ("put", "del"):
            written = rec.value if rec.op == "put" else None
            if rec.status == "ok":
                entries.append(_Entry("w", written, rec.invoke, rec.response, False))
            else:
                # fail / pending / del-not_found: may have taken effect
                # (possibly partially down the chain), or not — optional.
                entries.append(_Entry("w", written, rec.invoke, inf, True))
            # Extra executions of the same write.  With a request id on
            # the record, only *timeout* attempts are fabric-
            # indeterminate (redirect/retired bounces are rejected
            # before execution), and a combo whose every replication
            # hop deduplicates the id (``exact_once``) executes at most
            # once — no ghosts at all.  Records without a request id
            # fall back to the permissive attempts-1 model.
            if rec.req_id is not None:
                ghosts = 0 if exact_once else rec.timeouts
            else:
                ghosts = rec.attempts - 1
            # ghosts are optional writes (capped: they only add
            # permissive interleavings for this op's own value).
            for _ in range(min(ghosts, 3)):
                entries.append(_Entry("w", written, rec.invoke, inf, True))
        elif rec.op == "get":
            if rec.status == "ok":
                entries.append(_Entry("r", rec.result, rec.invoke, rec.response, False))
            elif rec.status == "not_found":
                entries.append(_Entry("r", None, rec.invoke, rec.response, False))
            # failed reads observed nothing: drop
    if not any(e.kind == "r" and not e.optional for e in entries) and all(
        e.optional for e in entries
    ):
        return None
    return entries


def _check_key(
    entries: List[_Entry], initial: Optional[str], max_states: int
) -> Tuple[Optional[bool], int]:
    """Search for a valid linearization.

    Returns (verdict, states): verdict True/False, or None if the state
    budget ran out (inconclusive).
    """
    n = len(entries)
    mandatory_mask = 0
    for i, e in enumerate(entries):
        if not e.optional:
            mandatory_mask |= 1 << i
    seen = set()
    states = 0

    def dfs(done: int, value: Optional[str]) -> Optional[bool]:
        nonlocal states
        if done & mandatory_mask == mandatory_mask:
            return True  # leftover optional writes simply never happened
        key = (done, value)
        if key in seen:
            return False
        seen.add(key)
        states += 1
        if states > max_states:
            return None
        # an op may linearize next only if no *pending mandatory* op
        # already finished before it was invoked
        min_resp = min(
            entries[i].resp for i in range(n) if not done >> i & 1 and not entries[i].optional
        )
        exhausted = False
        for i in range(n):
            if done >> i & 1:
                continue
            e = entries[i]
            if e.inv > min_resp:
                continue
            if e.kind == "r":
                if e.value != value:
                    continue
                verdict = dfs(done | 1 << i, value)
            else:
                verdict = dfs(done | 1 << i, e.value)
            if verdict:
                return True
            if verdict is None:
                exhausted = True
        return None if exhausted else False

    verdict = dfs(0, initial)
    if verdict is not True and states > max_states:
        verdict = None  # memo may be polluted past the budget: only a
        # found linearization is a sound verdict
    return verdict, states


def check_linearizable(
    records: Sequence[OpRecord],
    initial: Optional[str] = None,
    max_states: int = 500_000,
    exact_once: bool = False,
) -> OracleReport:
    """Per-key linearizability of an acked history.

    Keys are independent registers (the store has no multi-key
    transactions), so the check decomposes per key — the standard
    locality property of linearizability.

    ``exact_once`` asserts the deployment deduplicates request ids at
    every replication hop (MS+SC: every chain member gates on the rid),
    so a rid-stamped write can execute at most once regardless of how
    many client attempts it took.
    """
    report = OracleReport()
    by_key: Dict[str, List[OpRecord]] = {}
    for rec in records:
        by_key.setdefault(rec.key, []).append(rec)
    checked = 0
    for key in sorted(by_key):
        entries = _entries_for_key(by_key[key], exact_once=exact_once)
        if entries is None:
            continue
        checked += 1
        verdict, states = _check_key(entries, initial, max_states)
        if verdict is None:
            report.warnings.append(
                f"key {key!r}: search exceeded {max_states} states ({len(entries)} ops) — inconclusive"
            )
        elif not verdict:
            acked = sum(1 for e in entries if not e.optional)
            report.violations.append(
                f"key {key!r}: no valid linearization "
                f"({acked} acked ops, {len(entries) - acked} indeterminate)"
            )
    report.stats = {"keys_checked": checked, "ops": len(records)}
    return report


# ---------------------------------------------------------------------------
# eventual consistency (EVENTUAL)
# ---------------------------------------------------------------------------
def check_eventual(
    records: Sequence[OpRecord],
    replica_dumps: Dict[str, Dict[str, Dict[str, str]]],
) -> OracleReport:
    """Validity + post-quiesce convergence, with session warnings.

    ``replica_dumps`` maps shard id -> replica (datalet) id -> its full
    key/value snapshot, taken after faults healed and propagation
    quiesced.
    """
    report = OracleReport()
    # -- validity: reads return only written values ---------------------
    written: Dict[str, set] = {}
    for rec in records:
        if rec.op == "put":  # any status: an unacked put may have landed
            written.setdefault(rec.key, set()).add(rec.value)
    bad_reads = 0
    for rec in records:
        if rec.op == "get" and rec.status == "ok" and rec.result is not None:
            if rec.result not in written.get(rec.key, ()):
                bad_reads += 1
                report.violations.append(
                    f"key {rec.key!r}: read returned {rec.result!r}, never written"
                )
    # -- convergence: replicas of a shard hold identical state ----------
    for shard_id in sorted(replica_dumps):
        dumps = replica_dumps[shard_id]
        if len(dumps) < 2:
            continue
        items = sorted(dumps.items())
        _, reference = items[0]
        for replica_id, dump in items[1:]:
            if dump == reference:
                continue
            diff_keys = sorted(
                k
                for k in set(reference) | set(dump)
                if reference.get(k) != dump.get(k)
            )
            report.violations.append(
                f"shard {shard_id}: replica {replica_id} diverged from "
                f"{items[0][0]} on {len(diff_keys)} keys "
                f"(e.g. {diff_keys[:3]})"
            )
    # -- session read-your-writes (warnings: EC does not promise it) ----
    stale_sessions = _session_stale_reads(records)
    for w in stale_sessions:
        report.warnings.append(w)
    report.stats = {
        "ops": len(records),
        "invalid_reads": bad_reads,
        "shards_compared": len(replica_dumps),
        "stale_session_reads": len(stale_sessions),
    }
    return report


# ---------------------------------------------------------------------------
# recovery correctness (durable crash-restart)
# ---------------------------------------------------------------------------
@dataclass
class RecoveryRecord:
    """Provenance of one durable crash-restart recovery.

    Built by ``Deployment.recover_host`` at re-spawn time; the fields
    capture both the WAL replay outcome and the fsync watermark the
    crashed node had promised, so :func:`check_recovery` can audit that
    no synced record was lost and no deleted key resurrected.
    """

    host: str
    shard_id: str
    datalet: str
    crash_time: float
    recover_time: float
    #: highest seq the WAL had fsynced when the host died — the floor
    #: replay must reach.
    durable_seq_at_crash: int
    #: highest seq actually applied during replay.
    replayed_seq: int
    snapshot_seq: int
    records_applied: int
    torn_tail_dropped: int
    #: full engine state right after WAL replay, *before* catch-up.
    recovered: Dict[str, Optional[str]] = field(default_factory=dict)
    #: peer datalet the rejoining node catches up from (None = none live).
    catchup_source: Optional[str] = None


def _settled_mutations(
    records: Sequence[OpRecord],
) -> Tuple[Dict[str, OpRecord], Dict[str, OpRecord]]:
    """(settled deletes, settled writes) by key.

    A key's history is *settled* when its last mutation (by invocation
    time) is acked and every other mutation on the key finished —
    strictly before the last one began — with an ok/not_found status.
    Any failed or still-pending mutation dissolves settledness: its
    ghost may execute at an arbitrary later point, so nothing about the
    key's final state can be promised.
    """
    by_key: Dict[str, List[OpRecord]] = {}
    for rec in records:
        if rec.op in ("put", "del"):
            by_key.setdefault(rec.key, []).append(rec)
    deletes: Dict[str, OpRecord] = {}
    writes: Dict[str, OpRecord] = {}
    for key in sorted(by_key):
        muts = by_key[key]
        if any(m.status not in ("ok", "not_found") for m in muts):
            continue  # ghost-capable op in history: unsettled
        last = max(muts, key=lambda m: m.invoke)
        if last.status != "ok":
            continue
        others = [m for m in muts if m is not last]
        if any(m.response is None or m.response > last.invoke for m in others):
            continue  # concurrent with the last mutation: ambiguous
        if last.op == "del":
            deletes[key] = last
        else:
            writes[key] = last
    return deletes, writes


def check_recovery(
    records: Sequence[OpRecord],
    recoveries: Sequence[RecoveryRecord],
    replica_dumps: Dict[str, Dict[str, Dict[str, str]]],
    strong: bool = True,
    synced_acks: bool = True,
    ack_durable: bool = True,
) -> OracleReport:
    """Judge durable crash-restart recoveries against the history.

    * **durability floor** — per recovery, WAL replay must reach the
      fsync watermark the node held at crash time (``replayed_seq >=
      durable_seq_at_crash``): a synced record may never be lost.
    * **validity** — the recovered (pre-catch-up) state contains only
      values some client actually wrote for that key.
    * **no resurrection (per recovery)** — with ``strong`` replication
      and ``synced_acks`` (``sync_every=1``), an acked delete was
      applied and fsynced on every live replica before the ack, so a
      *settled* delete acked before the crash must not reappear in the
      replayed state.
    * **settled final values** — after heal + quiesce, a settled delete
      stays absent from every replica of its shard and a settled
      write's value is what every replica holds: rejoining with
      recovered-but-stale state must not leak into the final state.
      Enforced only when ``ack_durable``: when an ack implies a durable
      copy somewhere — a strong chain (every live replica applied it),
      per-ack fsync, or a shared ordering log.  MS+EC with group commit
      promises neither: the ack covers one in-memory replica whose
      fsync trails it, so a crash may legally roll back the acked
      unsynced tail — and the rejoined master's fresh incarnation
      resyncs its slaves to that rolled-back state, exactly as a
      production master restarting from a stale disk image does.  Those
      losses are reported as warnings, not violations.
    """
    report = OracleReport()
    written: Dict[str, set] = {}
    for rec in records:
        if rec.op == "put":  # any status: an unacked put may have landed
            written.setdefault(rec.key, set()).add(rec.value)
    deletes, writes = _settled_mutations(records)

    # -- per-recovery checks --------------------------------------------
    floor_failures = 0
    for r in recoveries:
        if r.replayed_seq < r.durable_seq_at_crash:
            floor_failures += 1
            report.violations.append(
                f"recovery: {r.datalet} on {r.host} replayed seq "
                f"{r.replayed_seq} < durable seq {r.durable_seq_at_crash} "
                f"at crash — a synced record was lost"
            )
        for key in sorted(r.recovered):
            val = r.recovered[key]
            if val is not None and val not in written.get(key, ()):
                report.violations.append(
                    f"recovery: {r.datalet} replayed {key!r}={val!r}, "
                    f"never written by any client"
                )
        if strong and synced_acks:
            for key in sorted(set(r.recovered) & set(deletes)):
                d = deletes[key]
                if d.response is not None and d.response <= r.crash_time:
                    report.violations.append(
                        f"recovery: {r.datalet} resurrected {key!r} — "
                        f"deleted (acked {d.response:.3f}) before crash "
                        f"({r.crash_time:.3f}), yet present after replay"
                    )

    # -- settled final state across every replica -----------------------
    # which shard owns a key is recovered from the dumps themselves:
    # a settled write's key must be held (with the settled value) by
    # every replica of the shard where it appears, and appear somewhere.
    final_state: List[str] = []
    key_shard: Dict[str, str] = {}
    for shard_id in sorted(replica_dumps):
        for replica_id in sorted(replica_dumps[shard_id]):
            dump = replica_dumps[shard_id][replica_id]
            for key in sorted(set(dump) & set(deletes)):
                final_state.append(
                    f"recovery: shard {shard_id} replica {replica_id} "
                    f"resurrected settled-deleted key {key!r}"
                )
            for key in dump:
                key_shard.setdefault(key, shard_id)
    every_shard_dumped = replica_dumps and all(
        replica_dumps[s] for s in replica_dumps
    )
    for key in sorted(writes):
        want = writes[key].value
        shard_id = key_shard.get(key)
        if shard_id is None:
            if every_shard_dumped:
                final_state.append(
                    f"recovery: settled write {key!r}={want!r} absent from "
                    f"every replica — acked write lost"
                )
            continue
        for replica_id in sorted(replica_dumps[shard_id]):
            got = replica_dumps[shard_id][replica_id].get(key)
            if got != want:
                final_state.append(
                    f"recovery: shard {shard_id} replica {replica_id} "
                    f"holds {key!r}={got!r}, settled write was {want!r}"
                )
    if ack_durable:
        report.violations.extend(final_state)
    else:
        # acks carried no durable copy (MS+EC group commit): a crash may
        # legally roll back the acked unsynced tail cluster-wide, so the
        # divergence is informative, not a correctness failure
        report.warnings.extend(
            f"{msg} (legal: acks not durable under group commit)"
            for msg in final_state
        )

    report.stats = {
        "recoveries": len(recoveries),
        "torn_tails": sum(r.torn_tail_dropped for r in recoveries),
        "records_replayed": sum(r.records_applied for r in recoveries),
        "settled_deletes": len(deletes),
        "settled_writes": len(writes),
        "floor_failures": floor_failures,
        "final_state_issues": len(final_state),
    }
    return report


def _session_stale_reads(records: Sequence[OpRecord]) -> List[str]:
    """Read-your-writes staleness: a session read that returns one of
    the session's *own earlier* values despite a later own acked write.
    (Foreign or absent values are ambiguous under concurrent writers and
    are not flagged.)"""
    out: List[str] = []
    # per (client, key): own acked puts in response order
    own: Dict[Tuple[str, str], List[OpRecord]] = {}
    for rec in records:
        if rec.op == "put" and rec.status == "ok":
            own.setdefault((rec.client, rec.key), []).append(rec)
    for rec in records:
        if rec.op != "get" or rec.status != "ok" or rec.result is None:
            continue
        puts = own.get((rec.client, rec.key), [])
        before = [p for p in puts if p.response is not None and p.response <= rec.invoke]
        if not before:
            continue
        latest = max(before, key=lambda p: p.response)
        older_values = {p.value for p in before if p is not latest}
        if rec.result != latest.value and rec.result in older_values:
            out.append(
                f"client {rec.client} key {rec.key!r}: read own stale "
                f"{rec.result!r} after acking {latest.value!r}"
            )
    return out
