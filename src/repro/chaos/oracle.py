"""Consistency oracle over recorded client histories.

Two checkers, matched to what each consistency mode actually promises:

* :func:`check_linearizable` — per-key linearizability of the acked
  history (Wing & Gong style search with memoization).  Failed or
  still-pending writes are *optional* events: they may take effect at
  any point after their invocation, or never — exactly the
  indeterminacy a timed-out write leaves behind.  Used for the STRONG
  combos, where chain replication / DLM locking promise it.

* :func:`check_eventual` — for the EVENTUAL combos, which promise much
  less: (1) **validity** — every read returns a value some client
  actually wrote (or absence); (2) **convergence** — after faults heal
  and propagation quiesces, all replicas of a shard hold identical
  state.  Read-your-writes session violations are reported as
  *warnings*, not violations: both EC designs ack after a single
  replica and serve reads from any replica, so a session reading its
  own stale value is legitimate staleness, not a bug (see
  docs/ARCHITECTURE.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.chaos.history import OpRecord

__all__ = ["OracleReport", "check_linearizable", "check_eventual"]


@dataclass
class OracleReport:
    """Outcome of one oracle pass."""

    violations: List[str] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)
    stats: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations

    def describe(self) -> str:
        lines = [f"oracle: {'PASS' if self.ok else 'FAIL'} {self.stats}"]
        lines += [f"  VIOLATION: {v}" for v in self.violations]
        lines += [f"  warning: {w}" for w in self.warnings]
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# linearizability (STRONG)
# ---------------------------------------------------------------------------
@dataclass
class _Entry:
    """One searchable event for a single key."""

    kind: str  # "w" (write) | "r" (read)
    value: Optional[str]  # written value / observed value (None = absent)
    inv: float
    resp: float  # +inf for optional writes
    optional: bool  # may be skipped (failed/indeterminate write)


def _entries_for_key(ops: Sequence[OpRecord],
                     exact_once: bool = False) -> Optional[List[_Entry]]:
    """Translate records to search entries; None = nothing to check."""
    entries: List[_Entry] = []
    inf = float("inf")
    for rec in ops:
        if rec.op in ("put", "del"):
            written = rec.value if rec.op == "put" else None
            if rec.status == "ok":
                entries.append(_Entry("w", written, rec.invoke, rec.response, False))
            else:
                # fail / pending / del-not_found: may have taken effect
                # (possibly partially down the chain), or not — optional.
                entries.append(_Entry("w", written, rec.invoke, inf, True))
            # Extra executions of the same write.  With a request id on
            # the record, only *timeout* attempts are fabric-
            # indeterminate (redirect/retired bounces are rejected
            # before execution), and a combo whose every replication
            # hop deduplicates the id (``exact_once``) executes at most
            # once — no ghosts at all.  Records without a request id
            # fall back to the permissive attempts-1 model.
            if rec.req_id is not None:
                ghosts = 0 if exact_once else rec.timeouts
            else:
                ghosts = rec.attempts - 1
            # ghosts are optional writes (capped: they only add
            # permissive interleavings for this op's own value).
            for _ in range(min(ghosts, 3)):
                entries.append(_Entry("w", written, rec.invoke, inf, True))
        elif rec.op == "get":
            if rec.status == "ok":
                entries.append(_Entry("r", rec.result, rec.invoke, rec.response, False))
            elif rec.status == "not_found":
                entries.append(_Entry("r", None, rec.invoke, rec.response, False))
            # failed reads observed nothing: drop
    if not any(e.kind == "r" and not e.optional for e in entries) and all(
        e.optional for e in entries
    ):
        return None
    return entries


def _check_key(
    entries: List[_Entry], initial: Optional[str], max_states: int
) -> Tuple[Optional[bool], int]:
    """Search for a valid linearization.

    Returns (verdict, states): verdict True/False, or None if the state
    budget ran out (inconclusive).
    """
    n = len(entries)
    mandatory_mask = 0
    for i, e in enumerate(entries):
        if not e.optional:
            mandatory_mask |= 1 << i
    seen = set()
    states = 0

    def dfs(done: int, value: Optional[str]) -> Optional[bool]:
        nonlocal states
        if done & mandatory_mask == mandatory_mask:
            return True  # leftover optional writes simply never happened
        key = (done, value)
        if key in seen:
            return False
        seen.add(key)
        states += 1
        if states > max_states:
            return None
        # an op may linearize next only if no *pending mandatory* op
        # already finished before it was invoked
        min_resp = min(
            entries[i].resp for i in range(n) if not done >> i & 1 and not entries[i].optional
        )
        exhausted = False
        for i in range(n):
            if done >> i & 1:
                continue
            e = entries[i]
            if e.inv > min_resp:
                continue
            if e.kind == "r":
                if e.value != value:
                    continue
                verdict = dfs(done | 1 << i, value)
            else:
                verdict = dfs(done | 1 << i, e.value)
            if verdict:
                return True
            if verdict is None:
                exhausted = True
        return None if exhausted else False

    verdict = dfs(0, initial)
    if verdict is not True and states > max_states:
        verdict = None  # memo may be polluted past the budget: only a
        # found linearization is a sound verdict
    return verdict, states


def check_linearizable(
    records: Sequence[OpRecord],
    initial: Optional[str] = None,
    max_states: int = 500_000,
    exact_once: bool = False,
) -> OracleReport:
    """Per-key linearizability of an acked history.

    Keys are independent registers (the store has no multi-key
    transactions), so the check decomposes per key — the standard
    locality property of linearizability.

    ``exact_once`` asserts the deployment deduplicates request ids at
    every replication hop (MS+SC: every chain member gates on the rid),
    so a rid-stamped write can execute at most once regardless of how
    many client attempts it took.
    """
    report = OracleReport()
    by_key: Dict[str, List[OpRecord]] = {}
    for rec in records:
        by_key.setdefault(rec.key, []).append(rec)
    checked = 0
    for key in sorted(by_key):
        entries = _entries_for_key(by_key[key], exact_once=exact_once)
        if entries is None:
            continue
        checked += 1
        verdict, states = _check_key(entries, initial, max_states)
        if verdict is None:
            report.warnings.append(
                f"key {key!r}: search exceeded {max_states} states ({len(entries)} ops) — inconclusive"
            )
        elif not verdict:
            acked = sum(1 for e in entries if not e.optional)
            report.violations.append(
                f"key {key!r}: no valid linearization "
                f"({acked} acked ops, {len(entries) - acked} indeterminate)"
            )
    report.stats = {"keys_checked": checked, "ops": len(records)}
    return report


# ---------------------------------------------------------------------------
# eventual consistency (EVENTUAL)
# ---------------------------------------------------------------------------
def check_eventual(
    records: Sequence[OpRecord],
    replica_dumps: Dict[str, Dict[str, Dict[str, str]]],
) -> OracleReport:
    """Validity + post-quiesce convergence, with session warnings.

    ``replica_dumps`` maps shard id -> replica (datalet) id -> its full
    key/value snapshot, taken after faults healed and propagation
    quiesced.
    """
    report = OracleReport()
    # -- validity: reads return only written values ---------------------
    written: Dict[str, set] = {}
    for rec in records:
        if rec.op == "put":  # any status: an unacked put may have landed
            written.setdefault(rec.key, set()).add(rec.value)
    bad_reads = 0
    for rec in records:
        if rec.op == "get" and rec.status == "ok" and rec.result is not None:
            if rec.result not in written.get(rec.key, ()):
                bad_reads += 1
                report.violations.append(
                    f"key {rec.key!r}: read returned {rec.result!r}, never written"
                )
    # -- convergence: replicas of a shard hold identical state ----------
    for shard_id in sorted(replica_dumps):
        dumps = replica_dumps[shard_id]
        if len(dumps) < 2:
            continue
        items = sorted(dumps.items())
        _, reference = items[0]
        for replica_id, dump in items[1:]:
            if dump == reference:
                continue
            diff_keys = sorted(
                k
                for k in set(reference) | set(dump)
                if reference.get(k) != dump.get(k)
            )
            report.violations.append(
                f"shard {shard_id}: replica {replica_id} diverged from "
                f"{items[0][0]} on {len(diff_keys)} keys "
                f"(e.g. {diff_keys[:3]})"
            )
    # -- session read-your-writes (warnings: EC does not promise it) ----
    stale_sessions = _session_stale_reads(records)
    for w in stale_sessions:
        report.warnings.append(w)
    report.stats = {
        "ops": len(records),
        "invalid_reads": bad_reads,
        "shards_compared": len(replica_dumps),
        "stale_session_reads": len(stale_sessions),
    }
    return report


def _session_stale_reads(records: Sequence[OpRecord]) -> List[str]:
    """Read-your-writes staleness: a session read that returns one of
    the session's *own earlier* values despite a later own acked write.
    (Foreign or absent values are ambiguous under concurrent writers and
    are not flagged.)"""
    out: List[str] = []
    # per (client, key): own acked puts in response order
    own: Dict[Tuple[str, str], List[OpRecord]] = {}
    for rec in records:
        if rec.op == "put" and rec.status == "ok":
            own.setdefault((rec.client, rec.key), []).append(rec)
    for rec in records:
        if rec.op != "get" or rec.status != "ok" or rec.result is None:
            continue
        puts = own.get((rec.client, rec.key), [])
        before = [p for p in puts if p.response is not None and p.response <= rec.invoke]
        if not before:
            continue
        latest = max(before, key=lambda p: p.response)
        older_values = {p.value for p in before if p is not latest}
        if rec.result != latest.value and rec.result in older_values:
            out.append(
                f"client {rec.client} key {rec.key!r}: read own stale "
                f"{rec.result!r} after acking {latest.value!r}"
            )
    return out
