"""ChaosController: replay a fault schedule against a live deployment.

The controller arms one simulator timer per :class:`FaultEvent` and
applies each fault at its exact simulated time, recording an *applied
timeline* whose digest is part of the run's determinism fingerprint.
``heal_all`` restores every reversible fault at once (partitions,
degradations, duplicate/reorder windows) so the post-chaos quiesce
phase starts from a clean fabric — crashed hosts are *not* auto-revived
here; random schedules always pair a crash with its restart, and an
unrestarted crash is a legitimate terminal fault the failover machinery
must absorb.
"""

from __future__ import annotations

import hashlib
from typing import List, Tuple

from repro.chaos.schedule import FaultEvent, FaultSchedule
from repro.net.simnet import SimCluster

__all__ = ["ChaosController"]


class ChaosController:
    """Arms and applies one schedule on one cluster."""

    def __init__(self, deployment, schedule: FaultSchedule):
        # accept either a harness Deployment or a bare SimCluster
        self.cluster: SimCluster = getattr(deployment, "cluster", deployment)
        # kept (when given a Deployment) for recover-restarts, which go
        # through Deployment.recover_host rather than a bare host thaw
        self.deployment = deployment if deployment is not self.cluster else None
        self.sim = self.cluster.sim
        self.schedule = schedule
        #: (sim_time, event) pairs in application order.
        self.applied: List[Tuple[float, FaultEvent]] = []
        #: RecoveryRecords from recover-restarts, in application order —
        #: the recovery oracle audits these after the run.
        self.recoveries: List = []
        self._armed = False

    # ------------------------------------------------------------------
    # arming & applying
    # ------------------------------------------------------------------
    def arm(self) -> None:
        """Schedule every event relative to *now* on the sim clock."""
        if self._armed:
            return
        self._armed = True
        t0 = self.sim.now
        for ev in self.schedule.events:
            self.sim.call_at(t0 + ev.at, self._apply, ev)

    def _apply(self, ev: FaultEvent) -> None:
        net = self.cluster.network
        if ev.kind == "crash":
            self.cluster.kill_host(ev.target)
        elif ev.kind == "restart":
            if ev.recover and self.deployment is not None:
                rec = self.deployment.recover_host(ev.target)
                if rec is not None:
                    self.recoveries.append(rec)
            else:
                self.cluster.restart_host(ev.target)
        elif ev.kind == "partition":
            if ev.oneway:
                net.cut_oneway(ev.target, ev.peer)
            else:
                net.partition(ev.target, ev.peer)
        elif ev.kind == "heal":
            if ev.oneway:
                net.heal_oneway(ev.target, ev.peer)
            else:
                net.heal(ev.target, ev.peer)
        elif ev.kind == "latency_spike":
            net.set_link_factor(ev.target, ev.peer, ev.factor)
        elif ev.kind == "slow_node":
            self.cluster.set_host_slowdown(ev.target, ev.factor)
            net.set_node_factor(ev.target, ev.factor)
        elif ev.kind == "duplicate":
            net.params.duplicate_rate = ev.rate
            if ev.rate > 0.0:
                # the fabric may now deliver twice; every receiver must
                # dedup by msg_id (actors added later get this from
                # add_actor, which checks the live rate)
                for actor in self.cluster.actors.values():
                    actor.dedup_incoming = True
        elif ev.kind == "reorder":
            net.params.reorder_rate = ev.rate
        self.applied.append((self.sim.now, ev))

    # ------------------------------------------------------------------
    # teardown
    # ------------------------------------------------------------------
    def heal_all(self) -> None:
        """Undo every reversible fault (partitions, latency factors,
        slowdowns, duplicate/reorder windows) in one shot."""
        net = self.cluster.network
        net.heal_all()
        net.clear_degradations()
        net.params.duplicate_rate = 0.0
        net.params.reorder_rate = 0.0
        for host in self.cluster.hosts():
            if self.cluster.is_host_alive(host):
                self.cluster.set_host_slowdown(host, 1.0)

    # ------------------------------------------------------------------
    # determinism fingerprint
    # ------------------------------------------------------------------
    def digest(self) -> str:
        """Hash of the applied timeline (times + events, no message
        ids — those are process-global counters, not run-deterministic)."""
        h = hashlib.sha256()
        for when, ev in self.applied:
            h.update(f"{when:.9f}|{ev.describe()}\n".encode())
        return h.hexdigest()
