"""Declarative fault schedules.

A schedule is a seeded, sorted list of :class:`FaultEvent` — each one a
timed fault (or its paired recovery) that the
:class:`~repro.chaos.controller.ChaosController` replays on the
simulated clock.  Because both the schedule generation and the
simulation are seeded, an entire chaotic run is reproducible
bit-for-bit from ``(seed, spec)``.

Fault kinds
-----------

``crash``/``restart``
    Kill / revive a whole host (controlet + datalet).  A plain restart
    *thaws* the frozen process (in-memory state intact; it must fence
    and re-confirm membership — it never wins), so random schedules
    pair it with downtime comfortably above the coordinator's
    ``failure_timeout``: the node is swept and replaced first.  A
    restart with ``recover=True`` is the durable fault class instead:
    the host's actors are torn down at crash time and *re-spawned from
    the host's DurableStore* (WAL replay, then the protocol's catch-up
    path) — modeling a power-cycled node rejoining with
    recovered-but-stale state.  Recover-restarts may (and usually do)
    come back *inside* the detection window.
``partition``/``heal``
    Cut / restore traffic between two hosts.  ``oneway=True`` drops
    only ``target -> peer`` (an asymmetric partition: the classic
    "I can hear you but you can't hear me").
``latency_spike``
    Multiply the base latency of the directed ``target -> peer`` link
    by ``factor``; ``factor=1`` restores it.
``slow_node``
    Degrade a host: CPU service slows by ``factor`` and every message
    to/from it is delayed by ``factor``; ``factor=1`` restores.
``duplicate``/``reorder``
    Raise the fabric's duplicate / reorder probability to ``rate`` for
    a window (``rate=0`` closes it).  Receivers dedup by message id.

Per-combination fault menus
---------------------------

Not every fault is meaningful against every topology/consistency
combination (see docs/ARCHITECTURE.md "Chaos & fault injection"):

* ``duplicate``/``reorder`` are scheduled only for EVENTUAL combos —
  the strong protocols (chain replication, DLM fan-out) serialize on
  request/response pairs with no per-link sequencing to exercise.
* ``partition`` is excluded for AA+SC: write-all/read-local with no
  quorum is genuinely non-linearizable under a partial fan-out (the
  paper's design inherits the CAP trade-off), so a partition there
  would make the oracle flag correct code.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.config import ControlConfig
from repro.core.types import Consistency, Topology
from repro.errors import ConfigError
from repro.sim.rng import RngRegistry

__all__ = [
    "FaultEvent",
    "FaultSchedule",
    "fault_menu",
    "random_schedule",
    "rolling_restart_schedule",
]

KINDS = (
    "crash",
    "restart",
    "partition",
    "heal",
    "latency_spike",
    "slow_node",
    "duplicate",
    "reorder",
)

#: the coordinator's *actual* default detection window, read from the
#: config dataclass rather than restated as a comment-level constant —
#: deployments with a custom ``failure_timeout`` pass theirs to
#: :func:`random_schedule` / :meth:`FaultSchedule.validate`.
DEFAULT_FAILURE_TIMEOUT = ControlConfig().failure_timeout

#: margin past the detection window for thaw-style crash/restart pairs,
#: so a crashed node is always swept and replaced before it thaws (no
#: stale-rejoin ambiguity).
DOWNTIME_MARGIN = 2.0

#: minimum thaw-crash downtime under the default config.
MIN_DOWNTIME = DEFAULT_FAILURE_TIMEOUT + DOWNTIME_MARGIN


@dataclass(frozen=True)
class FaultEvent:
    """One timed fault (times are seconds from schedule start)."""

    at: float
    kind: str
    target: Optional[str] = None
    peer: Optional[str] = None
    factor: float = 1.0
    rate: float = 0.0
    oneway: bool = False
    #: restart flavor: ``False`` thaws the frozen process (in-memory
    #: state intact, must fence), ``True`` tears the host's actors down
    #: and re-spawns them from the host's DurableStore (WAL replay +
    #: catch-up) — the durable crash-restart fault class.
    recover: bool = False

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ConfigError(f"unknown fault kind {self.kind!r}")
        if self.recover and self.kind != "restart":
            raise ConfigError("recover=True is only meaningful for restart events")
        if self.at < 0:
            raise ConfigError(f"fault time must be >= 0, got {self.at}")
        if self.kind in ("partition", "heal", "latency_spike") and self.peer is None:
            raise ConfigError(f"{self.kind} needs a peer host")
        if self.kind in ("crash", "restart", "partition", "heal",
                         "latency_spike", "slow_node") and self.target is None:
            raise ConfigError(f"{self.kind} needs a target host")
        if not 0.0 <= self.rate < 1.0:
            raise ConfigError(f"rate must be in [0, 1), got {self.rate}")
        if self.factor < 1.0:
            raise ConfigError(f"factor must be >= 1, got {self.factor}")

    def describe(self) -> str:
        bits = [f"{self.at:.3f}", self.kind]
        if self.recover:
            bits.append("recover")
        if self.target:
            bits.append(self.target)
        if self.peer:
            bits.append(("->" if self.oneway else "<->") + self.peer)
        if self.factor != 1.0:
            bits.append(f"x{self.factor:g}")
        if self.kind in ("duplicate", "reorder"):
            bits.append(f"rate={self.rate:g}")
        return " ".join(bits)


@dataclass
class FaultSchedule:
    """A sorted sequence of fault events plus its provenance."""

    events: List[FaultEvent] = field(default_factory=list)
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        self.events = sorted(self.events, key=lambda e: e.at)

    @property
    def horizon(self) -> float:
        """Time of the last event (0 for an empty schedule)."""
        return self.events[-1].at if self.events else 0.0

    def digest(self) -> str:
        """Stable content hash — two identical schedules (same seed,
        same inputs) hash identically across processes."""
        h = hashlib.sha256()
        for ev in self.events:
            h.update(
                f"{ev.at:.9f}|{ev.kind}|{ev.target}|{ev.peer}|"
                f"{ev.factor:.9f}|{ev.rate:.9f}|{ev.oneway}|{ev.recover}\n".encode()
            )
        return h.hexdigest()

    def describe(self) -> str:
        return "\n".join(ev.describe() for ev in self.events)

    def validate(self, failure_timeout: Optional[float] = None) -> None:
        """Check crash/restart pairing invariants; raise ConfigError.

        * a ``restart`` must follow a ``crash`` of the same target (and
          each crash may be restarted at most once);
        * no host is crashed twice without an intervening restart;
        * a *thaw* restart (``recover=False``) must leave downtime
          strictly greater than the coordinator's ``failure_timeout`` —
          otherwise the crash is undetectable and the thawed node races
          its own replacement;
        * a *recover* restart only needs positive downtime (rejoining
          inside the detection window is exactly the durable fault
          class being exercised).
        """
        timeout = DEFAULT_FAILURE_TIMEOUT if failure_timeout is None else failure_timeout
        crashed_at: dict = {}
        for ev in self.events:
            if ev.kind == "crash":
                if ev.target in crashed_at:
                    raise ConfigError(
                        f"host {ev.target} crashed again at {ev.at:.3f} "
                        f"while still down (crashed at {crashed_at[ev.target]:.3f})"
                    )
                crashed_at[ev.target] = ev.at
            elif ev.kind == "restart":
                if ev.target not in crashed_at:
                    raise ConfigError(
                        f"restart of {ev.target} at {ev.at:.3f} without a "
                        f"preceding crash"
                    )
                downtime = ev.at - crashed_at.pop(ev.target)
                if downtime <= 0:
                    raise ConfigError(
                        f"restart of {ev.target} at {ev.at:.3f} needs "
                        f"positive downtime, got {downtime:.3f}"
                    )
                if not ev.recover and downtime <= timeout:
                    raise ConfigError(
                        f"thaw restart of {ev.target} after {downtime:.3f}s "
                        f"is inside the {timeout:.3f}s detection window; "
                        f"use recover=True for inside-window restarts"
                    )


def fault_menu(
    topology: Topology,
    consistency: Consistency,
    restarts: bool = False,
) -> Tuple[str, ...]:
    """The fault kinds a random schedule may draw for one combo.

    ``restarts=True`` adds the durable ``restart`` fault (crash +
    inside-window recover-restart from the DurableStore); valid for
    every combo, but only meaningful when the deployment runs with
    WAL-backed datalets.
    """
    topology = Topology(topology)
    consistency = Consistency(consistency)
    menu = ["crash", "latency_spike", "slow_node"]
    if restarts:
        menu.append("restart")
    if not (topology is Topology.AA and consistency is Consistency.STRONG):
        menu.append("partition")
    if consistency is Consistency.EVENTUAL:
        menu.extend(["duplicate", "reorder"])
    return tuple(menu)


def rolling_restart_schedule(
    hosts: Sequence[str],
    start: float = 1.0,
    downtime: float = 0.5,
    stagger: float = 2.0,
) -> FaultSchedule:
    """One crash + recover-restart per host, strictly one at a time.

    The classic operational rolling restart: every data host
    power-cycles in sequence, recovering from its DurableStore (WAL
    replay, then the protocol's stale-rejoin catch-up) while the rest
    of the fleet keeps serving.  Deterministic — no RNG draws — so a
    rolling-restart soak's digest depends only on ``(seed, spec)`` like
    every other schedule.  ``stagger`` spaces the crash times so at
    most one host is ever down (requires ``stagger > downtime``);
    downtime is deliberately *inside* the detection window, which is
    exactly the durable fault class (``recover=True``).
    """
    if not hosts:
        raise ConfigError("need at least one host for a rolling restart")
    if downtime <= 0:
        raise ConfigError("downtime must be positive")
    if stagger <= downtime:
        raise ConfigError(
            "stagger must exceed downtime so only one host is down at a time"
        )
    events: List[FaultEvent] = []
    for i, host in enumerate(sorted(hosts)):
        at = start + i * stagger
        events.append(FaultEvent(at=at, kind="crash", target=host))
        events.append(
            FaultEvent(at=at + downtime, kind="restart", target=host, recover=True)
        )
    return FaultSchedule(events=events)


def random_schedule(
    seed: int,
    hosts: Sequence[str],
    duration: float,
    topology: Topology = Topology.MS,
    consistency: Consistency = Consistency.STRONG,
    max_crashes: int = 2,
    events_per_10s: float = 4.0,
    spike_factor: float = 10.0,
    slow_factor: float = 4.0,
    failure_timeout: Optional[float] = None,
    restarts: bool = False,
    max_restarts: int = 2,
    mild: bool = False,
) -> FaultSchedule:
    """Draw a reproducible random schedule for one combo.

    ``hosts`` must be the **data-plane replica hosts only** — chaos
    never targets the coordinator, DLM, shared-log or client hosts
    (those model managed infrastructure; the paper's failure
    experiments kill storage nodes).

    ``failure_timeout`` is the deployment's actual detection window
    (defaults to the config default): thaw-crash downtime is derived
    from it, so a non-default config still produces valid schedules.
    ``restarts=True`` additionally draws crash + recover-restart pairs
    with *short* downtime (inside the detection window), exercising
    WAL replay and stale-rejoin catch-up; at most ``max_restarts``.

    ``mild=True`` restricts the menu to the non-lossy perturbations
    (latency spikes, slow nodes, duplicates, reorders) — no crashes or
    partitions.  Used by the reshard soaks: a reshard's participants
    (migration sources, the destination shard, the coordinator driving
    the cutover) are assumed live for the duration of the window, so
    only faults that delay or duplicate traffic are in scope.
    """
    if len(hosts) < 2:
        raise ConfigError("need at least two hosts to schedule faults")
    if duration <= 0:
        raise ConfigError("duration must be positive")
    timeout = DEFAULT_FAILURE_TIMEOUT if failure_timeout is None else failure_timeout
    min_down = timeout + DOWNTIME_MARGIN
    # Pure function of the run seed, evaluated before the simulation
    # starts.  Drawing from a *named* registry stream (rather than
    # random.Random(seed) directly) keeps the schedule decoupled from
    # every other consumer of the seed: adding a draw elsewhere can
    # never perturb the schedule, and vice versa.
    rng = RngRegistry(seed).stream("chaos.schedule")
    hosts = sorted(hosts)
    menu = fault_menu(topology, consistency, restarts=restarts)
    if mild:
        menu = tuple(
            k for k in menu
            if k in ("latency_spike", "slow_node", "duplicate", "reorder")
        )
    events: List[FaultEvent] = []
    crashes = 0
    restarts_drawn = 0
    crashed_until = {h: 0.0 for h in hosts}
    n = max(2, int(duration * events_per_10s / 10.0))
    for _ in range(n):
        kind = rng.choice(menu)
        at = rng.uniform(0.0, duration)
        if kind == "crash":
            up = [h for h in hosts if crashed_until[h] <= at]
            if crashes >= max_crashes or len(up) < 2:
                continue  # keep a majority of the fleet breathing
            target = rng.choice(up)
            downtime = min_down + rng.uniform(0.0, 3.0)
            crashed_until[target] = at + downtime
            crashes += 1
            events.append(FaultEvent(at=at, kind="crash", target=target))
            events.append(FaultEvent(at=at + downtime, kind="restart", target=target))
        elif kind == "restart":
            # durable crash-restart: the node power-cycles and comes
            # back *inside* the detection window, recovering from its
            # DurableStore (WAL replay) and catching up from peers
            up = [h for h in hosts if crashed_until[h] <= at]
            if restarts_drawn >= max_restarts or len(up) < 2:
                continue
            target = rng.choice(up)
            downtime = rng.uniform(0.4, max(0.8, 0.5 * timeout))
            crashed_until[target] = at + downtime
            restarts_drawn += 1
            events.append(FaultEvent(at=at, kind="crash", target=target))
            events.append(
                FaultEvent(at=at + downtime, kind="restart", target=target, recover=True)
            )
        elif kind == "partition":
            a, b = rng.sample(hosts, 2)
            oneway = rng.random() < 0.5
            heal_after = rng.uniform(1.0, 3.0)
            events.append(FaultEvent(at=at, kind="partition", target=a, peer=b, oneway=oneway))
            events.append(FaultEvent(at=at + heal_after, kind="heal", target=a, peer=b, oneway=oneway))
        elif kind == "latency_spike":
            a, b = rng.sample(hosts, 2)
            clear_after = rng.uniform(1.0, 3.0)
            events.append(FaultEvent(at=at, kind="latency_spike", target=a, peer=b, factor=spike_factor))
            events.append(FaultEvent(at=at + clear_after, kind="latency_spike", target=a, peer=b))
        elif kind == "slow_node":
            target = rng.choice(hosts)
            clear_after = rng.uniform(2.0, 5.0)
            events.append(FaultEvent(at=at, kind="slow_node", target=target, factor=slow_factor))
            events.append(FaultEvent(at=at + clear_after, kind="slow_node", target=target))
        else:  # duplicate / reorder window
            rate = 0.05 + rng.random() * 0.15
            close_after = rng.uniform(2.0, 5.0)
            events.append(FaultEvent(at=at, kind=kind, rate=rate))
            events.append(FaultEvent(at=at + close_after, kind=kind, rate=0.0))
    return FaultSchedule(events=events, seed=seed)
