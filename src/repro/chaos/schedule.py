"""Declarative fault schedules.

A schedule is a seeded, sorted list of :class:`FaultEvent` — each one a
timed fault (or its paired recovery) that the
:class:`~repro.chaos.controller.ChaosController` replays on the
simulated clock.  Because both the schedule generation and the
simulation are seeded, an entire chaotic run is reproducible
bit-for-bit from ``(seed, spec)``.

Fault kinds
-----------

``crash``/``restart``
    Kill / revive a whole host (controlet + datalet).  Random schedules
    always pair them, with downtime comfortably above the coordinator's
    ``failure_timeout`` so the node is swept and replaced before it
    thaws — a thawed zombie must re-confirm membership (it never wins).
``partition``/``heal``
    Cut / restore traffic between two hosts.  ``oneway=True`` drops
    only ``target -> peer`` (an asymmetric partition: the classic
    "I can hear you but you can't hear me").
``latency_spike``
    Multiply the base latency of the directed ``target -> peer`` link
    by ``factor``; ``factor=1`` restores it.
``slow_node``
    Degrade a host: CPU service slows by ``factor`` and every message
    to/from it is delayed by ``factor``; ``factor=1`` restores.
``duplicate``/``reorder``
    Raise the fabric's duplicate / reorder probability to ``rate`` for
    a window (``rate=0`` closes it).  Receivers dedup by message id.

Per-combination fault menus
---------------------------

Not every fault is meaningful against every topology/consistency
combination (see docs/ARCHITECTURE.md "Chaos & fault injection"):

* ``duplicate``/``reorder`` are scheduled only for EVENTUAL combos —
  the strong protocols (chain replication, DLM fan-out) serialize on
  request/response pairs with no per-link sequencing to exercise.
* ``partition`` is excluded for AA+SC: write-all/read-local with no
  quorum is genuinely non-linearizable under a partial fan-out (the
  paper's design inherits the CAP trade-off), so a partition there
  would make the oracle flag correct code.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.types import Consistency, Topology
from repro.errors import ConfigError
from repro.sim.rng import RngRegistry

__all__ = ["FaultEvent", "FaultSchedule", "fault_menu", "random_schedule"]

KINDS = (
    "crash",
    "restart",
    "partition",
    "heal",
    "latency_spike",
    "slow_node",
    "duplicate",
    "reorder",
)

#: minimum crash downtime: past the coordinator's default
#: ``failure_timeout`` (3s) plus margin, so a crashed node is always
#: swept and replaced before its restart (no stale-rejoin ambiguity).
MIN_DOWNTIME = 5.0


@dataclass(frozen=True)
class FaultEvent:
    """One timed fault (times are seconds from schedule start)."""

    at: float
    kind: str
    target: Optional[str] = None
    peer: Optional[str] = None
    factor: float = 1.0
    rate: float = 0.0
    oneway: bool = False

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ConfigError(f"unknown fault kind {self.kind!r}")
        if self.at < 0:
            raise ConfigError(f"fault time must be >= 0, got {self.at}")
        if self.kind in ("partition", "heal", "latency_spike") and self.peer is None:
            raise ConfigError(f"{self.kind} needs a peer host")
        if self.kind in ("crash", "restart", "partition", "heal",
                         "latency_spike", "slow_node") and self.target is None:
            raise ConfigError(f"{self.kind} needs a target host")
        if not 0.0 <= self.rate < 1.0:
            raise ConfigError(f"rate must be in [0, 1), got {self.rate}")
        if self.factor < 1.0:
            raise ConfigError(f"factor must be >= 1, got {self.factor}")

    def describe(self) -> str:
        bits = [f"{self.at:.3f}", self.kind]
        if self.target:
            bits.append(self.target)
        if self.peer:
            bits.append(("->" if self.oneway else "<->") + self.peer)
        if self.factor != 1.0:
            bits.append(f"x{self.factor:g}")
        if self.kind in ("duplicate", "reorder"):
            bits.append(f"rate={self.rate:g}")
        return " ".join(bits)


@dataclass
class FaultSchedule:
    """A sorted sequence of fault events plus its provenance."""

    events: List[FaultEvent] = field(default_factory=list)
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        self.events = sorted(self.events, key=lambda e: e.at)

    @property
    def horizon(self) -> float:
        """Time of the last event (0 for an empty schedule)."""
        return self.events[-1].at if self.events else 0.0

    def digest(self) -> str:
        """Stable content hash — two identical schedules (same seed,
        same inputs) hash identically across processes."""
        h = hashlib.sha256()
        for ev in self.events:
            h.update(
                f"{ev.at:.9f}|{ev.kind}|{ev.target}|{ev.peer}|"
                f"{ev.factor:.9f}|{ev.rate:.9f}|{ev.oneway}\n".encode()
            )
        return h.hexdigest()

    def describe(self) -> str:
        return "\n".join(ev.describe() for ev in self.events)


def fault_menu(topology: Topology, consistency: Consistency) -> Tuple[str, ...]:
    """The fault kinds a random schedule may draw for one combo."""
    topology = Topology(topology)
    consistency = Consistency(consistency)
    menu = ["crash", "latency_spike", "slow_node"]
    if not (topology is Topology.AA and consistency is Consistency.STRONG):
        menu.append("partition")
    if consistency is Consistency.EVENTUAL:
        menu.extend(["duplicate", "reorder"])
    return tuple(menu)


def random_schedule(
    seed: int,
    hosts: Sequence[str],
    duration: float,
    topology: Topology = Topology.MS,
    consistency: Consistency = Consistency.STRONG,
    max_crashes: int = 2,
    events_per_10s: float = 4.0,
    spike_factor: float = 10.0,
    slow_factor: float = 4.0,
) -> FaultSchedule:
    """Draw a reproducible random schedule for one combo.

    ``hosts`` must be the **data-plane replica hosts only** — chaos
    never targets the coordinator, DLM, shared-log or client hosts
    (those model managed infrastructure; the paper's failure
    experiments kill storage nodes).
    """
    if len(hosts) < 2:
        raise ConfigError("need at least two hosts to schedule faults")
    if duration <= 0:
        raise ConfigError("duration must be positive")
    # Pure function of the run seed, evaluated before the simulation
    # starts.  Drawing from a *named* registry stream (rather than
    # random.Random(seed) directly) keeps the schedule decoupled from
    # every other consumer of the seed: adding a draw elsewhere can
    # never perturb the schedule, and vice versa.
    rng = RngRegistry(seed).stream("chaos.schedule")
    hosts = sorted(hosts)
    menu = fault_menu(topology, consistency)
    events: List[FaultEvent] = []
    crashes = 0
    crashed_until = {h: 0.0 for h in hosts}
    n = max(2, int(duration * events_per_10s / 10.0))
    for _ in range(n):
        kind = rng.choice(menu)
        at = rng.uniform(0.0, duration)
        if kind == "crash":
            up = [h for h in hosts if crashed_until[h] <= at]
            if crashes >= max_crashes or len(up) < 2:
                continue  # keep a majority of the fleet breathing
            target = rng.choice(up)
            downtime = MIN_DOWNTIME + rng.uniform(0.0, 3.0)
            crashed_until[target] = at + downtime
            crashes += 1
            events.append(FaultEvent(at=at, kind="crash", target=target))
            events.append(FaultEvent(at=at + downtime, kind="restart", target=target))
        elif kind == "partition":
            a, b = rng.sample(hosts, 2)
            oneway = rng.random() < 0.5
            heal_after = rng.uniform(1.0, 3.0)
            events.append(FaultEvent(at=at, kind="partition", target=a, peer=b, oneway=oneway))
            events.append(FaultEvent(at=at + heal_after, kind="heal", target=a, peer=b, oneway=oneway))
        elif kind == "latency_spike":
            a, b = rng.sample(hosts, 2)
            clear_after = rng.uniform(1.0, 3.0)
            events.append(FaultEvent(at=at, kind="latency_spike", target=a, peer=b, factor=spike_factor))
            events.append(FaultEvent(at=at + clear_after, kind="latency_spike", target=a, peer=b))
        elif kind == "slow_node":
            target = rng.choice(hosts)
            clear_after = rng.uniform(2.0, 5.0)
            events.append(FaultEvent(at=at, kind="slow_node", target=target, factor=slow_factor))
            events.append(FaultEvent(at=at + clear_after, kind="slow_node", target=target))
        else:  # duplicate / reorder window
            rate = 0.05 + rng.random() * 0.15
            close_after = rng.uniform(2.0, 5.0)
            events.append(FaultEvent(at=at, kind=kind, rate=rate))
            events.append(FaultEvent(at=at + close_after, kind=kind, rate=0.0))
    return FaultSchedule(events=events, seed=seed)
