"""Data partitioning schemes for the client library."""

from repro.hashing.range_part import RangePartitioner
from repro.hashing.ring import HashRing, stable_hash

__all__ = ["HashRing", "RangePartitioner", "stable_hash"]
