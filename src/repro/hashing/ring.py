"""Consistent hashing with virtual nodes.

The client library's default data-partitioning scheme (paper §III:
"BESPOKV allows different developers to choose their own partitioning
techniques such as consistent hashing and range-based partitioning").
Virtual nodes smooth the load distribution; the hash is stable across
processes and Python versions (MD5, not ``hash()``).
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Sequence

from repro.errors import ConfigError

__all__ = ["HashRing", "stable_hash"]


def stable_hash(key: str) -> int:
    """64-bit stable hash of ``key``."""
    return int.from_bytes(hashlib.md5(key.encode()).digest()[:8], "big")


class HashRing:
    """Maps keys to member names on a consistent-hash circle."""

    def __init__(self, members: Sequence[str] = (), vnodes: int = 64):
        if vnodes < 1:
            raise ConfigError(f"vnodes must be >= 1, got {vnodes}")
        self._vnodes = vnodes
        self._points: List[int] = []
        self._owners: Dict[int, str] = {}
        self._members: set[str] = set()
        for m in members:
            self.add(m)

    # -- membership ------------------------------------------------------
    def add(self, member: str) -> None:
        if member in self._members:
            raise ConfigError(f"ring member {member!r} already present")
        self._members.add(member)
        for i in range(self._vnodes):
            point = stable_hash(f"{member}#{i}")
            # extremely unlikely collision: skew one position
            while point in self._owners:
                point = (point + 1) % (1 << 64)
            self._owners[point] = member
            bisect.insort(self._points, point)

    def remove(self, member: str) -> None:
        if member not in self._members:
            raise ConfigError(f"ring member {member!r} not present")
        self._members.discard(member)
        dead = [p for p, m in self._owners.items() if m == member]
        for p in dead:
            del self._owners[p]
        self._points = sorted(self._owners)

    @property
    def members(self) -> List[str]:
        return sorted(self._members)

    def diff(self, other: "HashRing") -> Dict[str, List[str]]:
        """Membership delta from ``self`` to ``other``.

        Returns ``{"added": [...], "removed": [...]}`` — the exact
        ``add``/``remove`` calls that turn this ring into ``other``.
        Because vnode placement is a pure function of the member name,
        applying the diff reproduces ``other``'s ownership exactly
        (remove + re-add is an identity, see ``tests/test_hashing.py``).
        """
        return {
            "added": sorted(other._members - self._members),
            "removed": sorted(self._members - other._members),
        }

    def __len__(self) -> int:
        return len(self._members)

    # -- lookup ----------------------------------------------------------
    def lookup(self, key: str) -> str:
        """Owner of ``key`` (first vnode clockwise of the key's point)."""
        if not self._points:
            raise ConfigError("lookup on empty hash ring")
        point = stable_hash(key)
        i = bisect.bisect_right(self._points, point)
        if i == len(self._points):
            i = 0
        return self._owners[self._points[i]]

    def lookup_n(self, key: str, n: int) -> List[str]:
        """First ``n`` distinct members clockwise of the key (preference
        list, Dynamo-style)."""
        if n > len(self._members):
            raise ConfigError(f"asked for {n} members, ring has {len(self._members)}")
        point = stable_hash(key)
        i = bisect.bisect_right(self._points, point)
        out: List[str] = []
        seen: set[str] = set()
        for step in range(len(self._points)):
            owner = self._owners[self._points[(i + step) % len(self._points)]]
            if owner not in seen:
                seen.add(owner)
                out.append(owner)
                if len(out) == n:
                    break
        return out
