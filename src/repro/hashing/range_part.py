"""Range-based partitioning for the range-query service (paper §IV-B).

"The client library supports range-based partitioning, e.g., dividing
the name space by alphabetical order (A-C on one node, D-F on
another)."  A :class:`RangePartitioner` owns a sorted list of split
points; shard *i* covers ``[split[i-1], split[i])``.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Sequence, Tuple

from repro.errors import ConfigError

__all__ = ["RangePartitioner"]


class RangePartitioner:
    """Maps keys and key ranges to shard names by sorted split points."""

    def __init__(self, shards: Sequence[str], splits: Sequence[str]):
        """``splits`` are the lower-exclusive boundaries between
        consecutive shards; ``len(splits) == len(shards) - 1``.

        Example: shards ``["s0","s1","s2"]`` with splits ``["g","n"]``
        puts keys < "g" on s0, ["g","n") on s1 and >= "n" on s2.
        """
        if len(shards) < 1:
            raise ConfigError("need at least one shard")
        if len(splits) != len(shards) - 1:
            raise ConfigError(
                f"expected {len(shards) - 1} splits for {len(shards)} shards, got {len(splits)}"
            )
        if list(splits) != sorted(splits):
            raise ConfigError("splits must be sorted")
        if len(set(splits)) != len(splits):
            raise ConfigError("splits must be distinct")
        self._shards: List[str] = list(shards)
        self._splits: List[str] = list(splits)

    @classmethod
    def uniform_alpha(cls, shards: Sequence[str]) -> "RangePartitioner":
        """Split the lowercase-alpha keyspace evenly across ``shards``."""
        n = len(shards)
        alphabet = "abcdefghijklmnopqrstuvwxyz"
        splits = [alphabet[(i * 26) // n] for i in range(1, n)]
        if len(set(splits)) != len(splits):
            raise ConfigError(f"too many shards ({n}) for single-letter splits")
        return cls(shards, splits)

    @property
    def shards(self) -> List[str]:
        return list(self._shards)

    def lookup(self, key: str) -> str:
        return self._shards[bisect.bisect_right(self._splits, key)]

    def shard_bounds(self, shard: str) -> Tuple[str, str]:
        """Inclusive-lo / exclusive-hi bounds of ``shard`` ("" and
        "\\uffff" stand for the open ends)."""
        try:
            i = self._shards.index(shard)
        except ValueError:
            raise ConfigError(f"unknown shard {shard!r}") from None
        lo = self._splits[i - 1] if i > 0 else ""
        hi = self._splits[i] if i < len(self._splits) else "￿"
        return lo, hi

    def covering(self, start: str, end: str) -> Dict[str, Tuple[str, str]]:
        """Shards intersecting ``[start, end)`` with per-shard clipped
        sub-ranges — how the range-query controlet fans a scan out."""
        if start >= end:
            return {}
        out: Dict[str, Tuple[str, str]] = {}
        for shard in self._shards:
            lo, hi = self.shard_bounds(shard)
            s, e = max(start, lo), min(end, hi)
            if s < e:
                out[shard] = (s, e)
        return out
