"""The request envelope that rides every message of one client request.

A :class:`RequestContext` is created once per client operation and then
flows client → controlet → replication fan-out/chain → datalet → ack
without any handler threading it by hand: the actor fabric stamps the
current context onto every outgoing :class:`~repro.net.message.Message`
and restores it around response callbacks, handler dispatch, and RPC
timeouts (see ``Actor.deliver`` / ``Actor._expire``).

Two independent concerns share the envelope:

* **identity** — ``req_id`` names the *operation* (not the attempt), so
  replicas can deduplicate client retries from fabric duplicates.  It
  is stamped on every mutation even when tracing is off.
* **tracing** — ``trace_id``/``span_id`` tie the message to the span
  tree an attached :class:`~repro.obs.trace.SpanRecorder` is building.
  ``trace_id`` is ``None`` when no recorder is attached, and all span
  hooks stay dormant.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["RequestContext"]


class RequestContext:
    """Per-request envelope: trace identity, origin, deadline, request id."""

    __slots__ = ("trace_id", "span_id", "origin", "deadline", "req_id")

    def __init__(
        self,
        trace_id: Optional[int] = None,
        span_id: int = 0,
        origin: str = "",
        deadline: Optional[float] = None,
        req_id: Optional[str] = None,
    ) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.origin = origin
        self.deadline = deadline
        self.req_id = req_id

    def child(self, span_id: int) -> "RequestContext":
        """Same request, re-parented under ``span_id`` (one RPC hop down)."""
        return RequestContext(self.trace_id, span_id, self.origin,
                              self.deadline, self.req_id)

    def to_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "origin": self.origin,
            "deadline": self.deadline,
            "req_id": self.req_id,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"RequestContext(trace={self.trace_id}, span={self.span_id}, "
                f"origin={self.origin!r}, req_id={self.req_id!r})")
