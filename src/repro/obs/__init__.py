"""Observability plane: request contexts, span tracing, and metrics.

``repro.obs`` is a leaf package — it imports nothing from ``repro.net``
or the controlets, so every layer (client, fabric, controlets, harness,
chaos) can depend on it without cycles.  The fabric integrates with it
by duck-typing: an :class:`~repro.obs.trace.SpanRecorder` attached via
``SimCluster.attach_obs`` is stored on each actor as ``_obs`` and only
consulted behind ``is not None`` checks, so a run without tracing pays
a single flag test per hook and allocates nothing.
"""

from repro.obs.context import RequestContext
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.trace import Span, SpanRecorder, TRACE_FORMAT

__all__ = [
    "RequestContext",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "SpanRecorder",
    "TRACE_FORMAT",
]
