"""Metrics plane: counters, gauges, and streaming-percentile histograms.

One :class:`MetricsRegistry` lives on every ``SimCluster`` and absorbs
the counter dicts previously scattered across controlets, datalets, the
coordinator, the DLM, and the shared log.  Actors keep mutating their
own plain dicts / attributes on the hot path (zero indirection cost);
the registry holds *references* to those live sources via
:meth:`MetricsRegistry.register_group` and only reads them when a
snapshot is taken (``harness.stats.collect_registry``).

Histograms are log-bucketed (geometric buckets, 25% growth), giving
streaming p50/p95/p99 with O(1) ``observe`` and bounded memory
regardless of sample count.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Mapping, Optional, Union

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

# Geometric bucket growth factor.  log(v)/log(GROWTH) maps a value to
# its bucket index; 1.25 keeps relative quantile error under ~12%.
_GROWTH = 1.25
_LOG_GROWTH = math.log(_GROWTH)
# Values at or below this are clamped into the bottom bucket so that
# zero-duration samples (same-tick events) never feed math.log(0).
_FLOOR = 1e-9


class Counter:
    """Monotonic counter."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, n: float = 1.0) -> None:
        self.value += n


class Gauge:
    """Point-in-time value (last write wins)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, v: float) -> None:
        self.value = v


class Histogram:
    """Log-bucketed histogram with streaming percentile estimates."""

    __slots__ = ("count", "sum", "_min", "_max", "_buckets")

    def __init__(self) -> None:
        self.count = 0
        self.sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._buckets: Dict[int, int] = {}

    def observe(self, v: float) -> None:
        self.count += 1
        self.sum += v
        if self._min is None or v < self._min:
            self._min = v
        if self._max is None or v > self._max:
            self._max = v
        idx = int(math.floor(math.log(max(v, _FLOOR)) / _LOG_GROWTH))
        self._buckets[idx] = self._buckets.get(idx, 0) + 1

    def percentile(self, q: float) -> float:
        """Estimate the ``q`` quantile (0 < q <= 1) from the buckets."""
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for idx in sorted(self._buckets):
            seen += self._buckets[idx]
            if seen >= rank:
                # geometric midpoint of the bucket [g^idx, g^(idx+1))
                mid = _GROWTH ** (idx + 0.5)
                lo = self._min if self._min is not None else mid
                hi = self._max if self._max is not None else mid
                return min(max(mid, lo), hi)
        return self._max if self._max is not None else 0.0

    def snapshot(self) -> Dict[str, float]:
        mean = self.sum / self.count if self.count else 0.0
        return {
            "count": float(self.count),
            "sum": self.sum,
            "mean": mean,
            "min": self._min if self._min is not None else 0.0,
            "max": self._max if self._max is not None else 0.0,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
        }


# A group source is either a live dict the owner keeps mutating, or a
# zero-arg callable producing one on demand.
GroupSource = Union[Mapping[str, float], Callable[[], Mapping[str, float]]]


class MetricsRegistry:
    """Get-or-create registry for counters/gauges/histograms + scrape groups."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._groups: Dict[str, GroupSource] = {}

    # -- instruments -----------------------------------------------------
    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter()
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge()
        return g

    def histogram(self, name: str) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram()
        return h

    # -- scrape groups ---------------------------------------------------
    def register_group(self, prefix: str, source: GroupSource) -> None:
        """Expose a live stats dict (or callable) under ``prefix``.

        The source is read only at :meth:`snapshot` time, so owners pay
        nothing per update — they keep bumping their own plain dicts.
        """
        self._groups[prefix] = source

    # -- snapshot --------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict]:
        groups: Dict[str, Dict[str, float]] = {}
        for prefix in sorted(self._groups):
            source = self._groups[prefix]
            data = source() if callable(source) else source
            groups[prefix] = {k: float(v) for k, v in sorted(data.items())}
        return {
            "counters": {k: self._counters[k].value
                         for k in sorted(self._counters)},
            "gauges": {k: self._gauges[k].value for k in sorted(self._gauges)},
            "histograms": {k: self._histograms[k].snapshot()
                           for k in sorted(self._histograms)},
            "groups": groups,
        }
