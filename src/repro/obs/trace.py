"""Deterministic span tracing hooked into the simulation clock.

A :class:`SpanRecorder` is attached to a cluster *before* ``start()``
(``SimCluster.attach_obs``) and from then on receives per-stage spans:

===================  ======================================================
span name            stage
===================  ======================================================
``op:<op>``          one client operation, invoke → final response (root)
``rpc:<type>``       one RPC attempt, caller side (request → reply/timeout)
``net:<type>``       fabric transit of one message, send → arrival
``cpu:<type>``       receiver CPU queue + service time before dispatch
``backoff``          client retry backoff sleep
===================  ======================================================

Replication wait shows up as ``rpc:chain_put`` / ``rpc:replicate`` /
``rpc:peer_apply`` / ``rpc:log_append`` spans opened by the controlet,
datalet service as ``rpc:put``/``rpc:get``/... spans whose receiver is a
datalet, and controlet dispatch as the receiver-side ``cpu:*`` spans.

Determinism: span and trace ids come from recorder-local counters that
advance in event-execution order, and timestamps are simulated seconds —
so for a fixed seed the trace is bit-for-bit stable.  The recorder never
touches the RNG or the clock's event queue; attaching it cannot change a
run's behavior (digest-invariance is asserted in ``tests/test_obs.py``).

The dump format ``repro.obs.trace/1`` is JSONL: one meta header line,
then one line per span, sorted by (trace, span) id with sorted keys, so
identical runs serialize byte-identically.
"""

from __future__ import annotations

import itertools
import json
from typing import Dict, List, Optional

from repro.obs.context import RequestContext

__all__ = ["Span", "SpanRecorder", "TRACE_FORMAT"]

TRACE_FORMAT = "repro.obs.trace/1"


class Span:
    """One timed stage of one request."""

    __slots__ = ("trace_id", "span_id", "parent_id", "name", "node",
                 "start", "end", "status")

    def __init__(self, trace_id: int, span_id: int, parent_id: int,
                 name: str, node: str, start: float) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.node = node
        self.start = start
        self.end: Optional[float] = None
        self.status: Optional[str] = None

    @property
    def duration(self) -> float:
        return (self.end - self.start) if self.end is not None else 0.0

    def to_dict(self) -> dict:
        return {
            "trace": self.trace_id,
            "span": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "node": self.node,
            "start": self.start,
            "end": self.end,
            "status": self.status,
        }


class SpanRecorder:
    """Collects spans against the simulation clock.

    Ids come from recorder-local counters — never from the global
    message-id stream — so attaching a recorder does not perturb message
    ids, fingerprints, or anything else the simulation derives state
    from.
    """

    def __init__(self, sim) -> None:
        self.sim = sim
        self.spans: List[Span] = []
        self._trace_ids = itertools.count(1)
        self._span_ids = itertools.count(1)
        #: open root spans by trace id (client op in flight)
        self._roots: Dict[int, Span] = {}

    # -- recording -------------------------------------------------------
    def new_trace(self, name: str, origin: str = "",
                  req_id: Optional[str] = None,
                  deadline: Optional[float] = None) -> RequestContext:
        """Open a root span and return the context to thread through."""
        trace_id = next(self._trace_ids)
        span = Span(trace_id, next(self._span_ids), 0, name, origin,
                    self.sim.now)
        self.spans.append(span)
        self._roots[trace_id] = span
        return RequestContext(trace_id=trace_id, span_id=span.span_id,
                              origin=origin, deadline=deadline,
                              req_id=req_id)

    def end_trace(self, ctx: RequestContext, status: str = "ok") -> None:
        span = self._roots.pop(ctx.trace_id, None)
        if span is not None:
            self.end(span, status)

    def begin(self, ctx: RequestContext, name: str, node: str) -> Span:
        span = Span(ctx.trace_id, next(self._span_ids), ctx.span_id,
                    name, node, self.sim.now)
        self.spans.append(span)
        return span

    def end(self, span: Span, status: str = "ok") -> None:
        span.end = self.sim.now
        span.status = status

    # -- analysis --------------------------------------------------------
    def validate(self) -> List[str]:
        """Span-tree well-formedness: every span parented, none dangling."""
        errors: List[str] = []
        by_trace: Dict[int, Dict[int, Span]] = {}
        for span in self.spans:
            by_trace.setdefault(span.trace_id, {})[span.span_id] = span
        for span in self.spans:
            where = f"trace {span.trace_id} span {span.span_id} ({span.name})"
            if span.end is None:
                errors.append(f"{where}: never ended (dangling request)")
            elif span.end < span.start:
                errors.append(f"{where}: ends before it starts")
            if span.parent_id != 0 and \
                    span.parent_id not in by_trace[span.trace_id]:
                errors.append(f"{where}: parent {span.parent_id} missing "
                              f"from its trace")
        return errors

    def breakdown(self) -> Dict[str, Dict[str, float]]:
        """Per-stage latency aggregates keyed by span name."""
        stages: Dict[str, List[float]] = {}
        for span in self.spans:
            if span.end is not None:
                stages.setdefault(span.name, []).append(span.duration)
        out: Dict[str, Dict[str, float]] = {}
        for name in sorted(stages):
            durs = sorted(stages[name])
            n = len(durs)
            out[name] = {
                "count": float(n),
                "total_ms": sum(durs) * 1e3,
                "mean_ms": sum(durs) / n * 1e3,
                "p50_ms": durs[int(0.50 * (n - 1))] * 1e3,
                "p95_ms": durs[int(0.95 * (n - 1))] * 1e3,
            }
        return out

    def breakdown_table(self) -> str:
        rows = self.breakdown()
        lines = [f"{'stage':<22} {'count':>7} {'total ms':>10} "
                 f"{'mean ms':>9} {'p50 ms':>9} {'p95 ms':>9}"]
        lines.append("-" * len(lines[0]))
        for name, agg in rows.items():
            lines.append(f"{name:<22} {int(agg['count']):>7} "
                         f"{agg['total_ms']:>10.3f} {agg['mean_ms']:>9.3f} "
                         f"{agg['p50_ms']:>9.3f} {agg['p95_ms']:>9.3f}")
        return "\n".join(lines)

    def format_trace(self, trace_id: int) -> str:
        """Render one trace's span tree, children indented under parents."""
        spans = [s for s in self.spans if s.trace_id == trace_id]
        if not spans:
            return f"(trace {trace_id}: no spans recorded)"
        children: Dict[int, List[Span]] = {}
        for span in spans:
            children.setdefault(span.parent_id, []).append(span)
        for kids in children.values():
            kids.sort(key=lambda s: (s.start, s.span_id))
        lines: List[str] = []

        def walk(span: Span, depth: int) -> None:
            end = f"{span.end * 1e3:.3f}" if span.end is not None else "?"
            lines.append(f"{'  ' * depth}{span.name} [{span.node}] "
                         f"{span.start * 1e3:.3f}ms → {end}ms "
                         f"({span.status or 'open'})")
            for kid in children.get(span.span_id, []):
                walk(kid, depth + 1)

        for root in children.get(0, []):
            walk(root, 0)
        return "\n".join(lines)

    # -- serialization ---------------------------------------------------
    def dump(self, path: str, meta: Optional[dict] = None) -> None:
        """Write ``repro.obs.trace/1`` JSONL (byte-stable per seed)."""
        header = {"format": TRACE_FORMAT, "spans": len(self.spans)}
        if meta:
            header.update(meta)
        lines = [json.dumps(header, sort_keys=True)]
        for span in sorted(self.spans,
                           key=lambda s: (s.trace_id, s.span_id)):
            lines.append(json.dumps(span.to_dict(), sort_keys=True))
        with open(path, "w") as fh:
            fh.write("\n".join(lines) + "\n")
