"""bespokv-py: a Python reproduction of *BESPOKV: Application Tailored
Scale-Out Key-Value Stores* (SC'18).

Quick tour::

    from repro import Deployment, DeploymentSpec, Topology, Consistency

    dep = Deployment(DeploymentSpec(shards=4, replicas=3,
                                    topology=Topology.MS,
                                    consistency=Consistency.STRONG))
    dep.start()
    client = dep.client("app")
    dep.sim.run_future(client.connect())
    dep.sim.run_future(client.put("k", "v"))
    assert dep.sim.run_future(client.get("k")) == "v"

Subpackages:

* :mod:`repro.sim` — deterministic discrete-event substrate
* :mod:`repro.net` — messages, actors, transports, wire protocols, TCP
* :mod:`repro.datalet` — single-server storage engines (tHT/tMT/tLSM/...)
* :mod:`repro.core` — controlets, cluster types, transitions, hybrids
* :mod:`repro.coordinator` / :mod:`repro.dlm` / :mod:`repro.sharedlog`
* :mod:`repro.client` — the routing client library
* :mod:`repro.harness` — deployment builder + load generation
* :mod:`repro.workloads` — YCSB/HPC/DL workload generators
* :mod:`repro.baselines` — Twemproxy/Dynomite/Cassandra/Voldemort models
"""

from repro.client import KVClient
from repro.core import (
    ClusterMap,
    Consistency,
    ControlConfig,
    Replica,
    ShardInfo,
    Topology,
)
from repro.datalet import DataletActor, Engine, make_engine
from repro.harness import Deployment, DeploymentSpec

__version__ = "1.0.0"

__all__ = [
    "Deployment",
    "DeploymentSpec",
    "KVClient",
    "Topology",
    "Consistency",
    "ControlConfig",
    "ClusterMap",
    "ShardInfo",
    "Replica",
    "Engine",
    "DataletActor",
    "make_engine",
    "__version__",
]
