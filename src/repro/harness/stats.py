"""Cluster observability: harvest per-component statistics.

The paper's monitoring story (§VI-A) needs introspection; operators of
a real deployment would scrape controlet/datalet/DLM/shared-log
counters.  :func:`collect_stats` gathers everything over the message
plane (using the same ``ctl_stats``/``stats`` RPCs a monitoring agent
would), and :func:`utilization_report` summarizes host CPU usage from
the simulator's resource accounting.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.harness.deploy import Deployment

__all__ = ["collect_registry", "collect_stats", "utilization_report"]


def collect_registry(dep: Deployment) -> Dict[str, Any]:
    """One-call scrape of the cluster's metrics registry.

    Every actor with a ``metrics_group()`` hook (controlets, datalets,
    DLM, shared logs, coordinator) plus every client registered at
    construction is read *at snapshot time* — zero messages, zero
    simulation impact, unlike :func:`collect_stats` which exercises the
    monitoring RPC plane.  Returns the registry's ``snapshot()`` dict
    (counters / gauges / histograms with streaming p50/p95/p99, and
    per-actor groups).
    """
    return dep.cluster.metrics.snapshot()


def collect_stats(dep: Deployment) -> Dict[str, Dict[str, Any]]:
    """Fetch controlet and datalet counters for every replica.

    Returns ``{shard_id: {controlet_id: {...}, datalet_id: {...}}}``.
    Issues real ``ctl_stats``/``stats`` requests so the collection
    itself exercises (and is accounted like) the monitoring plane.
    """
    sim = dep.sim
    port = dep.cluster.add_port(f"statscollector{sim.events_processed}")
    out: Dict[str, Dict[str, Any]] = {}
    for sid in dep.map.shard_ids():
        shard_stats: Dict[str, Any] = {}
        for replica in dep.map.shard(sid).ordered():
            resp = sim.run_future(
                port.request(replica.controlet, "ctl_stats", {}, timeout=5.0)
            )
            shard_stats[replica.controlet] = dict(resp.payload)
            resp = sim.run_future(
                port.request(replica.datalet, "stats", {}, timeout=5.0)
            )
            shard_stats[replica.datalet] = dict(resp.payload)
        out[sid] = shard_stats
    return out


def utilization_report(dep: Deployment) -> Dict[str, float]:
    """Per-host CPU utilization since t=0 (busy slot-seconds over
    capacity x elapsed)."""
    elapsed = dep.sim.now
    report: Dict[str, float] = {}
    for name, host in dep.cluster._hosts.items():
        if host.free:
            continue
        report[name] = host.cpu.utilization(elapsed)
    return report
