"""Closed-loop load generation and measurement.

Mirrors the paper's methodology: a separate (cost-free) client cluster
drives closed-loop sessions against the store, throughput is reported
as completed queries per second over a measurement window after a
warmup, and a per-interval timeline is kept for the failover/transition
figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.client.kv import KVClient
from repro.errors import BespoError, KeyNotFound
from repro.harness.deploy import Deployment
from repro.hashing import HashRing, RangePartitioner
from repro.workloads.ycsb import Workload

__all__ = ["RunResult", "LoadGenerator", "preload"]


@dataclass
class RunResult:
    """Aggregate measurement of one run."""

    ops: int
    errors: int
    duration: float
    qps: float
    mean_latency_ms: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    #: (window_start_time, qps_in_window) pairs covering the whole run
    #: including warmup — timeline figures need the dip visible.
    timeline: List[Tuple[float, float]] = field(default_factory=list)
    op_counts: Dict[str, int] = field(default_factory=dict)

    def __str__(self) -> str:
        return (
            f"{self.qps:,.0f} QPS  mean={self.mean_latency_ms:.2f}ms "
            f"p99={self.p99_ms:.2f}ms  ops={self.ops:,}  errs={self.errors}"
        )


def preload(dep: Deployment, items: Dict[str, str], partitioner: str = "hash") -> None:
    """Bulk-load data into every replica's engine directly.

    The paper's load phase (inserting 10M tuples) is uninteresting to
    simulate event-by-event; what matters is that measurement starts
    from a populated, fully replicated store.  Routing matches the
    client library exactly so reads find their keys.
    """
    shard_ids = dep.map.shard_ids()
    if partitioner == "range":
        part = RangePartitioner.uniform_alpha(shard_ids)
        lookup = part.lookup
    else:
        ring = HashRing(shard_ids)
        lookup = ring.lookup
    by_shard: Dict[str, List[Tuple[str, str]]] = {sid: [] for sid in shard_ids}
    for k, v in items.items():
        by_shard[lookup(k)].append((k, v))
    for sid, pairs in by_shard.items():
        for replica in dep.map.shard(sid).ordered():
            engine = dep.cluster.actor(replica.datalet).engine
            for k, v in pairs:
                engine.put(k, v)


class LoadGenerator:
    """Drives N closed-loop client sessions and measures the result."""

    def __init__(
        self,
        dep: Deployment,
        workload_factory: Callable[[int], Workload],
        clients: int = 16,
        warmup: float = 0.5,
        duration: float = 2.0,
        timeline_interval: float = 0.0,
        sessions_per_client: int = 4,
        client_kwargs: Optional[dict] = None,
        client_factory: Optional[Callable[[str], object]] = None,
    ):
        """``clients`` KVClient instances (each with its own port/host),
        each running ``sessions_per_client`` concurrent closed-loop
        sessions — matching the paper's many-threads-per-bench-process
        setup without paying per-session actor overhead.

        ``client_factory`` overrides how clients are built (baseline
        systems supply :class:`~repro.baselines.BaselineClient` here);
        it must return an object with connect/put/get/delete/scan."""
        self.dep = dep
        self.client_factory = client_factory
        self.workload_factory = workload_factory
        self.n_clients = clients
        self.warmup = warmup
        self.duration = duration
        self.timeline_interval = timeline_interval
        self.sessions_per_client = sessions_per_client
        self.client_kwargs = client_kwargs or {}
        self._running = True
        self._ops = 0
        self._errors = 0
        self._latencies: List[float] = []
        self._timeline_counts: Dict[int, int] = {}
        self._op_counts: Dict[str, int] = {"get": 0, "put": 0, "del": 0, "scan": 0,
                                           "rmw": 0}

    # ------------------------------------------------------------------
    def _session(self, client: KVClient, wl: Workload):
        sim = self.dep.sim
        warmup_end = self.warmup
        while self._running:
            op = wl.next_op()
            t0 = sim.now
            try:
                if op[0] == "get":
                    yield client.get(op[1])
                elif op[0] == "put":
                    yield client.put(op[1], op[2])
                elif op[0] == "scan":
                    yield client.scan(op[1], "￿", limit=op[2])
                elif op[0] == "rmw":
                    # YCSB-F read-modify-write: two store round trips
                    try:
                        yield client.get(op[1])
                    except KeyNotFound:
                        pass
                    yield client.put(op[1], op[2])
                else:
                    yield client.delete(op[1])
            except KeyNotFound:
                pass  # reads/deletes racing inserts are successful ops
            except BespoError:
                self._errors += 1
                continue
            t1 = sim.now
            self._op_counts[op[0] if op[0] != "delete" else "del"] += 1
            if self.timeline_interval:
                bucket = int(t1 / self.timeline_interval)
                self._timeline_counts[bucket] = self._timeline_counts.get(bucket, 0) + 1
            if t1 >= warmup_end:
                self._ops += 1
                self._latencies.append(t1 - t0)

    # ------------------------------------------------------------------
    def run(self, extra_runtime: float = 0.0) -> RunResult:
        """Execute the experiment and return aggregate results.

        ``extra_runtime`` extends the simulation past the measurement
        end (failover experiments want the timeline to keep going)."""
        sim = self.dep.sim
        for i in range(self.n_clients):
            if self.client_factory is not None:
                client = self.client_factory(f"loadgen{i}")
            else:
                client = self.dep.client(f"loadgen{i}", **self.client_kwargs)
            sim.run_future(client.connect())
            for s in range(self.sessions_per_client):
                wl = self.workload_factory(i * self.sessions_per_client + s)
                sim.spawn(self._session(client, wl))
        end = self.warmup + self.duration
        sim.run_until(end + extra_runtime)
        self._running = False
        lat = np.asarray(self._latencies) if self._latencies else np.asarray([0.0])
        timeline = []
        if self.timeline_interval:
            last = int((end + extra_runtime) / self.timeline_interval)
            for bucket in range(0, last + 1):
                count = self._timeline_counts.get(bucket, 0)
                timeline.append(
                    (bucket * self.timeline_interval, count / self.timeline_interval)
                )
        return RunResult(
            ops=self._ops,
            errors=self._errors,
            duration=self.duration,
            qps=self._ops / self.duration if self.duration > 0 else 0.0,
            mean_latency_ms=float(lat.mean() * 1e3),
            p50_ms=float(np.percentile(lat, 50) * 1e3),
            p95_ms=float(np.percentile(lat, 95) * 1e3),
            p99_ms=float(np.percentile(lat, 99) * 1e3),
            timeline=timeline,
            op_counts=dict(self._op_counts),
        )
