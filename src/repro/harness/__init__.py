"""Experiment harness: deployment builder, load generation, probes."""

from repro.harness.deploy import CONTROLET_CLASSES, Deployment, DeploymentSpec

__all__ = ["Deployment", "DeploymentSpec", "CONTROLET_CLASSES"]
