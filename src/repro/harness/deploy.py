"""Deployment builder: turn a spec into a running simulated cluster.

This is the equivalent of the paper artifact's ``slap.sh`` scripts plus
the JSON config: given shard/replica counts, a topology/consistency
combination and a list of datalet kinds, it stands up coordinator, DLM,
per-shard shared logs, controlet-datalet pairs (one host per pair, the
paper's 1:1 default), and a pool of standby hosts for failover.

Naming scheme (also the host names):

* shard ``s{i}``, replica ``r{j}``
* controlet ``c{i}.{j}`` (transition generations append ``.g{n}``)
* datalet ``d{i}.{j}``
* host ``node{i}.{j}``, standbys ``standby{k}``
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.coordinator import CoordinatorActor
from repro.core.aa_ec import AAEventualControlet
from repro.core.aa_sc import AAStrongControlet
from repro.core.config import ControlConfig
from repro.core.controlet import Controlet
from repro.core.ms_ec import MSEventualControlet
from repro.core.ms_sc import MSStrongControlet
from repro.core.types import ClusterMap, Consistency, Replica, ShardInfo, Topology
from repro.datalet import DataletActor, make_engine
from repro.errors import ConfigError
from repro.net.simnet import SimCluster
from repro.client.kv import KVClient
from repro.sim import DEFAULT_COSTS, CostModel, NetworkParams

__all__ = ["DeploymentSpec", "Deployment", "CONTROLET_CLASSES"]

CONTROLET_CLASSES: Dict[Tuple[Topology, Consistency], type] = {
    (Topology.MS, Consistency.STRONG): MSStrongControlet,
    (Topology.MS, Consistency.EVENTUAL): MSEventualControlet,
    (Topology.AA, Consistency.STRONG): AAStrongControlet,
    (Topology.AA, Consistency.EVENTUAL): AAEventualControlet,
}


@dataclass
class DeploymentSpec:
    """Everything needed to stand up one cluster."""

    shards: int = 1
    replicas: int = 3
    topology: Topology = Topology.MS
    consistency: Consistency = Consistency.STRONG
    #: engine kind per replica position, cycled — a single entry gives a
    #: homogeneous store, several give polyglot persistence (§IV-D).
    datalet_kinds: Sequence[str] = ("ht",)
    #: engine constructor kwargs per kind.
    engine_kwargs: Dict[str, dict] = field(default_factory=dict)
    partitioner: str = "hash"
    standbys: int = 2
    dpdk: bool = False
    seed: int = 0
    costs: CostModel = field(default_factory=lambda: DEFAULT_COSTS)
    net_params: Optional[NetworkParams] = None
    control: ControlConfig = field(default_factory=ControlConfig)
    host_cpus: int = 4
    #: the DLM runs on its own host (the paper deploys the lock service
    #: on separate nodes); it remains AA+SC's serialization point.
    dlm_cpus: int = 4
    #: controlet:datalet mapping (paper §III: "a controlet may handle
    #: N >= 1 instances of datalets ... a controlet running on a
    #: high-capacity node may manage more datalet nodes").  ``None``
    #: keeps the default 1:1 colocated pairs; an integer packs all
    #: controlets onto that many dedicated controlet hosts (each sized
    #: ``controlet_host_cpus``), with datalets on their own hosts.
    controlet_hosts: Optional[int] = None
    controlet_host_cpus: int = 8
    #: run a standby coordinator that mirrors the primary and promotes
    #: on its failure (§VII's ZooKeeper-backed resilience).
    coordinator_standby: bool = False
    #: override the controlet class for every shard — how custom
    #: controlets (e.g. the §IV-B RangeQueryControlet) are deployed.
    #: Must be a subclass of the matching pre-built controlet so the
    #: topology/consistency protocol still fits.
    controlet_class: Optional[type] = None
    #: give every datalet a write-ahead log on its host's DurableStore:
    #: mutations are logged (and fsynced per ``wal_sync_every``) before
    #: they are acked, and a crashed host can be *recovered* from disk
    #: via :meth:`Deployment.recover_host` instead of replaced.
    durable: bool = False
    #: fsync after this many appends (1 = sync every ack; >1 = group
    #: commit — faster, but a crash may lose the unsynced tail).
    wal_sync_every: int = 1
    #: compact the log into a snapshot after this many appends.
    wal_snapshot_every: int = 256
    #: how much of the unsynced suffix a crash destroys
    #: ("partial" | "all" | "none"), see :class:`~repro.sim.durable.DurableStore`.
    durable_loss: str = "partial"

    def __post_init__(self) -> None:
        if self.shards < 1 or self.replicas < 1:
            raise ConfigError("need at least one shard and one replica")
        if not self.datalet_kinds:
            raise ConfigError("datalet_kinds must not be empty")
        if self.controlet_hosts is not None and self.controlet_hosts < 1:
            raise ConfigError("controlet_hosts must be >= 1 when set")
        self.topology = Topology(self.topology)
        self.consistency = Consistency(self.consistency)


class Deployment:
    """A built cluster, ready to serve clients and take failures."""

    def __init__(self, spec: DeploymentSpec, cluster: Optional[SimCluster] = None):
        self.spec = spec
        # an injected cluster lets harnesses substitute an instrumented
        # SimCluster subclass (e.g. the model checker's controlled one)
        self.cluster = cluster if cluster is not None else SimCluster(
            costs=spec.costs, net_params=spec.net_params, seed=spec.seed
        )
        self.sim = self.cluster.sim
        self.cluster.durable_loss = spec.durable_loss
        self._gen = itertools.count(1)  # transition generation counter
        self._standby_counter = itertools.count()
        self._shard_seq = itertools.count(spec.shards)  # next reshard shard index
        self._standbys: List[str] = []
        #: host -> (shard_id, replica) for every controlet-datalet pair
        #: placed on its own host — the lookup recover_host uses to
        #: re-spawn a crashed pair from the host's DurableStore.
        self._host_pairs: Dict[str, Tuple[str, Replica]] = {}
        self.map = ClusterMap()

        # --- infrastructure actors ------------------------------------
        self.standby: Optional["StandbyCoordinator"] = None
        if spec.coordinator_standby:
            from repro.coordinator.standby import PrimaryCoordinator, StandbyCoordinator

            self.coordinator = PrimaryCoordinator(
                "coordinator",
                cluster_map=self.map,
                config=spec.control,
                spawner=self._spawn_replacement,
                transition_spawner=self._spawn_transition,
                reshard_spawner=self._spawn_shard,
                partitioner=spec.partitioner,
                followers=["coordinator.standby"],
            )
            self.standby = StandbyCoordinator(
                "coordinator.standby",
                config=spec.control,
                spawner=self._spawn_replacement,
                transition_spawner=self._spawn_transition,
                reshard_spawner=self._spawn_shard,
                partitioner=spec.partitioner,
                primary="coordinator",
            )
            self.cluster.add_host("coordinator.standby", cpus=spec.host_cpus)
            self.cluster.add_actor(self.standby, host="coordinator.standby")
        else:
            self.coordinator = CoordinatorActor(
                "coordinator",
                cluster_map=self.map,
                config=spec.control,
                spawner=self._spawn_replacement,
                transition_spawner=self._spawn_transition,
                reshard_spawner=self._spawn_shard,
                partitioner=spec.partitioner,
            )
        self.cluster.add_host("coordinator", cpus=spec.host_cpus)
        self.cluster.add_actor(self.coordinator, host="coordinator")

        from repro.dlm import LockManagerActor  # local: keep import graph flat
        from repro.sharedlog import SharedLogActor

        self.dlm = LockManagerActor("dlm", lease=spec.control.lock_lease)
        self.cluster.add_host("dlm", cpus=spec.dlm_cpus)
        self.cluster.add_actor(self.dlm, host="dlm")

        self.sharedlogs: Dict[str, str] = {}
        for i in range(spec.shards):
            log_id = f"sharedlog.s{i}"
            self.cluster.add_host(log_id, cpus=spec.host_cpus)
            self.cluster.add_actor(SharedLogActor(log_id), host=log_id)
            self.sharedlogs[f"s{i}"] = log_id

        # --- dedicated controlet hosts (N:1 mapping, §III) -------------
        self._controlet_hosts: List[str] = []
        self._ctl_rr = itertools.count()
        if spec.controlet_hosts is not None:
            for k in range(spec.controlet_hosts):
                name = f"ctl{k}"
                self.cluster.add_host(name, cpus=spec.controlet_host_cpus,
                                      dpdk=spec.dpdk)
                self._controlet_hosts.append(name)

        # --- shards -----------------------------------------------------
        for i in range(spec.shards):
            shard = ShardInfo(f"s{i}", spec.topology, spec.consistency, [])
            self.map.shards[shard.shard_id] = shard
            for j in range(spec.replicas):
                kind = spec.datalet_kinds[j % len(spec.datalet_kinds)]
                replica = Replica(
                    controlet=f"c{i}.{j}",
                    datalet=f"d{i}.{j}",
                    host=f"node{i}.{j}",
                    chain_pos=j,
                    datalet_kind=kind,
                )
                shard.replicas.append(replica)
            # actors need the full shard view, so build them second pass
            for replica in shard.ordered():
                self._place_pair(shard, replica)

        # --- standby pool -------------------------------------------------
        for _ in range(spec.standbys):
            name = f"standby{next(self._standby_counter)}"
            self.cluster.add_host(name, cpus=spec.host_cpus, dpdk=spec.dpdk)
            self._standbys.append(name)

    # ------------------------------------------------------------------
    # actor construction
    # ------------------------------------------------------------------
    def _make_engine(self, kind: str):
        return make_engine(kind, **self.spec.engine_kwargs.get(kind, {}))

    def _make_wal(self, host: str, datalet_id: str):
        """A write-ahead log on ``host``'s durable store (None unless
        the spec asks for durability)."""
        if not self.spec.durable:
            return None
        from repro.datalet.wal import WriteAheadLog

        return WriteAheadLog(
            self.cluster.durable_store(host),
            datalet_id,
            sync_every=self.spec.wal_sync_every,
            snapshot_every=self.spec.wal_snapshot_every,
        )

    def _make_controlet(
        self,
        node_id: str,
        shard: ShardInfo,
        datalet: str,
        recovery_source: Optional[str] = None,
        start_cursor_at_tail: bool = False,
        datalet_colocated: bool = True,
        rejoin: bool = False,
    ) -> Controlet:
        cls = self.spec.controlet_class or CONTROLET_CLASSES[(shard.topology, shard.consistency)]
        # Each controlet gets a private copy of the shard view: the
        # authoritative one lives in the coordinator and reaches
        # controlets only via config_update messages.
        shard = ShardInfo.from_dict(shard.to_dict())
        kwargs: dict = {}
        if issubclass(cls, AAStrongControlet):
            kwargs["dlm"] = "dlm"
        elif issubclass(cls, AAEventualControlet):
            kwargs["sharedlog"] = self.sharedlogs[shard.shard_id]
            kwargs["start_cursor_at_tail"] = start_cursor_at_tail
        active = self.active_coordinator()
        return cls(
            node_id,
            shard=shard,
            datalet=datalet,
            coordinator=active,
            config=self.spec.control,
            recovery_source=recovery_source,
            datalet_colocated=datalet_colocated,
            backup_coordinators=[n for n in self.coordinator_names() if n != active],
            rejoin=rejoin,
            **kwargs,
        )

    def _place_pair(
        self,
        shard: ShardInfo,
        replica: Replica,
        recovery_source: Optional[str] = None,
        start_cursor_at_tail: bool = False,
    ) -> None:
        """Place a controlet-datalet pair.

        Default: colocated on the replica's host (the paper's 1:1
        mapping).  With ``controlet_hosts`` set, the datalet keeps its
        own host while the controlet is packed round-robin onto a
        dedicated controlet host (N:1 mapping) and watches its remote
        datalet's liveness itself.
        """
        if replica.host not in self.cluster._hosts:
            self.cluster.add_host(replica.host, cpus=self.spec.host_cpus, dpdk=self.spec.dpdk)
        self.cluster.add_actor(
            DataletActor(
                replica.datalet,
                self._make_engine(replica.datalet_kind),
                wal=self._make_wal(replica.host, replica.datalet),
            ),
            host=replica.host,
        )
        self._host_pairs[replica.host] = (shard.shard_id, replica)
        if self._controlet_hosts:
            ctl_host = self._controlet_hosts[next(self._ctl_rr) % len(self._controlet_hosts)]
            colocated = False
        else:
            ctl_host = replica.host
            colocated = True
        self.cluster.add_actor(
            self._make_controlet(
                replica.controlet,
                shard,
                replica.datalet,
                recovery_source=recovery_source,
                start_cursor_at_tail=start_cursor_at_tail,
                datalet_colocated=colocated,
            ),
            host=ctl_host,
        )

    # ------------------------------------------------------------------
    # coordinator-injected factories
    # ------------------------------------------------------------------
    def _spawn_replacement(self, shard: ShardInfo, source_datalet: str) -> Optional[Replica]:
        """Launch a recovery-mode pair on a standby host (failover)."""
        if not self._standbys:
            return None
        host = self._standbys.pop(0)
        suffix = f"fo{next(self._gen)}"
        kind = shard.tail.datalet_kind if shard.replicas else self.spec.datalet_kinds[0]
        replica = Replica(
            controlet=f"c.{shard.shard_id}.{suffix}",
            datalet=f"d.{shard.shard_id}.{suffix}",
            host=host,
            chain_pos=len(shard.replicas),
            datalet_kind=kind,
        )
        self.cluster.add_actor(
            DataletActor(
                replica.datalet,
                self._make_engine(kind),
                wal=self._make_wal(host, replica.datalet),
            ),
            host=host,
        )
        self._host_pairs[host] = (shard.shard_id, replica)
        self.cluster.add_actor(
            self._make_controlet(
                replica.controlet,
                shard,
                replica.datalet,
                recovery_source=source_datalet,
                start_cursor_at_tail=True,
            ),
            host=host,
        )
        # both coordinators learn the pending replica: whichever is
        # active when recovery completes finalizes the join
        self.coordinator.register_pending(replica)
        if self.standby is not None:
            self.standby.register_pending(replica)
            self.standby._recovering[replica.controlet] = shard.shard_id
        return replica

    def _spawn_transition(
        self, shard: ShardInfo, topology: Topology, consistency: Consistency
    ) -> ShardInfo:
        """Launch a parallel controlet generation over the same datalets
        (§V: "Two old and new controlets are mapped to one datalet
        during the transition phase")."""
        gen = next(self._gen)
        new_shard = ShardInfo(shard.shard_id, topology, consistency, [])
        for replica in shard.ordered():
            new_shard.replicas.append(
                Replica(
                    controlet=f"{replica.controlet}.g{gen}",
                    datalet=replica.datalet,
                    host=replica.host,
                    chain_pos=replica.chain_pos,
                    datalet_kind=replica.datalet_kind,
                )
            )
        for replica in new_shard.ordered():
            self.cluster.add_actor(
                self._make_controlet(
                    replica.controlet,
                    new_shard,
                    replica.datalet,
                    start_cursor_at_tail=True,
                ),
                host=replica.host,
            )
        return new_shard

    def _spawn_shard(self) -> Optional[ShardInfo]:
        """Launch a whole new shard for an online reshard (shard add).

        Fresh hosts, fresh controlet-datalet pairs — and for AA+EC a
        fresh shared-log sequencer under the ``sharedlog.<sid>`` naming
        convention the coordinator's reshard arming relies on.  The new
        shard is *not* entered into the cluster map here: the
        coordinator does that when it opens the double-ring window.
        """
        spec = self.spec
        i = next(self._shard_seq)
        sid = f"s{i}"
        if spec.topology is Topology.AA and spec.consistency is Consistency.EVENTUAL:
            log_id = f"sharedlog.{sid}"
            self.cluster.add_host(log_id, cpus=spec.host_cpus)
            from repro.sharedlog import SharedLogActor  # local: keep import graph flat

            self.cluster.add_actor(SharedLogActor(log_id), host=log_id)
            self.sharedlogs[sid] = log_id
        shard = ShardInfo(sid, spec.topology, spec.consistency, [])
        for j in range(spec.replicas):
            kind = spec.datalet_kinds[j % len(spec.datalet_kinds)]
            shard.replicas.append(
                Replica(
                    controlet=f"c{i}.{j}",
                    datalet=f"d{i}.{j}",
                    host=f"node{i}.{j}",
                    chain_pos=j,
                    datalet_kind=kind,
                )
            )
        for replica in shard.ordered():
            self._place_pair(shard, replica)
        return shard

    # ------------------------------------------------------------------
    # public surface
    # ------------------------------------------------------------------
    def start(self) -> None:
        self.cluster.start()

    def coordinator_names(self) -> List[str]:
        names = ["coordinator"]
        if self.standby is not None:
            names.append("coordinator.standby")
        return names

    def active_coordinator(self) -> str:
        """The coordinator currently holding failover authority."""
        if (
            self.standby is not None
            and self.standby.promoted
            and not self.cluster.is_host_alive("coordinator")
        ):
            return "coordinator.standby"
        return "coordinator"

    def client(self, name: str, **kwargs) -> KVClient:
        kwargs.setdefault("partitioner", self.spec.partitioner)
        kwargs.setdefault("coordinator", self.coordinator_names())
        return KVClient(self.cluster, name, **kwargs)

    def shard(self, index: int) -> ShardInfo:
        return self.map.shard(f"s{index}")

    def replica_host(self, shard_index: int, chain_pos: int) -> str:
        for r in self.shard(shard_index).ordered():
            if r.chain_pos == chain_pos:
                return r.host
        raise ConfigError(f"no replica at position {chain_pos} in shard s{shard_index}")

    def kill_replica(self, shard_index: int, chain_pos: int) -> str:
        """Crash the host of one replica (controlet + datalet die)."""
        host = self.replica_host(shard_index, chain_pos)
        self.cluster.kill_host(host)
        return host

    def recover_host(self, host: str):
        """Power-cycle a crashed replica host back up *from disk*.

        Unlike a thaw (``cluster.restart_host``), the old actor objects
        are torn down for good: a fresh engine is rebuilt by WAL replay
        from the host's DurableStore (which took seeded power-loss
        damage at crash time), then a fresh controlet rejoins in
        recovery mode and catches up from a surviving peer — so the
        node returns with recovered-but-stale state, exactly the
        durable crash-restart fault class.

        Returns a :class:`~repro.chaos.oracle.RecoveryRecord` (or None
        after falling back to a plain thaw for hosts without a durable
        pair registration).
        """
        from repro.chaos.oracle import RecoveryRecord  # local: avoid import cycle

        pair = self._host_pairs.get(host)
        if pair is None or not self.spec.durable:
            self.cluster.restart_host(host)
            return None
        shard_id, replica = pair
        crash_time = self.sim.now
        store = self.cluster.durable_store(host)
        if store.last_crash_at >= 0.0:  # -1.0 = the store never crashed
            crash_time = store.last_crash_at

        # the fsync watermark the dead datalet had promised — captured
        # from the old WAL object before it is forgotten
        old = self.cluster.actors.get(replica.datalet)
        durable_seq = 0
        if old is not None and getattr(old, "wal", None) is not None:
            durable_seq = old.wal.durable_seq

        # tear down the dead pair (a remote controlet on a shared ctl
        # host did not die with the datalet and is left alone)
        self.cluster.remove_actor(replica.datalet)
        ctl_died = (
            replica.controlet in self.cluster.actors
            and self.cluster.host_of(replica.controlet) == host
        )
        if ctl_died:
            self.cluster.remove_actor(replica.controlet)
        self.cluster.restart_host(host)

        # rebuild the engine from snapshot + surviving log records
        engine = self._make_engine(replica.datalet_kind)
        wal = self._make_wal(host, replica.datalet)
        replayed = wal.replay(engine)
        recovered = dict(engine.snapshot())
        self.cluster.add_actor(DataletActor(replica.datalet, engine, wal=wal), host=host)

        # pick a live peer to catch up from (None: recover solo)
        shard = self.map.shards.get(shard_id)
        source = None
        if shard is not None:
            for r in shard.ordered():
                if r.host != host and self.cluster.is_host_alive(r.host):
                    source = r.datalet
                    break
        if ctl_died:
            self.cluster.add_actor(
                self._make_controlet(
                    replica.controlet,
                    shard if shard is not None else ShardInfo(
                        shard_id, self.spec.topology, self.spec.consistency, [replica]
                    ),
                    replica.datalet,
                    recovery_source=source,
                    start_cursor_at_tail=True,
                    rejoin=True,
                ),
                host=host,
            )
        return RecoveryRecord(
            host=host,
            shard_id=shard_id,
            datalet=replica.datalet,
            crash_time=crash_time,
            recover_time=self.sim.now,
            durable_seq_at_crash=durable_seq,
            replayed_seq=replayed.applied_seq,
            snapshot_seq=replayed.snapshot_seq,
            records_applied=replayed.records_applied,
            torn_tail_dropped=replayed.torn_tail_dropped,
            recovered=recovered,
            catchup_source=source,
        )

    def request_transition(
        self, topology: Topology, consistency: Consistency, client_name: str = "admin"
    ):
        """Ask the coordinator to switch the whole deployment; returns a
        future resolving when every shard has flipped."""
        port = self.cluster.add_port(client_name)

        def proc():
            resp = yield port.request(
                "coordinator",
                "request_transition",
                {"topology": Topology(topology).value, "consistency": Consistency(consistency).value},
                timeout=120.0,
            )
            if resp.type != "transition_done":
                raise ConfigError(f"transition failed: {resp.payload}")
            return resp.payload["epoch"]

        return self.sim.spawn(proc())

    def request_reshard(self, action: str, shard: Optional[str] = None,
                        client_name: str = "reshard-admin"):
        """Ask the coordinator to add a shard (``action="add"``) or
        drain and remove one (``action="remove"``, with ``shard``);
        returns a future resolving to the reshard stats payload once
        the double-ring cutover commits."""
        # reuse the admin port across repeated reshards (soak schedules
        # drive several add/remove cycles through one deployment)
        port = self.cluster.actors.get(client_name)
        if port is None:
            port = self.cluster.add_port(client_name)

        def proc():
            payload = {"action": action}
            if shard is not None:
                payload["shard"] = shard
            resp = yield port.request(
                "coordinator", "request_reshard", payload, timeout=300.0
            )
            if resp.type != "reshard_done":
                raise ConfigError(f"reshard failed: {resp.payload}")
            return resp.payload

        return self.sim.spawn(proc())
