"""Exception hierarchy for bespokv-py.

Every error raised by the framework derives from :class:`BespoError` so
applications can catch framework failures with a single handler while
letting programming errors (TypeError, etc.) propagate.
"""

from __future__ import annotations


class BespoError(Exception):
    """Base class for all bespokv-py errors."""


class ConfigError(BespoError):
    """Invalid or inconsistent deployment configuration."""


class KeyNotFound(BespoError):
    """A Get/Del referenced a key that is not present in the store."""

    def __init__(self, key: str):
        super().__init__(f"key not found: {key!r}")
        self.key = key


class TableNotFound(BespoError):
    """A client operation referenced a table that was never created."""

    def __init__(self, table: str):
        super().__init__(f"table not found: {table!r}")
        self.table = table


class NotMaster(BespoError):
    """A write was routed to a replica that is not allowed to accept it."""


class ShardUnavailable(BespoError):
    """No live controlet is currently serving the shard."""


class LockTimeout(BespoError):
    """The distributed lock manager could not grant a lock in time."""


class TransitionInProgress(BespoError):
    """A second topology/consistency transition was requested while one is
    still draining."""


class RequestTimeout(BespoError):
    """A client request exceeded its deadline (node failure, overload)."""


class ProtocolError(BespoError):
    """A malformed frame arrived on a connection (RESP or binary codec)."""


class SimulationError(BespoError):
    """The discrete-event kernel was used incorrectly (e.g. negative delay)."""


class WalCorruption(BespoError):
    """A write-ahead log is damaged beyond its torn tail: a checksum or
    sequence error *followed by valid records* — media corruption, not
    an interrupted append — so replay refuses to guess."""
