"""Natively-distributed baselines: Cassandra-like and Voldemort-like
quorum stores (Fig 12).

Both follow the Dynamo design the paper attributes to them: every node
is a peer; the node receiving a request acts as *coordinator*, fans the
operation out to the key's RF-replica preference list on a consistent-
hash ring, and acks after ``consistency_level`` replies (the paper
configures CL=ONE for both systems).

The two differ in their storage engines, which is where the paper
locates BESPOKV's advantage: "Cassandra uses compaction in its storage
engine which significantly effects the write performance and increases
the read latency due to use of extra CPU and disk usage".  The cost
model charges :attr:`~repro.sim.costs.CostModel.cassandra_engine_overhead`
/ ``voldemort_engine_overhead`` per storage operation on top of the raw
data-structure cost.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.datalet import Engine, HashTableEngine
from repro.errors import KeyNotFound
from repro.hashing import HashRing
from repro.net.actor import Actor
from repro.net.message import Message
from repro.sim.rng import RngRegistry

__all__ = ["QuorumStoreNode", "CassandraLikeNode", "VoldemortLikeNode"]


class QuorumStoreNode(Actor):
    """Peer node: coordinator role + local storage in one actor."""

    #: per-storage-op engine overhead attribute on the cost model.
    engine_overhead_attr = ""
    engine_kind = "ht"

    def __init__(
        self,
        node_id: str,
        members: List[str],
        rf: int = 3,
        consistency_level: int = 1,
        engine: Optional[Engine] = None,
        seed: int = 0,
        rng: Optional[random.Random] = None,
    ):
        super().__init__(node_id)
        self.members = list(members)
        self.ring = HashRing(self.members)
        self.rf = min(rf, len(self.members))
        self.cl = consistency_level
        self.engine = engine or HashTableEngine()
        # Replica choice must replay across runs *and* processes:
        # cluster deployments inject a named RngRegistry stream; the
        # standalone fallback takes a per-node stream from a private
        # registry (node_id in the stream name, not in the seed, so
        # renaming a node never perturbs the other nodes' draws).
        self.rng = rng or RngRegistry(seed).stream(f"baseline.quorum.{node_id}")
        self.coordinated = 0
        self.register("put", lambda m: self._coordinate_write(m, "put"))
        self.register("del", lambda m: self._coordinate_write(m, "del"))
        self.register("get", self._coordinate_read)
        self.register("q_apply", self._on_apply)
        self.register("q_read", self._on_read)
        self.register("scan", self._reject_scan)

    # ------------------------------------------------------------------
    def service_demand(self, msg: Message, costs) -> float:
        if msg.type in ("q_apply", "q_read"):
            base = costs.datalet_cost(self.engine_kind, "put" if msg.type == "q_apply" else "get")
            overhead = getattr(costs, self.engine_overhead_attr, 0.0) if self.engine_overhead_attr else 0.0
            return base + overhead * costs.cpu_scale
        return costs.scaled("controlet_overhead")

    # ------------------------------------------------------------------
    # coordinator role
    # ------------------------------------------------------------------
    def _preference_list(self, key: str) -> List[str]:
        return self.ring.lookup_n(key, self.rf)

    def _coordinate_write(self, msg: Message, op: str) -> None:
        self.coordinated += 1
        key = msg.payload["key"]
        replicas = self._preference_list(key)
        needed = {"n": self.cl, "done": False}
        payload = {"op": op, "key": key, "val": msg.payload.get("val")}

        def on_ack(resp, err) -> None:
            if needed["done"]:
                return
            if resp is not None and resp.type == "ok":
                needed["n"] -= 1
                if needed["n"] <= 0:
                    needed["done"] = True
                    self.respond(msg, "ok")

        for node in replicas:
            self.call(node, "q_apply", dict(payload), callback=on_ack, timeout=1.0)

    def _coordinate_read(self, msg: Message) -> None:
        self.coordinated += 1
        key = msg.payload["key"]
        replicas = self._preference_list(key)
        target = self.rng.choice(replicas)

        def on_value(resp, err) -> None:
            if err is not None or resp is None:
                self.respond(msg, "error", {"error": str(err)})
                return
            self.respond(msg, resp.type, dict(resp.payload))

        self.call(target, "q_read", {"key": key}, callback=on_value, timeout=1.0)

    # ------------------------------------------------------------------
    # storage role
    # ------------------------------------------------------------------
    def _on_apply(self, msg: Message) -> None:
        op = msg.payload["op"]
        try:
            if op == "put":
                self.engine.put(msg.payload["key"], msg.payload["val"])
            else:
                self.engine.delete(msg.payload["key"])
        except KeyNotFound:
            pass  # deletes of unseen keys tolerated (Dynamo semantics)
        self.respond(msg, "ok")

    def _on_read(self, msg: Message) -> None:
        try:
            val = self.engine.get(msg.payload["key"])
        except KeyNotFound:
            self.respond(msg, "error", {"error": "not_found", "key": msg.payload["key"]})
            return
        self.respond(msg, "value", {"val": val})

    def _reject_scan(self, msg: Message) -> None:
        self.respond(msg, "error", {"error": f"{type(self).__name__} does not support scans"})


class CassandraLikeNode(QuorumStoreNode):
    """Cassandra model: LSM storage with heavy compaction/bookkeeping."""

    engine_overhead_attr = "cassandra_engine_overhead"
    engine_kind = "lsm"


class VoldemortLikeNode(QuorumStoreNode):
    """Voldemort model: BDB-style storage, lighter than Cassandra's but
    heavier than a bare hash table."""

    engine_overhead_attr = "voldemort_engine_overhead"
    engine_kind = "ht"
