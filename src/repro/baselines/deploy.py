"""Builders + client for baseline systems.

Layouts (all on the same simulated substrate and cost model as the
BESPOKV deployments, so Fig 11/12 comparisons are apples-to-apples):

* ``twemproxy``  — P proxy hosts + B backend hosts (tRedis datalets);
  sharding only, no replication.
* ``dynomite``   — R racks x S positions; each rack holds a full copy
  of the keyspace; a node replicates to its same-position peers in the
  other racks.
* ``cassandra`` / ``voldemort`` — N peer nodes, RF=3, CL=ONE.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.baselines.proxies import DynomiteActor, TwemproxyActor
from repro.baselines.quorum import CassandraLikeNode, VoldemortLikeNode
from repro.datalet import DataletActor, make_engine
from repro.errors import BespoError, ConfigError, KeyNotFound
from repro.hashing import HashRing
from repro.net.simnet import ClientPort, SimCluster
from repro.sim import DEFAULT_COSTS, CostModel, NetworkParams, SimFuture

__all__ = ["BaselineDeployment", "BaselineClient"]


class BaselineClient:
    """Minimal client with the same surface LoadGenerator drives."""

    def __init__(self, deployment: "BaselineDeployment", name: str,
                 op_timeout: float = 2.0):
        self.dep = deployment
        self.sim = deployment.sim
        self.op_timeout = op_timeout
        self.port: ClientPort = deployment.cluster.add_port(name)
        self._rng = deployment.cluster.rng.stream(f"bclient.{name}")
        self.ops = 0
        #: node -> sim time until which it is considered down (real
        #: Dynomite/Cassandra drivers mark unresponsive hosts and route
        #: around them).
        self._suspect: Dict[str, float] = {}
        self.suspect_window = 10.0

    def connect(self) -> SimFuture:
        fut = self.sim.create_future()
        fut.set_result(None)  # topology is static; nothing to fetch
        return fut

    def _target(self, key: str) -> str:
        now = self.sim.now
        for _ in range(6):
            node = self.dep.route(key, self._rng)
            if self._suspect.get(node, 0.0) <= now:
                return node
        return node  # everyone suspect: try anyway

    def _request(self, op: str, key: str, payload: dict):
        self.ops += 1
        last: Exception = BespoError("unreachable")
        for _attempt in range(3):
            # each attempt re-rolls the coordinator/rack choice, which
            # is how Dynomite clients ride out a dead node (surviving
            # racks hold the replica)
            target = self._target(key)
            try:
                resp = yield self.port.request(target, op, payload, timeout=self.op_timeout)
            except BespoError as e:
                self._suspect[target] = self.sim.now + self.suspect_window
                last = e
                continue
            if resp.type == "error":
                err = resp.payload.get("error", "")
                if err == "not_found":
                    raise KeyNotFound(key)
                raise BespoError(f"{op} {key!r} failed: {err}")
            return resp
        raise last

    def put(self, key: str, val: str) -> SimFuture:
        def proc():
            yield from self._request("put", key, {"key": key, "val": val})

        return self.sim.spawn(proc())

    def get(self, key: str) -> SimFuture:
        def proc():
            resp = yield from self._request("get", key, {"key": key})
            return resp.payload["val"]

        return self.sim.spawn(proc())

    def delete(self, key: str) -> SimFuture:
        def proc():
            yield from self._request("del", key, {"key": key})

        return self.sim.spawn(proc())

    def scan(self, start: str, end: str, limit: Optional[int] = None) -> SimFuture:
        def proc():
            yield from self._request("scan", start, {"start": start, "end": end, "limit": limit})

        return self.sim.spawn(proc())


class BaselineDeployment:
    """Stand up one baseline system on a fresh simulated cluster."""

    KINDS = ("twemproxy", "mcrouter", "dynomite", "cassandra", "voldemort")

    def __init__(
        self,
        kind: str,
        shards: int = 8,
        replicas: int = 3,
        costs: CostModel = DEFAULT_COSTS,
        net_params: Optional[NetworkParams] = None,
        seed: int = 0,
        host_cpus: int = 4,
    ):
        if kind not in self.KINDS:
            raise ConfigError(f"unknown baseline {kind!r}; choose from {self.KINDS}")
        self.kind = kind
        self.shards = shards
        self.replicas = replicas
        self.cluster = SimCluster(costs=costs, net_params=net_params, seed=seed)
        self.sim = self.cluster.sim
        self._route_ring: Optional[HashRing] = None
        self._racks: Dict[str, List[str]] = {}
        self._nodes: List[str] = []
        getattr(self, f"_build_{kind}")(host_cpus)

    # ------------------------------------------------------------------
    def _build_twemproxy(self, cpus: int) -> None:
        backends = []
        for i in range(self.shards):
            datalet = f"redis{i}"
            self.cluster.add_host(f"backend{i}", cpus=cpus)
            self.cluster.add_actor(
                DataletActor(datalet, make_engine("redis")), host=f"backend{i}"
            )
            backends.append(datalet)
        self._route_ring = HashRing(backends)
        # one proxy per backend host count / 2, at least one
        n_proxies = max(1, self.shards // 2)
        for p in range(n_proxies):
            name = f"twemproxy{p}"
            self.cluster.add_host(name, cpus=cpus)
            self.cluster.add_actor(TwemproxyActor(name, backends), host=name)
            self._nodes.append(name)

    def _build_mcrouter(self, cpus: int) -> None:
        from repro.baselines.proxies import McrouterActor

        self._pools: List[List[str]] = []
        for p in range(self.shards):
            pool = []
            for r in range(self.replicas):
                datalet = f"mc{p}.{r}"
                host = f"mchost{p}.{r}"
                self.cluster.add_host(host, cpus=cpus)
                self.cluster.add_actor(DataletActor(datalet, make_engine("ht")), host=host)
                pool.append(datalet)
            self._pools.append(pool)
        self._route_ring = HashRing([f"pool{i}" for i in range(self.shards)])
        n_routers = max(1, self.shards // 2)
        for i in range(n_routers):
            name = f"mcrouter{i}"
            self.cluster.add_host(name, cpus=cpus)
            self.cluster.add_actor(McrouterActor(name, self._pools), host=name)
            self._nodes.append(name)

    def _build_dynomite(self, cpus: int) -> None:
        # racks x positions; ring over positions
        positions = [f"p{i}" for i in range(self.shards)]
        self._route_ring = HashRing(positions)
        for r in range(self.replicas):
            rack_nodes = []
            for i, pos in enumerate(positions):
                node = f"dyno.r{r}.{pos}"
                datalet = f"dynodata.r{r}.{pos}"
                host = f"dynohost.r{r}.{i}"
                self.cluster.add_host(host, cpus=cpus)
                self.cluster.add_actor(DataletActor(datalet, make_engine("redis")), host=host)
                peers = [f"dyno.r{rr}.{pos}" for rr in range(self.replicas) if rr != r]
                self.cluster.add_actor(DynomiteActor(node, datalet, peers), host=host)
                rack_nodes.append(node)
            self._racks[f"r{r}"] = rack_nodes

    def _build_cassandra(self, cpus: int) -> None:
        self._build_quorum(CassandraLikeNode, cpus)

    def _build_voldemort(self, cpus: int) -> None:
        self._build_quorum(VoldemortLikeNode, cpus)

    def _build_quorum(self, node_cls, cpus: int) -> None:
        names = [f"{node_cls.__name__.lower()}{i}" for i in range(self.shards)]
        for name in names:
            self.cluster.add_host(name, cpus=cpus)
            self.cluster.add_actor(
                node_cls(name, members=names, rf=min(self.replicas, len(names)),
                         rng=self.cluster.rng.stream(f"quorum.{name}")),
                host=name,
            )
        self._nodes = names
        self._route_ring = HashRing(names)

    # ------------------------------------------------------------------
    def start(self) -> None:
        self.cluster.start()

    def route(self, key: str, rng: random.Random) -> str:
        """Pick the node a client contacts for ``key``."""
        if self.kind == "dynomite":
            # token-aware client: owner position in a random rack
            rack = self._racks[f"r{rng.randrange(self.replicas)}"]
            pos = self._route_ring.lookup(key)
            return next(n for n in rack if n.endswith("." + pos))
        return self._nodes[rng.randrange(len(self._nodes))]

    def client(self, name: str, **kwargs) -> BaselineClient:
        return BaselineClient(self, name, **kwargs)

    def preload(self, items: Dict[str, str]) -> None:
        """Load data directly into the engines that own each key,
        matching the system's own placement rules."""
        if self.kind == "twemproxy":
            for k, v in items.items():
                self.cluster.actor(self._route_ring.lookup(k)).engine.put(k, v)
        elif self.kind == "mcrouter":
            for k, v in items.items():
                pool = self._pools[int(self._route_ring.lookup(k)[4:])]
                for datalet in pool:
                    self.cluster.actor(datalet).engine.put(k, v)
        elif self.kind == "dynomite":
            for k, v in items.items():
                pos = self._route_ring.lookup(k)
                for rack in self._racks.values():
                    node = next(n for n in rack if n.endswith("." + pos))
                    datalet = self.cluster.actor(node).datalet
                    self.cluster.actor(datalet).engine.put(k, v)
        else:
            rf = min(self.replicas, len(self._nodes))
            for k, v in items.items():
                for node in self._route_ring.lookup_n(k, rf):
                    self.cluster.actor(node).engine.put(k, v)

    def node_engines(self):
        """All storage engines (for convergence checks in tests)."""
        engines = []
        for actor in self.cluster.actors.values():
            engine = getattr(actor, "engine", None)
            if engine is not None:
                engines.append((actor.node_id, engine))
        return engines
