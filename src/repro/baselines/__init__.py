"""Comparator systems the paper evaluates against (Figs 11 & 12),
implemented on the same simulated substrate as BESPOKV."""

from repro.baselines.deploy import BaselineClient, BaselineDeployment
from repro.baselines.proxies import DynomiteActor, McrouterActor, TwemproxyActor
from repro.baselines.quorum import CassandraLikeNode, QuorumStoreNode, VoldemortLikeNode

__all__ = [
    "BaselineDeployment",
    "BaselineClient",
    "TwemproxyActor",
    "McrouterActor",
    "DynomiteActor",
    "QuorumStoreNode",
    "CassandraLikeNode",
    "VoldemortLikeNode",
]
