"""Proxy-layer baselines: Twemproxy and Dynomite models (Fig 11).

* **Twemproxy** — a pure request router: consistent-hashes the key to
  exactly one backend, no replication, no failover.  Slightly faster
  than BESPOKV's MS+EC because it does strictly less work per request
  (the paper's own observation).
* **Dynomite** — Netflix's Twemproxy extension: every node owns a local
  backend; a write applies locally, acks, then propagates to peer
  replicas directly (no ordering service — which is why the paper notes
  Dynomite cannot guarantee strict EC under conflicting concurrent
  writes; :mod:`tests.test_baselines` demonstrates the divergence the
  shared log prevents).
"""

from __future__ import annotations

from typing import List, Optional

from repro.hashing import HashRing
from repro.net.actor import Actor
from repro.net.message import Message

__all__ = ["TwemproxyActor", "DynomiteActor"]


class TwemproxyActor(Actor):
    """Stateless shard router over a pool of backend datalets."""

    def __init__(self, node_id: str, backends: List[str]):
        super().__init__(node_id)
        self.ring = HashRing(backends)
        self.routed = 0
        for op in ("put", "get", "del"):
            self.register(op, self._route_op)
        self.register("scan", self._reject_scan)

    def service_demand(self, msg: Message, costs) -> float:
        return costs.scaled("controlet_overhead")

    def _route_op(self, msg: Message) -> None:
        self.routed += 1
        backend = self.ring.lookup(msg.payload["key"])
        # forward preserving correlation: the backend answers the client
        self.forward(msg, backend)

    def _reject_scan(self, msg: Message) -> None:
        self.respond(msg, "error", {"error": "twemproxy does not support scans"})


class McrouterActor(Actor):
    """Mcrouter model: Facebook's memcached router (Table I: S+R, no
    multiple backends).

    Routes by consistent hashing over *pools*; each pool is a set of
    replicated memcached backends.  Writes fan out to every replica in
    the pool (``AllSyncRoute``), reads go to one.
    """

    def __init__(self, node_id: str, pools: List[List[str]]):
        if not pools or any(not p for p in pools):
            raise ValueError("pools must be non-empty lists of backends")
        super().__init__(node_id)
        self.pools = pools
        self.ring = HashRing([f"pool{i}" for i in range(len(pools))])
        self.routed = 0
        self.register("put", lambda m: self._write(m, "put"))
        self.register("del", lambda m: self._write(m, "del"))
        self.register("get", self._read)
        self.register("scan", self._reject_scan)

    def service_demand(self, msg: Message, costs) -> float:
        return costs.scaled("controlet_overhead")

    def _pool_of(self, key: str) -> List[str]:
        return self.pools[int(self.ring.lookup(key)[4:])]

    def _write(self, msg: Message, op: str) -> None:
        """AllSyncRoute: ack after every replica in the pool acks."""
        self.routed += 1
        pool = self._pool_of(msg.payload["key"])
        payload = {"key": msg.payload["key"]}
        if op == "put":
            payload["val"] = msg.payload["val"]
        remaining = {"n": len(pool)}
        failed = {"err": None}

        def on_ack(resp, err) -> None:
            if err is not None:
                failed["err"] = err
            remaining["n"] -= 1
            if remaining["n"] == 0:
                if failed["err"] is not None:
                    self.respond(msg, "error", {"error": str(failed["err"])})
                else:
                    self.respond(msg, "ok")

        for backend in pool:
            self.call(backend, op, dict(payload), callback=on_ack, timeout=1.0)

    def _read(self, msg: Message) -> None:
        self.routed += 1
        pool = self._pool_of(msg.payload["key"])
        self.forward(msg, pool[msg.msg_id % len(pool)])

    def _reject_scan(self, msg: Message) -> None:
        self.respond(msg, "error", {"error": "mcrouter does not support scans"})


class DynomiteActor(Actor):
    """One Dynomite node: proxy + colocated backend datalet.

    ``peers`` are the other nodes of the same replica group (one per
    rack/DC in real Dynomite).  Replication is peer-to-peer
    last-writer-wins — no global order.
    """

    def __init__(self, node_id: str, datalet: str, peers: Optional[List[str]] = None):
        super().__init__(node_id)
        self.datalet = datalet
        self.peers = peers or []
        self.replicated = 0
        self.register("put", lambda m: self._write(m, "put"))
        self.register("del", lambda m: self._write(m, "del"))
        self.register("get", self._get)
        self.register("dyno_replicate", self._on_replicate)
        self.register("scan", self._reject_scan)

    def service_demand(self, msg: Message, costs) -> float:
        return costs.scaled("controlet_overhead")

    def _write(self, msg: Message, op: str) -> None:
        payload = {"key": msg.payload["key"]}
        if op == "put":
            payload["val"] = msg.payload["val"]

        def after_local(resp, err) -> None:
            if err is not None or resp is None:
                self.respond(msg, "error", {"error": str(err)})
                return
            self.respond(msg, resp.type, dict(resp.payload))
            if resp.type != "error":
                # async peer propagation, no ordering
                for peer in self.peers:
                    self.send(peer, "dyno_replicate", {"op": op, **payload})
                    self.replicated += 1

        self.call(self.datalet, op, payload, callback=after_local)

    def _on_replicate(self, msg: Message) -> None:
        entry = dict(msg.payload)
        op = entry.pop("op")
        self.send(self.datalet, "apply_batch", {"ops": [{"op": op, "key": entry["key"],
                                                         "val": entry.get("val")}]})

    def _get(self, msg: Message) -> None:
        self.forward(msg, self.datalet)

    def _reject_scan(self, msg: Message) -> None:
        self.respond(msg, "error", {"error": "dynomite does not support scans"})
