"""Exhaustive small-scope model checker for the protocol stack.

``repro check`` runs the real controlet/coordinator/datalet code inside
a :class:`~repro.analysis.statespace.CheckerRun` and explores **every**
schedule the scope bounds allow: at each state the enabled transitions
are the deliverable in-flight messages, one "advance virtual time by a
single kernel event" step, and host crashes from a bounded fault
budget.  Exploration is depth-first with two reductions:

* **state-fingerprint pruning** — a state whose canonical fingerprint
  (actor snapshots + in-flight multiset + armed-timer offsets + fault
  budget) was already visited is not re-expanded.  Fingerprints are
  stored together with the sleep set they were reached under; a revisit
  is pruned only when a stored sleep set is a subset of the current one
  (re-reaching a state with a *smaller* sleep set re-explores it —
  the standard soundness condition for combining the two techniques).
* **sleep-set partial-order reduction** — of two *independent*
  transitions, only one interleaving is explored.  Deliveries to
  different **hosts** are independent (a handler touches only its own
  host's actors — the colocated controlet/datalet pair shares one host
  and engine calls between them run synchronously — and its sends are
  order-insensitive multiset appends); the one cross-host coupling, the
  checker client reading the coordinator's map directly, is declared
  dependent explicitly.  Same-host deliveries are independent only when
  the static handler summaries (:mod:`repro.analysis.summaries`) prove
  their read/write footprints disjoint — engine effects compare through
  the shared ``<datalet>`` pseudo-attribute.  Replies are never reduced
  (the continuation's footprint is whatever the call site closed over),
  and advance/crash transitions conflict with everything.

Timer-driven behaviour is scope-bounded by the scenario's **advance
budget** (see :class:`~repro.analysis.statespace.CheckScenario`), and
exploration runs in two passes: a *delay-bounded* pass with zero
advances first (pure message-reorder bugs live in this tiny space), then
the full-budget pass.  Once every scripted op has resolved the history
is judged and — for the STRONG combos — the state becomes a leaf:
nothing downstream can change an already-recorded history.

**Recovery-aware exploration** (durable scenarios): a crash is no
longer a leaf-shaped dead end.  While the restart budget lasts, every
crashed data host offers a ``restart`` transition that runs the real
``Deployment.recover_host`` — WAL replay against whatever the crash
left synced, then the rejoin protocol — *inside* the explored
interleaving.  A completed history with recoveries (or with restarts
still possible) is therefore not final: the subtree keeps delivering
and restarting until the durable endgame settles, and at each quiet
endpoint the PR-6 recovery oracle (:func:`~repro.chaos.oracle.
check_recovery`) judges the durability floor, replay validity,
no-resurrection and — gated by the *statically derived* per-combo
commit-point contract (:func:`~repro.analysis.commitpoints.
ack_durable_for`) — settled-final-state.  The oracle runs on a probe
replay that first quiesces (heal + timers), mirroring the chaos
harness: a mid-catch-up replica is not a violation, a lost acked write
after settling is.

States are never snapshotted (protocol code holds lambdas and closures
deepcopy cannot soundly clone); backtracking rebuilds the run from the
root and replays the decision prefix — decisions are indices into the
deterministic enabled-transition enumeration, so a ``(scenario,
decisions)`` pair is a complete, replayable trace.  That is exactly
what a counterexample is: :func:`replay_trace` re-runs one and
re-derives the violation deterministically.

Invariants checked at every state: no orphaned pending call (a
continuation whose timeout timer was cancelled without the entry being
removed), no deadlock (ops incomplete but nothing deliverable or
armed).  When every scripted op has resolved, the consistency oracle
from PR 1 runs: linearizability (Wing & Gong) for the STRONG combos;
validity plus — after a deterministic quiesce suffix — replica
convergence for the EVENTUAL combos.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.analysis.commitpoints import ack_durable_for
from repro.analysis.statespace import (
    CheckScenario,
    CheckerClient,
    CheckerCluster,
    CheckerRun,
    EnabledEvent,
)
from repro.analysis.summaries import (
    ClassSummary,
    HandlerFootprint,
    SummaryTable,
    build_summaries,
    datalet_footprint,
)
from repro.datalet.base import DataletActor
from repro.chaos.oracle import check_eventual, check_linearizable, check_recovery
from repro.core.types import Consistency
from repro.errors import BespoError

__all__ = [
    "CounterTrace",
    "ExploreResult",
    "Explorer",
    "explore",
    "replay_trace",
]

#: deterministic settle time before EC convergence is asserted
QUIESCE_TIME = 6.0


@dataclass
class CounterTrace:
    """A replayable counterexample: scenario + decision indices."""

    scenario: Dict
    decisions: List[int]
    events: List[str]
    kind: str       # "structural" | "deadlock" | "consistency" |
                    # "convergence" | "recovery"
    violation: str

    def to_json(self) -> str:
        return json.dumps(
            {
                "schema": "repro.check.trace/1",
                "scenario": self.scenario,
                "decisions": self.decisions,
                "events": self.events,
                "kind": self.kind,
                "violation": self.violation,
            },
            indent=2,
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "CounterTrace":
        d = json.loads(text)
        return cls(
            scenario=d["scenario"],
            decisions=list(d["decisions"]),
            events=list(d.get("events", [])),
            kind=d.get("kind", "unknown"),
            violation=d.get("violation", ""),
        )


@dataclass
class ExploreResult:
    """Outcome of one exploration."""

    scenario: Dict
    states: int = 0
    pruned: int = 0
    sleep_skipped: int = 0
    transitions: int = 0
    replays: int = 0
    oracle_checks: int = 0
    max_depth_seen: int = 0
    depth_truncated: int = 0
    #: branches that ran out of advance budget with timers still armed —
    #: a scope boundary (like the crash budget), not an incompleteness
    advance_capped: int = 0
    passes: int = 1
    fixpoint: bool = False
    budget_exhausted: Optional[str] = None  # "states" | "time" | None
    wall_seconds: float = 0.0
    counterexample: Optional[CounterTrace] = None
    coalesced: int = 0

    @property
    def ok(self) -> bool:
        return self.counterexample is None

    def describe(self) -> str:
        lines = [
            f"check: {'PASS' if self.ok else 'FAIL'} "
            f"[{CheckScenario.from_dict(self.scenario).label()}]",
            f"  states explored : {self.states}",
            f"  states pruned   : {self.pruned} (fingerprint) "
            f"+ {self.sleep_skipped} (sleep set)",
            f"  transitions     : {self.transitions} "
            f"({self.replays} replays, {self.coalesced} coalesced sends)",
            f"  oracle checks   : {self.oracle_checks}",
            f"  max depth       : {self.max_depth_seen}"
            + (f" ({self.depth_truncated} branches depth-capped)"
               if self.depth_truncated else "")
            + (f" ({self.advance_capped} branches at advance-budget scope)"
               if self.advance_capped else ""),
            f"  fixpoint        : {'yes' if self.fixpoint else 'NO'}"
            + (f" (budget exhausted: {self.budget_exhausted})"
               if self.budget_exhausted else "")
            + (f" [{self.passes} passes]" if self.passes > 1 else ""),
            f"  wall time       : {self.wall_seconds:.2f}s",
        ]
        if self.counterexample is not None:
            ce = self.counterexample
            lines.append(f"  VIOLATION [{ce.kind}]: {ce.violation}")
            lines.append(f"  counterexample: {len(ce.decisions)} decisions")
            for step, desc in enumerate(ce.events):
                lines.append(f"    {step:3d}. {desc}")
        return "\n".join(lines)


class Explorer:
    """DFS + sleep sets + fingerprint pruning over a scenario."""

    def __init__(
        self,
        scenario: CheckScenario,
        max_states: int = 20000,
        max_depth: int = 200,
        time_budget: Optional[float] = None,
        summaries: Optional[SummaryTable] = None,
    ):
        self.scenario = scenario
        self.max_states = max_states
        self.max_depth = max_depth
        self.time_budget = time_budget
        self.summaries = summaries if summaries is not None else build_summaries()
        self._summary_cache: Dict[str, ClassSummary] = {}
        #: fingerprint -> sleep sets it has been expanded under
        self.visited: Dict[str, List[FrozenSet]] = {}
        self._sc_checked: set = set()   # recorder digests already judged
        self._ec_checked: set = set()   # fingerprints quiesce-checked
        self._rec_checked: set = set()  # fingerprints recovery-checked
        self.result = ExploreResult(scenario=scenario.to_dict())
        self._stopped = False
        self._start = 0.0
        self._eventual = scenario.consistency is Consistency.EVENTUAL
        #: the statically proven commit-point contract for this combo:
        #: whether an ack implies a durable copy under this fsync cadence
        self._ack_durable = ack_durable_for(
            scenario.combo, scenario.wal_sync_every
        )

    # -- plumbing --------------------------------------------------------
    def _fresh(self) -> CheckerRun:
        run = CheckerRun(self.scenario)
        run.boot()
        return run

    def _replay(self, decisions: List[int]) -> CheckerRun:
        self.result.replays += 1
        run = self._fresh()
        for choice in decisions:
            run.apply_choice(choice)
        return run

    def _over_budget(self) -> Optional[str]:
        if self.result.states >= self.max_states:
            return "states"
        if self.time_budget is not None and (
            time.monotonic() - self._start  # lint: allow[wallclock] search budget
        ) > self.time_budget:
            return "time"
        return None

    # -- independence (sleep sets) ---------------------------------------
    def _summary_for(self, run: CheckerRun, node_id: str) -> Optional[ClassSummary]:
        actor = run.cluster._actors.get(node_id)
        if actor is None:
            return None
        names = tuple(c.__name__ for c in type(actor).__mro__)
        key = "+".join(names)
        summary = self._summary_cache.get(key)
        if summary is None:
            summary = self.summaries.for_class_chain(names)
            self._summary_cache[key] = summary
        return summary

    def _footprint_for(
        self, run: CheckerRun, dst: str, msg_type: str
    ) -> Optional[HandlerFootprint]:
        actor = run.cluster._actors.get(dst)
        if actor is None:
            return None
        if isinstance(actor, DataletActor):
            # direct engine call (recovery snapshot, AA fan-out): compare
            # in the same <datalet> vocabulary the controlet summaries use
            return datalet_footprint(msg_type)
        summary = self._summary_for(run, dst)
        if summary is None:
            return None
        return summary.footprint(msg_type)

    def _map_coupled(self, run: CheckerRun, dst_a: str, dst_b: str) -> bool:
        """The one sanctioned cross-host coupling: the checker client
        routes by reading the coordinator's map directly, so a reply that
        resumes a client races any delivery that may move the map."""
        coord = run.dep.coordinator.node_id
        for x, y in ((dst_a, dst_b), (dst_b, dst_a)):
            if y == coord and isinstance(run.cluster._actors.get(x), CheckerClient):
                return True
        return False

    def _independent(self, key_a: Tuple, key_b: Tuple, run: CheckerRun) -> bool:
        # key = ("deliver", src, dst, type, digest, is_reply, occ)
        if key_a[0] != "deliver" or key_b[0] != "deliver":
            return False  # advance/crash/restart conflict with everything
        dst_a, dst_b = key_a[2], key_b[2]
        host_a = run.cluster._actor_host.get(dst_a)
        host_b = run.cluster._actor_host.get(dst_b)
        if host_a is None or host_b is None:
            return False
        if host_a != host_b:
            # host granularity, not actor granularity: a controlet
            # handler mutates its colocated datalet synchronously
            return not self._map_coupled(run, dst_a, dst_b)
        if key_a[5] or key_b[5]:
            return False  # reply continuations: footprint unknown
        fa = self._footprint_for(run, dst_a, key_a[3])
        fb = self._footprint_for(run, dst_b, key_b[3])
        if fa is None or fb is None:
            return False
        return not fa.conflicts(fb)

    # -- violation handling ----------------------------------------------
    def _record(self, decisions: List[int], kind: str, violation: str) -> None:
        # one extra replay to caption every step of the trace
        run = self._fresh()
        self.result.replays += 1
        events: List[str] = []
        for choice in decisions:
            events.append(run.apply_choice(choice).describe)
        self.result.counterexample = CounterTrace(
            scenario=self.scenario.to_dict(),
            decisions=list(decisions),
            events=events,
            kind=kind,
            violation=violation,
        )
        self._stopped = True

    # -- oracle hooks ------------------------------------------------------
    def _history_violation(self, run: CheckerRun) -> Optional[str]:
        digest = run.recorder.digest()
        if digest in self._sc_checked:
            return None
        self._sc_checked.add(digest)
        self.result.oracle_checks += 1
        if not self._eventual:
            report = check_linearizable(run.recorder.records)
        else:
            # validity only; convergence needs the quiesce suffix
            report = check_eventual(run.recorder.records, {})
        if report.violations:
            return "; ".join(report.violations)
        return None

    def _convergence_violation(
        self, run: CheckerRun, fingerprint: str
    ) -> Optional[str]:
        if fingerprint in self._ec_checked:
            return None
        self._ec_checked.add(fingerprint)
        # the caller treats this state as a leaf, so quiescing the
        # in-hand run (which mutates it) is free
        run.quiesce(QUIESCE_TIME)
        self.result.oracle_checks += 1
        report = check_eventual(run.recorder.records, run.replica_dumps())
        if report.violations:
            return "; ".join(report.violations)
        return None

    def _recovery_violation(
        self, run: CheckerRun, decisions: List[int]
    ) -> Optional[str]:
        """Judge the path's recoveries with the PR-6 oracle.

        Runs on a *probe* replay that quiesces first (the in-hand run
        may still have to expand restart children), so a replica caught
        mid-rejoin is settled — not misread as a lost write — before
        the durability floor / no-resurrection / settled-final-state
        checks fire.  ``ack_durable`` comes from the static commit-point
        contract, not a heuristic: MS+EC under group commit legally
        rolls back acked unsynced tails, every other combo must not.
        """
        fingerprint = run.fingerprint()
        if fingerprint in self._rec_checked:
            return None
        self._rec_checked.add(fingerprint)
        self.result.oracle_checks += 1
        probe = self._replay(decisions)
        probe.quiesce(QUIESCE_TIME)
        report = check_recovery(
            probe.recorder.records,
            probe.recoveries,
            probe.replica_dumps(),
            strong=not self._eventual,
            synced_acks=self.scenario.wal_sync_every == 1,
            ack_durable=self._ack_durable,
        )
        if report.violations:
            return "; ".join(report.violations)
        return None

    # -- the search --------------------------------------------------------
    def run(self) -> ExploreResult:
        self._start = time.monotonic()  # lint: allow[wallclock] search budget
        run = self._fresh()
        self._visit(run, [], frozenset(), 0)
        self.result.fixpoint = (
            self.result.counterexample is None
            and self.result.budget_exhausted is None
            and self.result.depth_truncated == 0
        )
        self.result.wall_seconds = time.monotonic() - self._start  # lint: allow[wallclock] search budget
        return self.result

    def _visit(
        self,
        run: CheckerRun,
        decisions: List[int],
        sleep: FrozenSet,
        depth: int,
    ) -> None:
        if self._stopped:
            return
        over = self._over_budget()
        if over is not None:
            self.result.budget_exhausted = over
            return
        self.result.max_depth_seen = max(self.result.max_depth_seen, depth)
        self.result.coalesced = max(self.result.coalesced, run.cluster.coalesced)

        violation = run.invariant_violation()
        if violation is not None:
            self._record(decisions, "structural", violation)
            return
        if run.clients_done():
            violation = self._history_violation(run)
            if violation is not None:
                self._record(decisions, "consistency", violation)
                return
            # the durable endgame: can a restart still happen, and is
            # there a settled (quiet) state to judge recoveries at?
            restartable = (
                run.restart_budget > 0 and bool(run.crashed_data_hosts())
            )
            quiet = not run.cluster.pending
            if run.recoveries and quiet:
                violation = self._recovery_violation(run, decisions)
                if violation is not None:
                    self._record(decisions, "recovery", violation)
                    return
            if not self._eventual:
                if not restartable and (quiet or not run.recoveries):
                    # a judged STRONG history is final once its durable
                    # endgame is too: no restart can still run, and any
                    # recoveries were judged at this quiet state
                    return
                # otherwise keep exploring: pending deliveries drain
                # toward the quiet recovery check, and each remaining
                # restart opens a distinct recovered end state
            elif run.done_and_quiet():
                fingerprint = run.fingerprint()
                if not restartable:
                    violation = self._convergence_violation(run, fingerprint)
                    if violation is not None:
                        self._record(decisions, "convergence", violation)
                    return
                # restarts remain, so this state is not a leaf: check
                # convergence on a probe replay (the check quiesces its
                # run, and the in-hand one must stay replayable for the
                # restart children expanded below)
                if fingerprint not in self._ec_checked:
                    violation = self._convergence_violation(
                        self._replay(decisions), fingerprint
                    )
                    if violation is not None:
                        self._record(decisions, "convergence", violation)
                        return
            # EC with messages still parked: keep delivering toward quiet

        fingerprint = run.fingerprint()
        stored = self.visited.get(fingerprint)
        if stored is not None and any(s <= sleep for s in stored):
            self.result.pruned += 1
            return
        self.visited.setdefault(fingerprint, []).append(sleep)
        self.result.states += 1

        events = run.enabled()
        progress = [
            e for e in events if e.kind in ("deliver", "advance", "restart")
        ]
        if not progress:
            if run.sim.armed_events():
                # timers remain but the advance budget is spent: the
                # scenario's scope boundary, not a stuck system
                self.result.advance_capped += 1
                return
            self._record(
                decisions,
                "deadlock",
                "deadlock: ops incomplete but no deliverable message "
                "or armed timer remains",
            )
            return

        if depth >= self.max_depth:
            self.result.depth_truncated += 1
            return

        explored: set = set()
        current: Optional[CheckerRun] = run  # valid only for the first child
        for i, event in enumerate(events):
            if self._stopped or self._over_budget() is not None:
                break
            if event.key in sleep:
                self.result.sleep_skipped += 1
                continue
            if current is None:
                current = self._replay(decisions)
            child_sleep = frozenset(
                z for z in (sleep | explored)
                if self._independent(z, event.key, current)
            )
            current.execute(event)
            self.result.transitions += 1
            self._visit(current, decisions + [i], child_sleep, depth + 1)
            current = None  # consumed by the child
            explored.add(event.key)


def _merge_passes(
    scenario: CheckScenario, quick: ExploreResult, full: ExploreResult
) -> ExploreResult:
    full.scenario = scenario.to_dict()
    full.states += quick.states
    full.pruned += quick.pruned
    full.sleep_skipped += quick.sleep_skipped
    full.transitions += quick.transitions
    full.replays += quick.replays
    full.oracle_checks += quick.oracle_checks
    full.advance_capped += quick.advance_capped
    full.max_depth_seen = max(full.max_depth_seen, quick.max_depth_seen)
    full.depth_truncated += quick.depth_truncated
    full.coalesced = max(full.coalesced, quick.coalesced)
    full.wall_seconds += quick.wall_seconds
    full.passes = 2
    # completeness is the full pass's verdict: its schedule space is a
    # superset of the delay-bounded pass's
    return full


def explore(
    scenario: CheckScenario,
    max_states: int = 20000,
    max_depth: int = 200,
    time_budget: Optional[float] = None,
    summaries: Optional[SummaryTable] = None,
) -> ExploreResult:
    """Exhaustively explore ``scenario`` within the given budgets.

    Two passes: first *delay-bounded* (zero advances, zero crashes,
    zero restarts — pure message-reorder bugs surface here within a
    tiny space, and a crash is unobservable without the timers that
    detect it), then the full scenario.  A counterexample from either pass carries its own
    scenario dict, so :func:`replay_trace` replays it faithfully.
    """
    if summaries is None:
        summaries = build_summaries()
    if scenario.advance_budget <= 0:
        return Explorer(
            scenario, max_states=max_states, max_depth=max_depth,
            time_budget=time_budget, summaries=summaries,
        ).run()
    start = time.monotonic()  # lint: allow[wallclock] search budget
    quick = Explorer(
        replace(scenario, advance_budget=0, crashes=0, restarts=0),
        max_states=max_states, max_depth=max_depth,
        time_budget=time_budget, summaries=summaries,
    ).run()
    if quick.counterexample is not None:
        return quick
    states_left = max_states - quick.states
    time_left = None
    if time_budget is not None:
        time_left = time_budget - (time.monotonic() - start)  # lint: allow[wallclock] search budget
    if states_left <= 0 or (time_left is not None and time_left <= 0):
        quick.budget_exhausted = quick.budget_exhausted or (
            "states" if states_left <= 0 else "time"
        )
        quick.fixpoint = False
        quick.scenario = scenario.to_dict()
        return quick
    full = Explorer(
        scenario, max_states=states_left, max_depth=max_depth,
        time_budget=time_left, summaries=summaries,
    ).run()
    return _merge_passes(scenario, quick, full)


# ---------------------------------------------------------------------------
# counterexample replay
# ---------------------------------------------------------------------------
@dataclass
class ReplayResult:
    """Outcome of re-running a counterexample trace."""

    reproduced: bool
    violation: Optional[str]
    expected: str
    events: List[str] = field(default_factory=list)

    def describe(self) -> str:
        lines = [f"replay: {'REPRODUCED' if self.reproduced else 'DID NOT REPRODUCE'}"]
        for step, desc in enumerate(self.events):
            lines.append(f"  {step:3d}. {desc}")
        lines.append(f"  expected : {self.expected}")
        lines.append(f"  observed : {self.violation or '(no violation)'}")
        return "\n".join(lines)


def replay_trace(trace: CounterTrace) -> ReplayResult:
    """Re-execute a counterexample deterministically and re-derive its
    violation.  The decision indices fully determine the schedule, so a
    healthy trace reproduces bit-for-bit."""
    scenario = CheckScenario.from_dict(trace.scenario)
    run = CheckerRun(scenario)
    run.boot()
    events: List[str] = []
    for choice in trace.decisions:
        try:
            events.append(run.apply_choice(choice).describe)
        except BespoError as e:
            # the build under replay no longer offers this schedule —
            # the expected outcome when a trace is replayed against a
            # fixed (or otherwise changed) build
            return ReplayResult(
                reproduced=False,
                violation=f"(trace diverged at step {len(events)}: {e})",
                expected=trace.violation,
                events=events,
            )

    violation: Optional[str] = run.invariant_violation()
    if violation is None and trace.kind == "deadlock":
        progress = [e for e in run.enabled() if e.kind in ("deliver", "advance")]
        if not progress and not run.clients_done() and not run.sim.armed_events():
            violation = (
                "deadlock: ops incomplete but no deliverable message "
                "or armed timer remains"
            )
    if violation is None and run.clients_done():
        if trace.kind == "recovery":
            # same probe semantics as the explorer: settle first, then
            # judge the recoveries under the static commit-point contract
            run.quiesce(QUIESCE_TIME)
            report = check_recovery(
                run.recorder.records,
                run.recoveries,
                run.replica_dumps(),
                strong=scenario.consistency is not Consistency.EVENTUAL,
                synced_acks=scenario.wal_sync_every == 1,
                ack_durable=ack_durable_for(
                    scenario.combo, scenario.wal_sync_every
                ),
            )
        elif scenario.consistency is Consistency.EVENTUAL:
            if trace.kind == "convergence":
                run.quiesce(QUIESCE_TIME)
                report = check_eventual(run.recorder.records, run.replica_dumps())
            else:
                report = check_eventual(run.recorder.records, {})
        else:
            report = check_linearizable(run.recorder.records)
        if report.violations:
            violation = "; ".join(report.violations)
    return ReplayResult(
        reproduced=violation == trace.violation,
        violation=violation,
        expected=trace.violation,
        events=events,
    )
