"""Shared finding/report types for the static-analysis passes."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

__all__ = ["Finding", "format_findings", "summarize"]


@dataclass(frozen=True)
class Finding:
    """One diagnostic from a pass.

    ``severity`` is ``"error"`` (breaks determinism / protocol) or
    ``"warning"`` (suspicious; strict mode treats it as fatal).
    ``suppressed`` findings matched an explicit pragma or allowlist
    entry and never affect exit codes — they are kept so ``repro lint
    --show-suppressed`` can audit what is being waived.
    """

    path: str
    line: int
    rule: str
    message: str
    severity: str = "error"
    suppressed: bool = False

    def format(self) -> str:
        tag = "allowed" if self.suppressed else self.severity
        return f"{self.path}:{self.line}: [{self.rule}] {tag}: {self.message}"


def format_findings(findings: List[Finding]) -> str:
    return "\n".join(
        f.format()
        for f in sorted(findings, key=lambda f: (f.path, f.line, f.rule))
    )


def summarize(findings: List[Finding]) -> Dict[str, int]:
    """Counts by disposition, for the one-line lint summary."""
    out = {"errors": 0, "warnings": 0, "suppressed": 0}
    for f in findings:
        if f.suppressed:
            out["suppressed"] += 1
        elif f.severity == "warning":
            out["warnings"] += 1
        else:
            out["errors"] += 1
    return out
