"""Shared finding/report types for the static-analysis passes.

Three renderings of the same finding list:

* :func:`format_findings` — the human one-line-per-finding form;
* :func:`findings_to_json` — a stable machine envelope (schema
  ``repro.lint.findings/1``) shared by ``repro lint --format json``
  and the model checker's counterexample metadata;
* :func:`format_github` — GitHub Actions workflow commands
  (``::error file=...``) so CI annotates the offending lines inline.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Dict, List

__all__ = [
    "FINDINGS_SCHEMA",
    "Finding",
    "findings_to_json",
    "format_findings",
    "format_github",
    "summarize",
]

#: version tag for the JSON envelope; bump on breaking field changes.
FINDINGS_SCHEMA = "repro.lint.findings/1"


@dataclass(frozen=True)
class Finding:
    """One diagnostic from a pass.

    ``severity`` is ``"error"`` (breaks determinism / protocol) or
    ``"warning"`` (suspicious; strict mode treats it as fatal).
    ``suppressed`` findings matched an explicit pragma or allowlist
    entry and never affect exit codes — they are kept so ``repro lint
    --show-suppressed`` can audit what is being waived.
    """

    path: str
    line: int
    rule: str
    message: str
    severity: str = "error"
    suppressed: bool = False

    def format(self) -> str:
        tag = "allowed" if self.suppressed else self.severity
        return f"{self.path}:{self.line}: [{self.rule}] {tag}: {self.message}"

    def to_dict(self) -> Dict:
        return asdict(self)


def format_findings(findings: List[Finding]) -> str:
    return "\n".join(
        f.format()
        for f in sorted(findings, key=lambda f: (f.path, f.line, f.rule))
    )


def findings_to_json(findings: List[Finding], indent: int = 2) -> str:
    """Serialize the full finding list (suppressed included, so tools
    can audit waivers) under a versioned envelope."""
    doc = {
        "schema": FINDINGS_SCHEMA,
        "summary": summarize(findings),
        "findings": [
            f.to_dict()
            for f in sorted(findings, key=lambda f: (f.path, f.line, f.rule))
        ],
    }
    return json.dumps(doc, indent=indent, sort_keys=False)


def _gh_escape(value: str) -> str:
    """Escape data for a GitHub Actions workflow-command message."""
    return (
        value.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")
    )


def format_github(findings: List[Finding], prefix: str = "") -> str:
    """Render unsuppressed findings as ``::error``/``::warning``
    workflow commands.  ``prefix`` rebases the lint-relative paths onto
    repo-relative ones (e.g. ``src/repro/``) so the annotations land on
    the right files in the PR view."""
    lines = []
    for f in sorted(findings, key=lambda f: (f.path, f.line, f.rule)):
        if f.suppressed:
            continue
        level = "warning" if f.severity == "warning" else "error"
        lines.append(
            f"::{level} file={prefix}{f.path},line={f.line},"
            f"title=lint {f.rule}::{_gh_escape(f.message)}"
        )
    return "\n".join(lines)


def summarize(findings: List[Finding]) -> Dict[str, int]:
    """Counts by disposition, for the one-line lint summary."""
    out = {"errors": 0, "warnings": 0, "suppressed": 0}
    for f in findings:
        if f.suppressed:
            out["suppressed"] += 1
        elif f.severity == "warning":
            out["warnings"] += 1
        else:
            out["errors"] += 1
    return out
