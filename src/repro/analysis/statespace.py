"""Controlled-schedule cluster for the small-scope model checker.

:mod:`repro.analysis.explore` needs to run the *real* controlet,
coordinator, DLM, shared-log and datalet code while owning every source
of nondeterminism.  This module provides the substrate:

* :class:`CheckerCluster` — a :class:`~repro.net.simnet.SimCluster`
  whose :meth:`route` has two modes.  During **boot** messages deliver
  immediately (zero latency, FIFO) so the cluster reaches its steady
  state deterministically.  In **controlled** mode every cross-host
  message parks in :attr:`CheckerCluster.pending` — a visible choice
  point — while intra-host traffic (the paper's colocated
  controlet/datalet pair) short-circuits synchronously, which keeps
  local engine calls out of the interleaving space.
* :class:`CheckerClient` — a deterministic scripted client actor that
  issues a fixed op list sequentially, retries on timeout/redirect/
  retired, and records every invocation into a
  :class:`~repro.chaos.history.HistoryRecorder` for the PR-1 oracles.
* :class:`CheckerRun` — one rooted execution: boot, then a sequence of
  *transitions* (deliver pending message #i / advance virtual time by
  one kernel event / crash a data host / restart a crashed host through
  the real ``Deployment.recover_host`` WAL replay), each enumerated
  deterministically so a run is replayable from its decision indices
  alone.
* :func:`CheckerRun.fingerprint` — the state abstraction: canonical
  digest over every actor's :meth:`~repro.net.actor.Actor.snapshot_state`,
  the in-flight message multiset (content-based, never msg_ids — the
  global id counter diverges across replayed branches), armed-timer
  labels with deadline offsets, host liveness and the remaining fault
  budget.  Periodic timers show up as relative deadlines, so an idle
  cluster cycles back to a seen fingerprint and exploration closes.
  With durable scenarios the digest also folds every host's
  :class:`~repro.sim.durable.DurableStore` — per-file content and fsync
  watermark — plus the restart budget and recovery provenance: two
  interleavings that differ only in what survived on disk must never
  merge, because their recoveries differ.

Channel abstraction: identical in-flight non-reply messages coalesce
(at most one copy of each (src, dst, type, payload) is pending at a
time).  Without this, an undelivered heartbeat stream would grow the
in-flight multiset forever and no fixpoint would exist.  Coalescing is
equivalent to the channel dropping a duplicate — a legal behaviour of
the lossy networks these protocols already tolerate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.chaos.history import HistoryRecorder
from repro.chaos.oracle import RecoveryRecord
from repro.core.config import ControlConfig
from repro.core.ms_sc import MSStrongControlet
from repro.core.types import Consistency, Topology
from repro.errors import BespoError
from repro.harness.deploy import Deployment, DeploymentSpec
from repro.net.actor import Actor
from repro.net.message import Message
from repro.net.sanitize import canonical_digest
from repro.net.simnet import SimCluster

__all__ = [
    "CheckScenario",
    "CheckerClient",
    "CheckerCluster",
    "CheckerRun",
    "EarlyAckMSStrongControlet",
    "EnabledEvent",
    "INJECTIONS",
    "PartialBatchAckMSStrongControlet",
    "UnsyncedAckMSStrongControlet",
    "parse_combo",
]

_COMBOS = {
    "ms-sc": (Topology.MS, Consistency.STRONG),
    "ms-ec": (Topology.MS, Consistency.EVENTUAL),
    "aa-sc": (Topology.AA, Consistency.STRONG),
    "aa-ec": (Topology.AA, Consistency.EVENTUAL),
}


def parse_combo(name: str) -> Tuple[Topology, Consistency]:
    try:
        return _COMBOS[name]
    except KeyError:
        raise BespoError(
            f"unknown combo {name!r} (expected one of {sorted(_COMBOS)})"
        ) from None


# ---------------------------------------------------------------------------
# seeded defects (for validating that the checker actually finds bugs)
# ---------------------------------------------------------------------------
class EarlyAckMSStrongControlet(MSStrongControlet):
    """Known-bad build: the chain head acknowledges the client right
    after its *local* apply, before the tail has committed.

    The write then races the strong read: a ``get`` delivered to the
    tail before the in-flight ``chain_put`` observes the pre-write value
    of a key the client already saw acked — a linearizability violation
    the checker must find (and a head crash loses the acked write
    entirely).  Inject via ``CheckScenario(inject="early-ack")``.
    """

    def _forward_down(self, req) -> None:
        if not self.is_head:
            super()._forward_down(req)
            return
        try:
            succ = self.shard.successor(self.node_id)
        except Exception:  # noqa: BLE001 - repaired out of our own view
            succ = None
        req.ack()  # BUG: ack precedes downstream commit
        if succ is not None:
            self.send(
                succ.controlet,
                "chain_put",
                {"op": req.op, "key": req.msg.payload["key"],
                 "val": req.msg.payload.get("val")},
            )


class UnsyncedAckMSStrongControlet(MSStrongControlet):
    """Known-bad build: every chain member *defers* its local durable
    apply onto a timer and continues down the chain (acking, at the
    tail) immediately — the ack-before-durable bug class the commit
    point analyzer exists for.

    Under the colocated controlet/datalet pairing the apply would
    otherwise land synchronously within the same transition, so the
    timer is what opens the cross-step window: crash the host after the
    ack but before its timer fires and the acked write was never
    logged, so WAL replay cannot bring it back.  With ``ms-sc``'s
    ``ack_durable`` contract that is a durability-floor violation the
    recovery-aware checker must find (and statically, the tail ack has
    no durable effect ahead of it — only a deferred one).  Inject via
    ``CheckScenario(inject="unsynced-ack")``.
    """

    def _apply_and_forward(self, req) -> None:
        payload = {"key": req.msg.payload["key"]}
        if req.op == "put":
            payload["val"] = req.msg.payload["val"]
        # BUG: the durable apply rides a timer; the ack path below does
        # not wait for it, so a crash in between loses an acked write.
        self.set_timer(0.01, lambda: self.datalet_call(req.op, payload))
        self._forward_down(req)

    def datalet_call(self, type, payload, callback=None, datalet=None):
        if type != "apply_batch":
            super().datalet_call(type, payload, callback=callback,
                                 datalet=datalet)
            return
        # BUG: the coalesced frame's durable apply rides a timer while a
        # forged success resumes the pump immediately, so every member
        # continues down the chain (and the tail acks) before anything
        # was logged here — the batched shape of the same defect.
        issue = super().datalet_call
        self.set_timer(0.01, lambda: issue(type, payload))
        if callback is not None:
            ops = payload["ops"]
            forged = Message(type="ok", payload={
                "applied": len(ops), "results": ["ok"] * len(ops),
            })
            callback(forged, None)


class PartialBatchAckMSStrongControlet(MSStrongControlet):
    """Known-bad build: the head acknowledges a batch member as soon as
    its *local* apply lands, detaching the ack from the coalesced
    ``chain_put_batch`` frame that is supposed to carry it down the
    chain — the batching bug class where an ack outruns its own frame.

    The entry still rides the link pump, but the completion callback is
    severed (frame errors are swallowed too), so the client sees "ok"
    while the suffix may not have committed: a strong read at the tail
    returns the pre-write value of an acked key, and a head crash before
    the frame drains loses the acked write.  Both the chaos/linearizability
    oracle (dynamically) and the commit-point analyzer (statically: the
    ack does not await the ``enqueue_down`` replication effect) must
    flag it.  Inject via ``CheckScenario(inject="partial-batch-ack")``.
    """

    def _forward_down(self, req) -> None:
        if not self.is_head:
            super()._forward_down(req)
            return
        entry: Dict[str, Any] = {"op": req.op, "key": req.msg.payload["key"],
                                 "val": req.msg.payload.get("val")}
        if req.rid is not None:
            entry["rid"] = req.rid
        req.ack()  # BUG: batch member acked before its frame commits
        self._enqueue_down(entry, lambda err: None)


INJECTIONS: Dict[str, type] = {
    "early-ack": EarlyAckMSStrongControlet,
    "unsynced-ack": UnsyncedAckMSStrongControlet,
    "partial-batch-ack": PartialBatchAckMSStrongControlet,
}


# ---------------------------------------------------------------------------
# scenario
# ---------------------------------------------------------------------------
@dataclass
class CheckScenario:
    """Scope bounds for one exhaustive exploration."""

    combo: str = "ms-sc"
    nodes: int = 2          # replicas in the (single) shard
    clients: int = 1
    ops_per_client: int = 3
    crashes: int = 1        # fault budget (host crashes)
    #: crash-*restart* budget: a crashed data host may be brought back
    #: through the real ``Deployment.recover_host`` (WAL replay +
    #: rejoin) as an explored transition.  Requires ``durable``.
    restarts: int = 0
    #: run with a durable WAL under every datalet (crash damage then
    #: follows ``durable_loss``; recovery replays the synced prefix).
    durable: bool = False
    #: fsync cadence of those WALs (1 = every append, the synced-acks
    #: regime; >1 = group commit, where MS+EC legally loses acked tails).
    wal_sync_every: int = 1
    #: crash damage policy for unsynced bytes.  Default "all" (drop the
    #: whole unsynced suffix): the deterministic worst case, so
    #: counterexamples never hinge on torn-tail RNG draws.
    durable_loss: str = "all"
    seed: int = 0
    boot_time: float = 0.5
    op_timeout: float = 3.0
    max_attempts: int = 4
    #: scope bound on "advance virtual time" transitions per path.  Like
    #: the crash budget, this is part of the scenario's *scope*, not a
    #: truncation: timer-driven behaviour (timeouts, failure detection,
    #: EC batch flushes) is explored up to this many kernel events deep.
    #: Without it, adversarial schedules that park a heartbeat while
    #: time advances reach failure-detection subtrees from every state
    #: and no small scenario closes.
    advance_budget: int = 40
    #: maximal-progress semantics: time may only advance once no
    #: delivery is pending ("the network is prompt relative to every
    #: timeout").  Message *reorderings* are still exhaustive, and
    #: permanent message loss is covered by crash faults; what this
    #: scopes out is transient-delay races (a heartbeat parked past the
    #: failure timeout, a reply racing its own timeout).  Turning it off
    #: interleaves every timer fire with every pending delivery — only
    #: tractable for the smallest scenarios.
    eager_network: bool = True
    #: named seeded defect from :data:`INJECTIONS` (None = real build).
    inject: Optional[str] = None
    coalesce_inflight: bool = True

    @property
    def topology(self) -> Topology:
        return parse_combo(self.combo)[0]

    @property
    def consistency(self) -> Consistency:
        return parse_combo(self.combo)[1]

    def label(self) -> str:
        tag = f"+{self.inject}" if self.inject else ""
        extra = ""
        if self.durable:
            extra = (
                f" restarts={self.restarts}"
                f" wal_sync_every={self.wal_sync_every}"
            )
        return (
            f"{self.combo}{tag} nodes={self.nodes} clients={self.clients} "
            f"ops={self.ops_per_client} crashes={self.crashes}{extra} "
            f"seed={self.seed}"
        )

    def ops_for(self, client_index: int) -> List[Tuple[str, str, Optional[str]]]:
        """Deterministic per-client script: writes and reads alternate on
        one shared key, so clients actually contend."""
        ops: List[Tuple[str, str, Optional[str]]] = []
        for j in range(self.ops_per_client):
            if j % 2 == 0:
                ops.append(("put", "x", f"c{client_index}.v{j}"))
            else:
                ops.append(("get", "x", None))
        return ops

    def control_config(self) -> ControlConfig:
        # Shrink failure detection so crash/failover subtrees stay
        # shallow, and widen the EC batching/fetch ticks: at the default
        # 10ms every advance-transition chain would wade through dozens
        # of no-op flush ticks per protocol step.
        return ControlConfig(
            failure_timeout=2.0,
            ec_batch_interval=0.25,
            log_fetch_interval=0.25,
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "combo": self.combo,
            "nodes": self.nodes,
            "clients": self.clients,
            "ops_per_client": self.ops_per_client,
            "crashes": self.crashes,
            "restarts": self.restarts,
            "durable": self.durable,
            "wal_sync_every": self.wal_sync_every,
            "durable_loss": self.durable_loss,
            "seed": self.seed,
            "boot_time": self.boot_time,
            "op_timeout": self.op_timeout,
            "max_attempts": self.max_attempts,
            "advance_budget": self.advance_budget,
            "eager_network": self.eager_network,
            "inject": self.inject,
            "coalesce_inflight": self.coalesce_inflight,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "CheckScenario":
        return cls(**{k: d[k] for k in cls().to_dict() if k in d})


# ---------------------------------------------------------------------------
# controlled transport
# ---------------------------------------------------------------------------
class CheckerCluster(SimCluster):
    """SimCluster whose cross-host deliveries are explorer choice points."""

    def __init__(self, *args, coalesce: bool = True, **kwargs):
        super().__init__(*args, **kwargs)
        self.controlled = False
        #: cross-host messages awaiting an explorer decision, send order.
        self.pending: List[Message] = []
        self.coalesce = coalesce
        self.dropped_dead = 0
        self.coalesced = 0
        self.local_deliveries = 0

    @staticmethod
    def signature(msg: Message) -> Tuple[str, str, str, str, bool]:
        """Content identity of an in-flight message (no msg_ids: the
        global id counter diverges across replayed branches)."""
        sig = getattr(msg, "_chk_sig", None)
        if sig is None:
            sig = (
                msg.src,
                msg.dst,
                msg.type,
                canonical_digest(msg.payload),
                bool(msg.reply_to),
            )
            msg._chk_sig = sig  # type: ignore[attr-defined]
        return sig

    def route(self, msg: Message) -> None:
        dst_actor = self._actors.get(msg.dst)
        if dst_actor is None:
            return  # unknown destination == dead peer: silent drop
        dst_host = self._actor_host[msg.dst]
        if not dst_actor.alive or self.network.is_dead(dst_host):
            self.dropped_dead += 1
            return
        if self.sanitizer is not None:
            self.sanitizer.on_send(msg)
        if not self.controlled:
            # boot phase: immediate FIFO delivery, zero latency
            self.sim.call_soon(self._deliver_now, msg)
            return
        src_host = self._actor_host.get(msg.src)
        if src_host is not None and src_host == dst_host:
            # colocated pair: a local engine call, not an interleaving
            self.local_deliveries += 1
            self._deliver_now(msg)
            return
        if self.coalesce and not msg.reply_to:
            sig = self.signature(msg)
            for queued in self.pending:
                if not queued.reply_to and self.signature(queued) == sig:
                    self.coalesced += 1
                    return
        self.pending.append(msg)

    def _deliver_now(self, msg: Message) -> None:
        dst_actor = self._actors.get(msg.dst)
        if (
            dst_actor is None
            or not dst_actor.alive
            or self.network.is_dead(self._actor_host[msg.dst])
        ):
            self.dropped_dead += 1
            return
        if self.sanitizer is not None:
            self.sanitizer.on_deliver(msg)
        dst_actor.deliver(msg)

    def deliver_pending(self, index: int) -> Message:
        msg = self.pending.pop(index)
        self._deliver_now(msg)
        return msg

    def crash_host(self, host: str) -> None:
        """Crash transition: kill the host, then drop queued messages
        whose destination died with it (they could never be delivered)."""
        self.kill_host(host)
        kept: List[Message] = []
        for msg in self.pending:
            actor = self._actors.get(msg.dst)
            if (
                actor is None
                or not actor.alive
                or self.network.is_dead(self._actor_host[msg.dst])
            ):
                self.dropped_dead += 1
                continue
            kept.append(msg)
        self.pending = kept


# ---------------------------------------------------------------------------
# scripted client
# ---------------------------------------------------------------------------
class CheckerClient(Actor):
    """Deterministic sequential client for checker scenarios.

    Routing reads the coordinator's **authoritative** map directly — a
    documented shortcut: the real client's map-refresh protocol is
    itself message-driven, and modeling it would square the state space
    for no extra protocol coverage (stale-routing behaviour is still
    exercised through ``redirect``/``retired`` responses, which the
    controlets emit regardless of how the client found them).
    """

    def __init__(
        self,
        node_id: str,
        deployment: Deployment,
        ops: List[Tuple[str, str, Optional[str]]],
        recorder: HistoryRecorder,
        op_timeout: float = 3.0,
        max_attempts: int = 4,
        pick: int = 0,
    ):
        super().__init__(node_id)
        self.dep = deployment
        self.ops = list(ops)
        self.recorder = recorder
        self.op_timeout = op_timeout
        self.max_attempts = max_attempts
        self.pick = pick  # spreads AA clients across replicas
        self.cursor = 0
        self.attempts = 0
        self._redirect: Optional[str] = None
        self._rec = None
        self.results: List[Tuple] = []

    # -- script driver --------------------------------------------------
    def kick(self) -> None:
        self._next_op()

    @property
    def done(self) -> bool:
        return self.cursor >= len(self.ops)

    def _next_op(self) -> None:
        if self.done:
            return
        op, key, val = self.ops[self.cursor]
        self._rec = self.recorder.invoke(self.node_id, op, key, val)
        self.attempts = 0
        self._attempt()

    def _finish(self, status: str, result: Optional[str] = None,
                error: Optional[str] = None) -> None:
        self.recorder.complete(
            self._rec, status, value=result, error=error, attempts=self.attempts
        )
        op, key, val = self.ops[self.cursor]
        self.results.append((op, key, val, status, result))
        self.cursor += 1
        self._rec = None
        self._next_op()

    def _target(self, op: str) -> Optional[str]:
        if self._redirect is not None:
            target, self._redirect = self._redirect, None
            return target
        cmap = self.dep.coordinator.map
        sid = sorted(cmap.shards)[0]
        shard = cmap.shards[sid]
        replicas = shard.ordered()
        if not replicas:
            return None
        if shard.topology is Topology.AA:
            return replicas[self.pick % len(replicas)].controlet
        if op in ("put", "del"):
            return replicas[0].controlet  # chain head / master
        return replicas[-1].controlet  # tail (strong reads; EC: any)

    def _attempt(self) -> None:
        op, key, val = self.ops[self.cursor]
        self.attempts += 1
        if self.attempts > self.max_attempts:
            self._finish("fail", error="retries exhausted")
            return
        target = self._target(op)
        if target is None:
            self._finish("fail", error="no replicas")
            return
        payload: Dict[str, Any] = {"key": key}
        if op == "put":
            payload["val"] = val
        self.call(target, op, payload, callback=self._on_resp,
                  timeout=self.op_timeout)

    def _on_resp(self, resp: Optional[Message], err) -> None:
        if err is not None:  # timeout: immediate bounded retry
            self._attempt()
            return
        if resp.type == "error":
            error = resp.payload.get("error", "")
            if error == "not_found":
                self._finish("not_found")
                return
            if error == "redirect":
                self._redirect = resp.payload.get("to")
                self._attempt()
                return
            self._attempt()  # retired / transient: bounded retry
            return
        op = self.ops[self.cursor][0]
        self._finish("ok", result=resp.payload.get("val") if op == "get" else None)

    # -- introspection ---------------------------------------------------
    def snapshot_state(self) -> Dict[str, Any]:
        s = super().snapshot_state()
        s.update({
            "cursor": self.cursor,
            "attempts": self.attempts,
            "redirect": self._redirect,
            # completed-op observations ARE history: two states that
            # differ only in what a client already saw must not merge
            "results": [list(r) for r in self.results],
        })
        return s


# ---------------------------------------------------------------------------
# one rooted execution
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class EnabledEvent:
    """One transition the explorer may take from the current state."""

    kind: str          # "deliver" | "advance" | "crash" | "restart"
    index: int         # pending-list index for deliver; -1 otherwise
    key: Tuple         # canonical identity (stable across replays)
    describe: str


class CheckerRun:
    """Boot a scenario, then drive it transition by transition."""

    def __init__(self, scenario: CheckScenario):
        self.scenario = scenario
        inject_cls = INJECTIONS.get(scenario.inject) if scenario.inject else None
        if scenario.inject and inject_cls is None:
            raise BespoError(
                f"unknown injection {scenario.inject!r} (have {sorted(INJECTIONS)})"
            )
        if scenario.restarts and not scenario.durable:
            raise BespoError(
                "restart transitions need durable=True: recovery replays "
                "the WAL, and without one there is nothing to recover from"
            )
        spec = DeploymentSpec(
            shards=1,
            replicas=scenario.nodes,
            topology=scenario.topology,
            consistency=scenario.consistency,
            standbys=1,
            seed=scenario.seed,
            control=scenario.control_config(),
            controlet_class=inject_cls,
            durable=scenario.durable,
            wal_sync_every=scenario.wal_sync_every,
            durable_loss=scenario.durable_loss,
        )
        self.cluster = CheckerCluster(
            seed=scenario.seed, coalesce=scenario.coalesce_inflight
        )
        self.dep = Deployment(spec, cluster=self.cluster)
        self.sim = self.cluster.sim
        self.recorder = HistoryRecorder(self.sim)
        self.clients: List[CheckerClient] = []
        for ci in range(scenario.clients):
            name = f"chk.client{ci}"
            self.cluster.add_host(name, cpus=1, free=True)
            client = CheckerClient(
                name,
                self.dep,
                scenario.ops_for(ci),
                self.recorder,
                op_timeout=scenario.op_timeout,
                max_attempts=scenario.max_attempts,
                pick=ci,
            )
            self.cluster.add_actor(client, host=name)
            self.clients.append(client)
        self.crash_budget = scenario.crashes
        self.restart_budget = scenario.restarts
        self.advances_left = scenario.advance_budget
        #: provenance of every recover_host run on this path, in
        #: transition order — the recovery oracle's input.
        self.recoveries: List[RecoveryRecord] = []
        self.steps = 0

    # -- lifecycle -------------------------------------------------------
    def boot(self) -> None:
        self.dep.start()
        self.sim.run_until(self.scenario.boot_time)
        self.cluster.controlled = True
        for client in self.clients:
            client.kick()

    def clients_done(self) -> bool:
        return all(c.done for c in self.clients)

    def done_and_quiet(self) -> bool:
        return self.clients_done() and not self.cluster.pending

    # -- transitions -----------------------------------------------------
    def data_hosts(self) -> List[str]:
        hosts = set()
        for sid in sorted(self.dep.map.shards):
            for replica in self.dep.map.shards[sid].ordered():
                hosts.add(replica.host)
        return sorted(h for h in hosts if self.cluster.is_host_alive(h))

    def crashed_data_hosts(self) -> List[str]:
        """Crashed hosts that still own a shard slot — restart targets.
        Keyed off the deployment's host→replica pairing rather than the
        current map, so a host repaired *out* of the shard (standby
        promotion) can still power back on and attempt a rejoin."""
        return sorted(
            h for h in self.dep._host_pairs
            if not self.cluster.is_host_alive(h)
        )

    def enabled(self) -> List[EnabledEvent]:
        events: List[EnabledEvent] = []
        occurrences: Dict[Tuple, int] = {}
        for i, msg in enumerate(self.cluster.pending):
            sig = CheckerCluster.signature(msg)
            occ = occurrences.get(sig, 0)
            occurrences[sig] = occ + 1
            events.append(EnabledEvent(
                kind="deliver",
                index=i,
                key=("deliver",) + sig + (occ,),
                describe=f"deliver {msg.type} {msg.src}->{msg.dst}",
            ))
        # advance is in scope only while ops are in flight (completed
        # histories are judged as-is; EC convergence free-runs timers in
        # the quiesce suffix), while the advance budget lasts, and —
        # under maximal progress — only once the network is drained
        if (
            self.advances_left > 0
            and not self.clients_done()
            and not (self.scenario.eager_network and self.cluster.pending)
        ):
            armed = self.sim.armed_events()
            if armed:
                when, label = armed[0]
                events.append(EnabledEvent(
                    kind="advance",
                    index=-1,
                    key=("advance", label, round(when, 9)),
                    describe=f"advance to t={when:.3f} ({label})",
                ))
        # crashes only while ops are in flight: an idle-cluster crash
        # cannot invalidate an already-recorded history (documented
        # reduction; EC convergence is checked via the quiesce suffix)
        if self.crash_budget > 0 and not self.clients_done():
            for host in self.data_hosts():
                events.append(EnabledEvent(
                    kind="crash",
                    index=-1,
                    key=("crash", host),
                    describe=f"crash {host}",
                ))
        # restarts stay enabled *after* the history completes (unlike
        # crashes): a post-history recovery still changes the final
        # durable state the recovery oracle judges — lost-everywhere vs
        # caught-up-from-a-live-peer are different verdicts.
        if self.restart_budget > 0:
            for host in self.crashed_data_hosts():
                events.append(EnabledEvent(
                    kind="restart",
                    index=-1,
                    key=("restart", host),
                    describe=f"restart {host}",
                ))
        return events

    def execute(self, event: EnabledEvent) -> None:
        self.steps += 1
        if event.kind == "deliver":
            self.cluster.deliver_pending(event.index)
        elif event.kind == "advance":
            self.advances_left -= 1
            self.sim.step_one()
        elif event.kind == "crash":
            self.crash_budget -= 1
            self.cluster.crash_host(event.key[1])
        elif event.kind == "restart":
            self.restart_budget -= 1
            record = self.dep.recover_host(event.key[1])
            if record is not None:
                self.recoveries.append(record)
            # Drain the zero-time respawn cascade (on_restart hooks,
            # actor start callbacks scheduled via call_soon) atomically
            # with the transition; messages it sends park in pending as
            # usual, and later-deadline timers stay armed.
            self.sim.run_until(self.sim.now)
        else:  # pragma: no cover - enum guarded above
            raise BespoError(f"unknown transition kind {event.kind!r}")

    def apply_choice(self, choice: int) -> EnabledEvent:
        events = self.enabled()
        if not 0 <= choice < len(events):
            raise BespoError(
                f"replay divergence: choice {choice} but only "
                f"{len(events)} events enabled at step {self.steps}"
            )
        event = events[choice]
        self.execute(event)
        return event

    # -- state abstraction ------------------------------------------------
    def fingerprint(self) -> str:
        actors: Dict[str, Any] = {}
        dead: List[str] = []
        for nid in sorted(self.cluster._actors):
            actor = self.cluster._actors[nid]
            if actor.alive:
                actors[nid] = actor.snapshot_state()
            else:
                dead.append(nid)
        now = self.sim.now
        state = {
            "actors": actors,
            "dead": dead,
            "down_hosts": sorted(
                h for h in self.cluster.hosts()
                if not self.cluster.is_host_alive(h)
            ),
            "pending": sorted(
                CheckerCluster.signature(m) for m in self.cluster.pending
            ),
            "timers": [
                (label, round(when - now, 6))
                for when, label in self.sim.armed_events()
            ],
            "crash_budget": self.crash_budget,
            # remaining budgets are part of the state: a state reached
            # with more budget left has strictly more futures, so it must
            # not be pruned against a lower-budget visit
            "advances_left": self.advances_left,
            "restarts_left": self.restart_budget,
            # what survived on disk: per host, each durable file's full
            # content plus its fsync watermark.  Interleavings that agree
            # on actor state but differ in synced prefixes have different
            # recoveries ahead of them and must not merge.
            "durable": {
                host: {
                    name: (
                        self.cluster._durable[host].file(name).read().hex(),
                        self.cluster._durable[host].file(name).synced_size,
                    )
                    for name in self.cluster._durable[host].files()
                }
                for host in sorted(self.cluster._durable)
            },
            # recovery provenance already accrued on this path: the
            # per-recovery oracle checks (floor, validity, resurrection)
            # read it at the leaf, so it is part of the judged state
            "recoveries": [
                (
                    r.host,
                    r.durable_seq_at_crash,
                    r.replayed_seq,
                    sorted(r.recovered.items()),
                )
                for r in self.recoveries
            ],
        }
        return canonical_digest(state)

    # -- invariants --------------------------------------------------------
    def invariant_violation(self) -> Optional[str]:
        """Structural checks valid in every state."""
        for nid in sorted(self.cluster._actors):
            actor = self.cluster._actors[nid]
            if not actor.alive:
                continue
            for msg_id, has_timer, armed in actor.pending_introspect():
                if has_timer and not armed:
                    return (
                        f"orphaned pending call on {nid} (msg_id {msg_id}): "
                        "timeout timer cancelled but continuation still "
                        "registered — it can never resolve"
                    )
        return None

    def replica_dumps(self) -> Dict[str, Dict[str, Dict[str, str]]]:
        dumps: Dict[str, Dict[str, Dict[str, str]]] = {}
        for sid in sorted(self.dep.map.shards):
            shard_dump: Dict[str, Dict[str, str]] = {}
            for replica in self.dep.map.shards[sid].ordered():
                actor = self.cluster._actors.get(replica.datalet)
                if actor is None or not actor.alive:
                    continue
                shard_dump[replica.datalet] = dict(actor.engine.snapshot())
            dumps[sid] = shard_dump
        return dumps

    def quiesce(self, duration: float) -> None:
        """Deterministic no-choice suffix: release every parked message
        FIFO and let timers run for ``duration`` sim-seconds — the model
        checker's version of the chaos harness's post-fault quiesce
        window, used before EC convergence checks."""
        self.cluster.controlled = False
        parked, self.cluster.pending = self.cluster.pending, []
        for msg in parked:
            self.sim.call_soon(self.cluster._deliver_now, msg)
        self.sim.run_until(self.sim.now + duration)
