"""Static commit-point analysis: acks versus durable effects.

Every topology×consistency combo places its *commit point* — the moment
a write is durable relative to the moment the client sees an ack —
somewhere else.  This pass walks the real controlet/datalet source and,
per write-path handler chain, extracts the ordered sequence of

* **ack** effects — client-visible completions (``req.ack()``,
  ``req.finish(type)`` with a non-``"error"`` type, ``self.respond(msg,
  "<const non-error>")``),
* **durable** effects — WAL appends/syncs/snapshot installs and
  mutating engine calls (``self.datalet_call(op)`` for a non-read op,
  ``self.wal.append/sync/install_snapshot``, ``send(self.datalet,
  "apply_batch", ...)``),
* **repl** effects — replication fan-out sends/calls
  (:data:`REPL_TYPES`; ``log_append`` is *both* repl and durable — the
  shared log is an ordered durable medium).

and flags two rules:

``ack-before-durable``
    Some path acks the client with **no** durable effect before it: no
    non-deferred durable effect precedes the ack, the ack does not sit
    inside an awaited durable/replication completion callback, and it
    is not the settle-join of an armed fan-out.  A crash immediately
    after such an ack loses an acknowledged write.
``ack-before-replication``
    Some path issues replication effects the ack does not await
    (fire-and-forget fan-out after — or concurrent with — the client
    ack).  Legal by design exactly where a combo's contract says so
    (MS+EC master-acks-then-propagates), hence the waiver table below.

An awaited replication call counts as durability coverage
*compositionally*: the target's handler for that message type is itself
analyzed, so "I acked only after the peer confirmed ``chain_put``"
inherits the peer's own ack-before-durable obligation.

Suppression is declarative and auditable, two mechanisms:

* the linter's line pragma ``# lint: allow[ack-before-durable]`` on (or
  one line above) the ack — used for the two buffer-catchup acks that
  are safe for protocol reasons the AST cannot see;
* the :data:`CONTRACTS` waiver table — the machine-readable durability
  contract per combo.  Each :class:`Waiver` names the controlet class,
  the rule, and the configuration that makes the pattern legal (e.g.
  MS+EC under ``wal_sync_every > 1`` group commit).

:func:`ack_durable_for` is the runtime face of the same table: given a
combo and ``wal_sync_every`` it answers "must a settled ack survive a
crash-restart?", replacing the chaos runner's inline heuristic and
feeding the model checker's recovery oracle.

The tracer is a path-forking abstract interpreter over the handler ASTs
(closures inlined at their registration sites with awaited-context
tokens, same-class helper calls inlined with a cycle guard, ``if``
forks both arms except the ``self.wal is not None`` durability guard,
loops traced once, ``set_timer`` callbacks and ``arm(..., then=...)``
joins deferred to the end of the handler turn).  It is deliberately
conservative: dynamic engine op names count as durable *writes*, and
dynamic ``finish`` types count as acks (the completion convention
forwards a successful response).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.lint import DEFAULT_ALLOWLIST, _allowed_by_list, _parse_pragmas
from repro.analysis.summaries import DATALET_READ_OPS

__all__ = [
    "REPL_TYPES",
    "WRITE_CHAIN_TYPES",
    "Waiver",
    "CommitContract",
    "CONTRACTS",
    "contract_for",
    "ack_durable_for",
    "analyze_sources",
    "analyze_tree",
]

#: message types that carry a client write through the system — the
#: handler entry points this pass traces.
WRITE_CHAIN_TYPES = {"put", "del", "chain_put", "chain_put_batch",
                     "peer_apply", "replicate", "apply_batch"}

#: message types whose send/call constitutes replication fan-out.
#: ``log_append``/``log_append_batch`` are also durable: the shared log
#: actor is an ordered durable medium, not a crashable data host in the
#: fault model.
REPL_TYPES = {"chain_put", "chain_put_batch", "replicate", "peer_apply",
              "log_append", "log_append_batch"}

#: classes (by name-based ancestry) the pass analyzes; anything else —
#: e.g. the baseline ``P2PNode`` — is out of the durability contract.
_ANALYZED_BASES = ("Controlet", "DataletActor")

_PATH_CAP = 192


# ----------------------------------------------------------------------
# The per-combo durability contract
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Waiver:
    """One declared-legal analyzer finding: ``cls``'s ``rule`` pattern
    is part of the combo's contract for the ``condition`` stated."""

    cls: str
    rule: str
    condition: str
    reason: str


@dataclass(frozen=True)
class CommitContract:
    """Machine-readable commit point of one topology×consistency combo."""

    combo: str
    controlet: str
    #: where on the write path the client ack is issued.
    ack_point: str
    #: is every replication effect awaited before the ack?
    replication_awaited: bool
    #: condition under which a settled ack survives a crash-restart of
    #: any single data host ("always" or a config predicate).
    ack_durable_when: str
    waivers: Tuple[Waiver, ...] = ()


CONTRACTS: Tuple[CommitContract, ...] = (
    CommitContract(
        combo="ms-sc",
        controlet="MSStrongControlet",
        ack_point="tail of the chain, after every replica (head..tail) "
                  "applied-and-logged the write",
        replication_awaited=True,
        ack_durable_when="always (any single-host crash is covered by the "
                         "surviving chain replicas, even under group commit)",
    ),
    CommitContract(
        combo="ms-ec",
        controlet="MSEventualControlet",
        ack_point="master, after its local apply+WAL append; slave "
                  "propagation is asynchronous",
        replication_awaited=False,
        ack_durable_when="wal_sync_every == 1 (the master's fsync is the "
                         "only durable copy at ack time; group commit may "
                         "lose the unsynced tail)",
        waivers=(
            Waiver(
                cls="MSEventualControlet",
                rule="ack-before-replication",
                condition="combo ms-ec, any wal_sync_every",
                reason="MS+EC's commit point *is* the master's local "
                       "apply: replicate batches flush to slaves after "
                       "the ack by design (§IV availability/throughput "
                       "trade).  Durability of the ack itself is the "
                       "master WAL's job — guaranteed iff "
                       "wal_sync_every == 1, see ack_durable_for().",
            ),
        ),
    ),
    CommitContract(
        combo="aa-sc",
        controlet="AAStrongControlet",
        ack_point="initiating replica, at the settle-join after every "
                  "replica (itself included) confirmed peer_apply under "
                  "the DLM write lock",
        replication_awaited=True,
        ack_durable_when="always (full fan-out is awaited; any surviving "
                         "replica re-seeds a recovering host)",
    ),
    CommitContract(
        combo="aa-ec",
        controlet="AAEventualControlet",
        ack_point="serving replica, after the shared-log append was "
                  "confirmed and the local apply completed",
        replication_awaited=True,
        ack_durable_when="always (the shared log orders and retains every "
                         "acked write; replay re-delivers after a crash)",
    ),
    CommitContract(
        combo="hybrid",
        controlet="AAMSHybridControlet",
        ack_point="as aa-ec (the hybrid write path is the shared-log "
                  "append; MS-style slave fan-out rides the log cursor)",
        replication_awaited=True,
        ack_durable_when="always (shared-log retention, as aa-ec)",
    ),
)

_CONTRACTS_BY_COMBO = {c.combo: c for c in CONTRACTS}
ALL_WAIVERS: Tuple[Waiver, ...] = tuple(
    w for c in CONTRACTS for w in c.waivers
)


def contract_for(combo: str) -> CommitContract:
    try:
        return _CONTRACTS_BY_COMBO[combo]
    except KeyError:
        raise KeyError(f"no commit-point contract for combo {combo!r}")


def ack_durable_for(combo: str, wal_sync_every: int = 1) -> bool:
    """Must a settled (client-acked) write survive a crash-restart of a
    single data host?  The runtime face of :data:`CONTRACTS`, consumed
    by the chaos runner and the recovery-aware model checker."""
    contract = contract_for(combo)
    if contract.ack_durable_when.startswith("always"):
        return True
    # the only conditional contract today: ms-ec group commit
    return wal_sync_every == 1


# ----------------------------------------------------------------------
# class table (with file attribution, unlike summaries._collect_classes)
# ----------------------------------------------------------------------

@dataclass
class _Cls:
    name: str
    bases: List[str]
    methods: Dict[str, ast.AST]
    file: str


def _collect(sources: Iterable[Tuple[str, str]]) -> Dict[str, _Cls]:
    out: Dict[str, _Cls] = {}
    for rel, source in sources:
        tree = ast.parse(source)
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            bases = [
                b.id if isinstance(b, ast.Name) else getattr(b, "attr", "")
                for b in node.bases
            ]
            methods = {
                item.name: item
                for item in node.body
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            out[node.name] = _Cls(node.name, bases, methods, rel)
    return out


def _ancestry(classes: Dict[str, _Cls], cls: str) -> List[str]:
    order: List[str] = []
    seen: Set[str] = set()
    stack = [cls]
    while stack:
        cur = stack.pop(0)
        if cur in seen:
            continue
        seen.add(cur)
        order.append(cur)
        if cur in classes:
            stack.extend(classes[cur].bases)
    return order


def _resolve(classes: Dict[str, _Cls], cls: str, name: str):
    """(funcdef, defining file) along the name-based base chain."""
    for anc in _ancestry(classes, cls):
        c = classes.get(anc)
        if c is not None and name in c.methods:
            return c.methods[name], c.file
    return None, None


# ----------------------------------------------------------------------
# effect-trace tracer
# ----------------------------------------------------------------------

@dataclass
class _Effect:
    kinds: Set[str]            # subset of {"ack", "durable", "repl"}
    eid: int
    file: str
    line: int
    desc: str
    deferred: bool = False
    covered: Set[int] = field(default_factory=set)   # acks: awaited ids
    awaited_durable: bool = False                     # acks: durable cover


@dataclass
class _Callable:
    node: ast.AST              # FunctionDef | Lambda
    env: Dict[str, object]
    file: str


class _PathCtx:
    __slots__ = ("effects", "env", "deferred", "armed")

    def __init__(self):
        self.effects: List[_Effect] = []
        self.env: Dict[str, object] = {}
        # queue of ("call", _Callable) | ("arm-then", _Callable, line, file)
        #          | ("arm-default", line, file)
        self.deferred: List[tuple] = []
        self.armed: Set[int] = set()

    def clone(self) -> "_PathCtx":
        c = _PathCtx()
        c.effects = list(self.effects)
        c.env = dict(self.env)
        c.deferred = list(self.deferred)
        c.armed = set(self.armed)
        return c


@dataclass(frozen=True)
class _Frame:
    cls: str                    # concrete class (virtual dispatch target)
    file: str                   # file of the code being walked
    covered: frozenset          # awaited effect ids (callback nesting)
    awaited_durable: bool       # a durable/repl completion is awaited
    deferred: bool = False      # inside a timer/arm deferred execution


def _contains_settle(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if (isinstance(sub, ast.Call) and isinstance(sub.func, ast.Attribute)
                and sub.func.attr == "settle"):
            return True
    return False


def _const_str(node: Optional[ast.expr]):
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _arg_or_kw(call: ast.Call, pos: int, kw: str) -> Optional[ast.expr]:
    if len(call.args) > pos:
        return call.args[pos]
    for k in call.keywords:
        if k.arg == kw:
            return k.value
    return None


def _is_wal_test(test: ast.expr):
    """``self.wal is not None`` -> "present"; ``self.wal is None`` ->
    "absent"; anything else -> None (fork both arms)."""
    if (isinstance(test, ast.Compare) and len(test.ops) == 1
            and isinstance(test.comparators[0], ast.Constant)
            and test.comparators[0].value is None
            and isinstance(test.left, ast.Attribute)
            and test.left.attr == "wal"
            and isinstance(test.left.value, ast.Name)
            and test.left.value.id == "self"):
        if isinstance(test.ops[0], ast.IsNot):
            return "present"
        if isinstance(test.ops[0], ast.Is):
            return "absent"
    return None


class _Tracer:
    """Path-forking walk of one entry handler on one concrete class."""

    def __init__(self, classes: Dict[str, _Cls], cls: str, entry: str):
        self.classes = classes
        self.cls = cls
        self.entry = entry
        self._eid = 0
        self._inline: Set[Tuple[str, str]] = set()  # (cls, method) guard

    # -- helpers -------------------------------------------------------

    def _next(self) -> int:
        self._eid += 1
        return self._eid

    def _effect(self, ctx, frame, node, kinds, desc) -> _Effect:
        e = _Effect(kinds=set(kinds), eid=self._next(), file=frame.file,
                    line=getattr(node, "lineno", 0), desc=desc,
                    deferred=frame.deferred)
        ctx.effects.append(e)
        return e

    def _ack(self, ctx, frame, node, desc) -> None:
        ctx.effects.append(_Effect(
            kinds={"ack"}, eid=self._next(), file=frame.file,
            line=getattr(node, "lineno", 0), desc=desc,
            deferred=frame.deferred, covered=set(frame.covered),
            awaited_durable=frame.awaited_durable))

    def _resolve_callable(self, node, ctx, frame) -> Optional[_Callable]:
        if isinstance(node, ast.Lambda):
            return _Callable(node, dict(ctx.env), frame.file)
        if isinstance(node, ast.Name):
            val = ctx.env.get(node.id)
            if isinstance(val, _Callable):
                return val
            return None
        if (isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"):
            fn, file = _resolve(self.classes, frame.cls, node.attr)
            if fn is not None:
                return _Callable(fn, {}, file)
        return None

    # -- statement walk ------------------------------------------------

    def _walk_block(self, stmts, ctx, frame):
        outs = [(ctx, "fell")]
        for stmt in stmts:
            nxt = []
            for c, status in outs:
                if status != "fell":
                    nxt.append((c, status))
                    continue
                nxt.extend(self._walk_stmt(stmt, c, frame))
            outs = nxt[:_PATH_CAP]
        return outs

    def _walk_stmt(self, stmt, ctx, frame):
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            ctx.env[stmt.name] = _Callable(stmt, dict(ctx.env), frame.file)
            return [(ctx, "fell")]
        if isinstance(stmt, ast.Expr):
            if isinstance(stmt.value, ast.Call):
                return self._do_call(stmt.value, ctx, frame)
            return [(ctx, "fell")]
        if isinstance(stmt, ast.Assign):
            return self._do_assign(stmt, ctx, frame)
        if isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            tgt = stmt.target
            if isinstance(tgt, ast.Name):
                ctx.env.pop(tgt.id, None)
            return [(ctx, "fell")]
        if isinstance(stmt, ast.Return):
            if isinstance(stmt.value, ast.Call):
                results = self._do_call(stmt.value, ctx, frame)
                return [(c, "return" if st == "fell" else st)
                        for c, st in results]
            return [(ctx, "return")]
        if isinstance(stmt, ast.Raise):
            return [(ctx, "ended")]
        if isinstance(stmt, (ast.Break, ast.Continue)):
            # ending the path keeps skip-iterations (e.g. apply_batch's
            # continue on a malformed op) from reaching post-loop acks
            # without their durable effects — the fall-through fork
            # covers the post-loop code.
            return [(ctx, "ended")]
        if isinstance(stmt, ast.If):
            return self._do_if(stmt, ctx, frame)
        if isinstance(stmt, (ast.For, ast.While)):
            # trace the body exactly once, then fall through
            return self._walk_block(list(stmt.body), ctx, frame)
        if isinstance(stmt, ast.Try):
            return self._do_try(stmt, ctx, frame)
        if isinstance(stmt, ast.With):
            return self._walk_block(list(stmt.body), ctx, frame)
        return [(ctx, "fell")]

    def _do_assign(self, stmt, ctx, frame):
        value = stmt.value
        names = [t.id for t in stmt.targets if isinstance(t, ast.Name)]
        if isinstance(value, ast.Lambda):
            for n in names:
                ctx.env[n] = _Callable(value, dict(ctx.env), frame.file)
            return [(ctx, "fell")]
        if isinstance(value, ast.Name) and value.id in ctx.env:
            for n in names:
                ctx.env[n] = ctx.env[value.id]
            return [(ctx, "fell")]
        for n in names:
            ctx.env.pop(n, None)
        if isinstance(value, ast.Call):
            return self._do_call(value, ctx, frame)
        return [(ctx, "fell")]

    def _do_if(self, stmt, ctx, frame):
        wal = _is_wal_test(stmt.test)
        if wal == "present":
            branches = [list(stmt.body)]
        elif wal == "absent":
            branches = [list(stmt.orelse)]
        else:
            branches = [list(stmt.body), list(stmt.orelse)]
        results = []
        for b in branches:
            results.extend(self._walk_block(b, ctx.clone(), frame))
        return results[:_PATH_CAP]

    def _do_try(self, stmt, ctx, frame):
        # fork 1: body runs to completion; fork N: body ran fully, then
        # a handler ran (keeps durable effects that precede the raise
        # point — modeling the raise at body start would lose them).
        forks = [list(stmt.body)]
        for h in stmt.handlers:
            forks.append(list(stmt.body) + list(h.body))
        results = []
        for f in forks:
            for c, st in self._walk_block(f, ctx.clone(), frame):
                if stmt.finalbody and st == "fell":
                    results.extend(
                        self._walk_block(list(stmt.finalbody), c, frame))
                else:
                    results.append((c, st))
        return results[:_PATH_CAP]

    # -- calls ---------------------------------------------------------

    def _do_call(self, node, ctx, frame):
        f = node.func
        if isinstance(f, ast.Attribute):
            base = f.value
            if isinstance(base, ast.Name) and base.id == "self":
                return self._do_self_call(node, f.attr, ctx, frame)
            if (isinstance(base, ast.Attribute)
                    and isinstance(base.value, ast.Name)
                    and base.value.id == "self"):
                if base.attr == "wal" and f.attr in (
                        "append", "sync", "install_snapshot"):
                    self._effect(ctx, frame, node, {"durable"},
                                 f"self.wal.{f.attr}()")
                return [(ctx, "fell")]
            # request-completion convention on any other receiver
            return self._do_completion(node, f.attr, ctx, frame)
        if isinstance(f, ast.Name):
            target = ctx.env.get(f.id)
            if isinstance(target, _Callable):
                return self._inline_callable(target, node, ctx, frame)
            return [(ctx, "fell")]
        return [(ctx, "fell")]

    def _do_completion(self, node, attr, ctx, frame):
        if attr == "ack":
            self._ack(ctx, frame, node, ".ack()")
        elif attr == "finish":
            t = _const_str(_arg_or_kw(node, 0, "type"))
            # a dynamic type forwards a (usually successful) upstream
            # response — the completion convention makes it an ack
            if t != "error":
                self._ack(ctx, frame, node,
                          f".finish({t!r})" if t else ".finish(<dynamic>)")
        elif attr == "arm":
            then = None
            for k in node.keywords:
                if k.arg == "then":
                    then = k.value
            if then is None and len(node.args) > 1:
                then = node.args[1]
            cb = self._resolve_callable(then, ctx, frame) if then is not None else None
            if cb is not None:
                ctx.deferred.append(("arm-then", cb,
                                     getattr(node, "lineno", 0), frame.file))
            else:
                ctx.deferred.append(("arm-default",
                                     getattr(node, "lineno", 0), frame.file))
        # .fail() / .settle() are not client-success completions
        return [(ctx, "fell")]

    def _do_self_call(self, node, attr, ctx, frame):
        if attr in ("respond",):
            t = _const_str(_arg_or_kw(node, 1, "type"))
            if t is not None and t != "error":
                self._ack(ctx, frame, node, f'self.respond(_, "{t}")')
            return [(ctx, "fell")]
        if attr == "datalet_call":
            op = _const_str(_arg_or_kw(node, 0, "type"))
            effect = None
            if op is None or op not in DATALET_READ_OPS:
                effect = self._effect(
                    ctx, frame, node, {"durable"},
                    f"datalet_call({op or '<dynamic>'})")
            return self._after_emit(node, ctx, frame, effect)
        if attr == "call":
            t = _const_str(_arg_or_kw(node, 1, "type"))
            effect = None
            if t in REPL_TYPES:
                kinds = ({"repl", "durable"}
                         if t in ("log_append", "log_append_batch")
                         else {"repl"})
                effect = self._effect(ctx, frame, node, kinds, f"call({t})")
            return self._after_emit(node, ctx, frame, effect)
        if attr == "send":
            t = _const_str(_arg_or_kw(node, 1, "type"))
            tgt = _arg_or_kw(node, 0, "target")
            if t in REPL_TYPES:
                kinds = ({"repl", "durable"}
                         if t in ("log_append", "log_append_batch")
                         else {"repl"})
                self._effect(ctx, frame, node, kinds, f"send({t})")
            elif (isinstance(tgt, ast.Attribute) and tgt.attr == "datalet"
                    and isinstance(tgt.value, ast.Name)
                    and tgt.value.id == "self"
                    and (t is None or t not in DATALET_READ_OPS)):
                self._effect(ctx, frame, node, {"durable"},
                             f"send(self.datalet, {t or '<dynamic>'})")
            return [(ctx, "fell")]
        if attr == "set_timer":
            cb_node = _arg_or_kw(node, 1, "callback")
            cb = self._resolve_callable(cb_node, ctx, frame) if cb_node is not None else None
            if cb is not None:
                ctx.deferred.append(("call", cb))
            return [(ctx, "fell")]
        if attr in ("register", "emit", "forward", "transmit", "now",
                    "loop_phase"):
            return [(ctx, "fell")]
        if attr == "_enqueue_down":
            # The ms-sc link pump has two completions, both modeled:
            #
            # * a successor exists — the entry rides an awaited
            #   ``chain_put_batch`` call downstream (one frame in
            #   flight per link) and ``done`` fires only once the
            #   chain suffix acked; semantically
            #   ``self.call(succ, "chain_put_batch", entry,
            #   callback=done)``.
            # * this node is the tail — ``done`` fires immediately
            #   with no replication effect at all, so any ack inside
            #   it must already be covered by the caller's own durable
            #   effects (the local apply).  Skipping this fork would
            #   hide injections that defer the apply and ack at the
            #   tail.
            cb_node = _arg_or_kw(node, 1, "done")
            cb = (self._resolve_callable(cb_node, ctx, frame)
                  if cb_node is not None else None)
            tail_ctx = ctx.clone()
            effect = self._effect(ctx, frame, node, {"repl"},
                                  "enqueue_down(chain_put_batch)")
            if cb is None:
                return [(ctx, "fell")]
            results = []
            sub = replace(frame, file=cb.file,
                          covered=frame.covered | {effect.eid},
                          awaited_durable=True)
            for c, st in self._walk_callable(cb, ctx, sub):
                results.append((c, "fell" if st == "return" else st))
            tail_sub = replace(frame, file=cb.file)
            for c, st in self._walk_callable(cb, tail_ctx, tail_sub):
                results.append((c, "fell" if st == "return" else st))
            return results
        # generic same-class helper: inline with parameter binding
        fn, file = _resolve(self.classes, frame.cls, attr)
        if fn is None:
            return [(ctx, "fell")]
        key = (frame.cls, attr)
        if key in self._inline:
            return [(ctx, "fell")]
        self._inline.add(key)
        try:
            env: Dict[str, object] = {}
            params = [a.arg for a in fn.args.args[1:]]  # skip self
            for i, arg in enumerate(node.args):
                if i < len(params):
                    v = self._resolve_callable(arg, ctx, frame)
                    if v is not None:
                        env[params[i]] = v
            for k in node.keywords:
                if k.arg in params:
                    v = self._resolve_callable(k.value, ctx, frame)
                    if v is not None:
                        env[k.arg] = v
            sub = replace(frame, file=file)
            results = []
            for c, st in self._walk_sub(fn.body, ctx, env, sub):
                results.append((c, "fell" if st == "return" else st))
            return results
        finally:
            self._inline.discard(key)

    def _after_emit(self, node, ctx, frame, effect):
        """Inline an emit's completion callback with awaited tokens."""
        cb_node = None
        for k in node.keywords:
            if k.arg == "callback":
                cb_node = k.value
        cb = self._resolve_callable(cb_node, ctx, frame) if cb_node is not None else None
        if cb is None:
            return [(ctx, "fell")]
        if effect is not None and _contains_settle(cb.node):
            ctx.armed.add(effect.eid)
        covered = frame.covered
        awaited = frame.awaited_durable
        if effect is not None:
            covered = frame.covered | {effect.eid}
            # an awaited repl counts compositionally: the peer's own
            # handler for that type carries the durability obligation
            awaited = True
        sub = replace(frame, file=cb.file, covered=covered,
                      awaited_durable=awaited)
        results = []
        for c, st in self._walk_callable(cb, ctx, sub):
            results.append((c, "fell" if st == "return" else st))
        return results

    def _inline_callable(self, target, node, ctx, frame):
        """A bound closure called by name (e.g. ``body()`` inside the
        DLM lock grant)."""
        sub = replace(frame, file=target.file)
        results = []
        for c, st in self._walk_callable(target, ctx, sub):
            results.append((c, "fell" if st == "return" else st))
        return results

    def _walk_callable(self, cb: _Callable, ctx, frame):
        env = dict(cb.env)
        node = cb.node
        if isinstance(node, ast.Lambda):
            for a in node.args.args:
                env.pop(a.arg, None)
            body = [ast.Expr(value=node.body)]
        else:
            for a in node.args.args:
                env.pop(a.arg, None)
            body = list(node.body)
        return self._walk_sub(body, ctx, env, frame)

    def _walk_sub(self, body, ctx, env, frame):
        """Walk a nested frame: swap ``env`` in, restore the caller's
        bindings on every resulting path."""
        saved = ctx.env
        ctx.env = env
        results = self._walk_block(body, ctx, frame)
        out = []
        for c, st in results:
            c.env = saved if c is ctx else dict(saved)
            out.append((c, st))
        ctx.env = saved
        return out

    # -- deferred drain ------------------------------------------------

    def _drain(self, ctx) -> List[_PathCtx]:
        out: List[_PathCtx] = []
        stack = [ctx]
        while stack and len(out) < _PATH_CAP:
            c = stack.pop()
            if not c.deferred:
                out.append(c)
                continue
            item = c.deferred.pop(0)
            if item[0] == "arm-default":
                _, line, file = item
                c.effects.append(_Effect(
                    kinds={"ack"}, eid=self._next(), file=file, line=line,
                    desc="arm() default join ack", deferred=True,
                    covered=set(c.armed), awaited_durable=bool(c.armed)))
                stack.append(c)
                continue
            if item[0] == "arm-then":
                _, cb, _line, _file = item
                frame = _Frame(self.cls, cb.file,
                               covered=frozenset(c.armed),
                               awaited_durable=bool(c.armed), deferred=True)
            else:  # "call" (timer): a fresh turn, no awaited context
                cb = item[1]
                frame = _Frame(self.cls, cb.file, covered=frozenset(),
                               awaited_durable=False, deferred=True)
            for c2, _st in self._walk_callable(cb, c, frame):
                stack.append(c2)
        return out

    # -- top level -----------------------------------------------------

    def trace(self, method: str) -> List[_PathCtx]:
        fn, file = _resolve(self.classes, self.cls, method)
        if fn is None:
            return []
        self._inline.add((self.cls, method))
        ctx = _PathCtx()
        frame = _Frame(self.cls, file, covered=frozenset(),
                       awaited_durable=False)
        paths: List[_PathCtx] = []
        for c, _st in self._walk_block(list(fn.body), ctx, frame):
            paths.extend(self._drain(c))
        return paths[:_PATH_CAP]


# ----------------------------------------------------------------------
# entry discovery + rule evaluation
# ----------------------------------------------------------------------

def _registrations(classes: Dict[str, _Cls], cls: str) -> Dict[str, str]:
    """msg type -> handler method, most-derived registration winning."""
    bindings: Dict[str, str] = {}
    for anc in _ancestry(classes, cls):
        c = classes.get(anc)
        if c is None:
            continue
        for m in c.methods.values():
            for node in ast.walk(m):
                if not (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr == "register"
                        and isinstance(node.func.value, ast.Name)
                        and node.func.value.id == "self"
                        and len(node.args) >= 2):
                    continue
                t = _const_str(node.args[0])
                h = node.args[1]
                if (t is not None and isinstance(h, ast.Attribute)
                        and isinstance(h.value, ast.Name)
                        and h.value.id == "self"):
                    bindings.setdefault(t, h.attr)
    return bindings


def _entries(classes: Dict[str, _Cls], cls: str) -> Dict[str, str]:
    """Write-path entry methods for a concrete class."""
    out: Dict[str, str] = {}
    for t, method in _registrations(classes, cls).items():
        if t not in WRITE_CHAIN_TYPES:
            continue
        if method == "_client_op":
            # the generic dispatcher resolves put/del onto handle_* hooks
            method = {"put": "handle_put", "del": "handle_del"}.get(t, "")
            if not method:
                continue
        out[t] = method
    return out


@dataclass
class _Raw:
    file: str
    line: int
    rule: str
    message: str
    waived_by: Optional[Waiver] = None


def _evaluate(classes: Dict[str, _Cls], cls: str,
              waivers: Sequence[Waiver]) -> List[_Raw]:
    raws: List[_Raw] = []
    ancestry = set(_ancestry(classes, cls))
    applicable = {
        (w.rule): w for w in waivers if w.cls in ancestry
    }
    for msg_type, method in sorted(_entries(classes, cls).items()):
        tracer = _Tracer(classes, cls, msg_type)
        for path in tracer.trace(method):
            for i, e in enumerate(path.effects):
                if "ack" not in e.kinds:
                    continue
                durable_prefix = any(
                    "durable" in p.kinds and not p.deferred
                    for p in path.effects[:i]
                )
                if not (durable_prefix or e.awaited_durable):
                    raws.append(_Raw(
                        e.file, e.line, "ack-before-durable",
                        f"{cls} [{msg_type}]: client ack ({e.desc}) can "
                        "precede every durable effect on this path — a "
                        "crash right after the ack loses an acknowledged "
                        "write",
                        waived_by=applicable.get("ack-before-durable"),
                    ))
                uncovered = sorted({
                    p.desc for p in path.effects
                    if "repl" in p.kinds and p.eid not in e.covered
                })
                if uncovered:
                    raws.append(_Raw(
                        e.file, e.line, "ack-before-replication",
                        f"{cls} [{msg_type}]: ack ({e.desc}) does not "
                        f"await replication effect(s) "
                        f"{', '.join(uncovered)} issued on this path",
                        waived_by=applicable.get("ack-before-replication"),
                    ))
    return raws


def analyze_sources(
    sources: List[Tuple[str, str]],
    allowlist: Optional[Dict[str, Set[str]]] = None,
    waivers: Sequence[Waiver] = ALL_WAIVERS,
) -> List[Finding]:
    """Run the commit-point pass over ``(rel_path, source)`` pairs."""
    allowlist = DEFAULT_ALLOWLIST if allowlist is None else allowlist
    classes = _collect(sources)
    src_by_file = dict(sources)
    pragmas = {rel: _parse_pragmas(src) for rel, src in sources}

    raws: List[_Raw] = []
    for cls in sorted(classes):
        anc = _ancestry(classes, cls)
        if not any(any(b in a for b in _ANALYZED_BASES) for a in anc):
            continue
        raws.extend(_evaluate(classes, cls, waivers))

    # dedup (forked paths and sibling classes rediscover the same ack);
    # an unsuppressed occurrence outranks a waived one
    best: Dict[Tuple[str, int, str], Finding] = {}
    for raw in raws:
        if raw.file not in src_by_file:
            continue  # ack inherited from a file outside this run
        line_rules = (pragmas[raw.file].get(raw.line, set())
                      | pragmas[raw.file].get(raw.line - 1, set()))
        file_allowed = _allowed_by_list(raw.file, allowlist)
        suppressed = (raw.rule in file_allowed or raw.rule in line_rules
                      or "*" in line_rules)
        message = raw.message
        if raw.waived_by is not None:
            suppressed = True
            message += (f" [contract waiver: {raw.waived_by.condition} — "
                        f"{raw.waived_by.reason}]")
        finding = Finding(path=raw.file, line=raw.line, rule=raw.rule,
                          message=message, suppressed=suppressed)
        key = (raw.file, raw.line, raw.rule)
        prev = best.get(key)
        if prev is None or (prev.suppressed and not suppressed):
            best[key] = finding
    return sorted(best.values(), key=lambda f: (f.path, f.line, f.rule))


def analyze_tree(root: Path,
                 allowlist: Optional[Dict[str, Set[str]]] = None) -> List[Finding]:
    """Commit-point findings for the protocol portion of the package
    (``core/`` + ``datalet/`` — injection subclasses under ``analysis/``
    are analyzed only when passed to :func:`analyze_sources` directly,
    e.g. by the seeded must-fail regression test)."""
    root = Path(root)
    files: List[Path] = []
    for sub in ("core", "datalet"):
        d = root / sub
        if d.is_dir():
            files.extend(sorted(d.glob("*.py")))
    sources = [(p.relative_to(root).as_posix(), p.read_text()) for p in files]
    return analyze_sources(sources, allowlist=allowlist)
