"""Seeded known-bad builds for the flow-control passes.

Each class here plants one of the bug classes the
:mod:`repro.analysis.flow` passes exist to catch, as a *subclass* of a
real controlet — same technique as the commit-point injections in
:mod:`repro.analysis.statespace`: the defect rides genuine protocol
machinery, so catching it proves the analyzer handles the production
shapes (inherited helpers, local closures, RPC error arms), not toy
snippets.

CI replays both defects on every run (``repro lint
--inject-flow-defects`` must fail; see the lint job's must-fail step),
and ``tests/test_flow.py`` pins the exact rule each one trips.  The
classes are never deployed — they exist purely as analyzer regression
anchors.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.ms_ec import MSEventualControlet
from repro.core.ms_sc import MSStrongControlet
from repro.errors import BespoError
from repro.net.message import Message

__all__ = [
    "FLOW_INJECTIONS",
    "LeakyPumpMSEventualControlet",
    "StaleEpochDualRouteControlet",
    "UncappedRequeueMSStrongControlet",
]


class LeakyPumpMSEventualControlet(MSEventualControlet):
    """Known-bad build: a hand-rolled replay pump whose completion
    callback releases the busy token only on the *success* arm.  On a
    datalet error (or RPC timeout) the token stays latched, the pump
    never re-enters, and ``_replay_queue`` fills forever — the exact
    wedge the ``pump-leak`` pass walks RPC error arms to find.  No test
    fails until a soak notices throughput went to zero, which is why
    this is seeded statically instead.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._replay_queue: List[list] = []
        self._replay_busy = False

    def _pump_replays(self) -> None:
        if self._replay_busy or not self._replay_queue:
            return
        self._replay_busy = True
        ops = self._replay_queue.pop(0)

        def applied(resp: Optional[Message], err: Optional[BespoError]) -> None:
            if err is None:
                # BUG: the error/timeout arm falls through without
                # clearing the token — one failed apply wedges the pump
                self._replay_busy = False
                self._pump_replays()

        self.datalet_call("apply_batch", {"ops": ops}, callback=applied)


class UncappedRequeueMSStrongControlet(MSStrongControlet):
    """Known-bad build: chain entries that arrive while a retry is in
    progress are parked in a private stash — which nothing ever drains,
    caps, or pump-manages (``unbounded-buffer``) — and their rid is
    stripped on the way in, so if the stash were ever re-driven no
    dedup gate downstream could recognize the entries and a retried
    mutation would apply twice (``retry-no-dedup``).
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._retry_stash: List[tuple] = []

    def _enqueue_down(self, entry, done) -> None:
        if self._down_retries:
            # BUG: rid dropped, then queued into a stash with no drain
            entry.pop("rid", None)
            self._retry_stash.append((entry, done))
            return
        super()._enqueue_down(entry, done)


class StaleEpochDualRouteControlet(MSEventualControlet):
    """Known-bad build: a config handler that adopts the double-ring
    reshard state straight off the wire — ``self._reshard`` and
    ``self._old_ring`` written directly, and the whole payload never
    routed through the epoch fence in ``_install_shard``.  A delayed
    ``config_update`` broadcast from a *previous* reshard window then
    re-opens dual-routing after the cutover committed: migrated keys
    route back to the retired source, and a fenced source accepts
    writes it no longer owns (``ring-epoch``, twice over).
    """

    def _on_config_update(self, msg: Message) -> None:
        payload = msg.payload
        ring = (payload.get("view") or {}).get("reshard")
        # BUG: no epoch comparison, no _install_shard — stale window
        # descriptors land as if they were fresh
        self._reshard = dict(ring) if ring else None
        self._old_ring = None
        self.respond(msg, "config_ack", {"epoch": payload["map"]["epoch"]})


FLOW_INJECTIONS: Dict[str, type] = {
    "leaky-pump": LeakyPumpMSEventualControlet,
    "uncapped-requeue": UncappedRequeueMSStrongControlet,
    "stale-epoch-dual-route": StaleEpochDualRouteControlet,
}
