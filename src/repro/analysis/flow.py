"""Flow-control static analysis: four gating passes over controlet
hot paths, built on the :mod:`repro.analysis.cfg` path walker.

The protocol cores share a small set of liveness/flow idioms — busy
flags guarding one-in-flight drains, swap-drained batch queues,
retry-requeue-at-front, config-epoch fencing — and the chaos suites
only catch violations that happen to fire under a sampled schedule.
These passes check the idioms statically, on every path:

``pump-leak`` (pump-liveness)
    Every busy-token acquisition (``self._x_busy = True`` and friends)
    must, on every non-abandoned path — *including* the RPC
    error/timeout callback arms — either clear the token again or hand
    it to a timer continuation that does.  A leaked token wedges its
    pump forever: the queue keeps filling, nothing drains, no test
    fails until a soak notices throughput went to zero.  The same pass
    checks every ``Pump(...)`` issue callable invokes its ``done``
    continuation on all paths.

``unbounded-buffer`` (backpressure)
    Any ``self.<list>.append(...)`` outside ``__init__`` needs one of:
    a drain site (``pop``/``del q[:n]``/swap-to-empty), a configured
    cap (``len(self.q) >= self.config...`` check or ``deque(maxlen)``),
    or Pump management.  Otherwise a slow peer turns the queue into an
    unbounded memory leak.

``unthrottled-replication`` (backpressure)
    Replication fan-out (:data:`REPL_TYPES <repro.analysis.commitpoints.REPL_TYPES>`)
    via fire-and-forget ``self.send`` has no in-flight bound and no
    failure signal; it must go through ``self.call(..., callback=)``
    under a pump or batch window.

``retry-no-dedup`` (retry-idempotency)
    Re-driven mutations must stay idempotent: a requeue-at-front
    (``q[:0] = batch`` / ``pump.requeue_front``) is only safe when the
    queued entries carry a rid and the class sits behind a dedup gate
    (``begin_write`` / ``_rid_done`` / sequencer ``_rid_pos``); and no
    path may strip the ``rid`` off a payload it then re-enqueues.

``ring-epoch`` (epoch-guard)
    Ring state is only installed through the epoch-fenced
    ``_install_shard``; overrides must keep the epoch comparison, and
    ``_on_config_update`` overrides must still route through
    ``_install_shard``.  A stale config install resurrects a retired
    replica set.

Suppression follows the house rules: ``# lint: allow[<rule>]`` pragmas
on the finding line or the line above, plus declared
:class:`~repro.analysis.commitpoints.Waiver` entries in
:data:`FLOW_WAIVERS` (rendered into the message so the justification
is auditable in ``--show-suppressed`` output).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path as _FsPath
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.cfg import (
    DONE,
    ClassTable,
    Closure,
    FlowWalker,
    Path,
    PumpBinding,
    Step,
    looks_like_flag,
)
from repro.analysis.commitpoints import REPL_TYPES, Waiver
from repro.analysis.findings import Finding
from repro.analysis.lint import _parse_pragmas

__all__ = [
    "FLOW_RULES",
    "FLOW_WAIVERS",
    "FLOW_INJECTION_SOURCES",
    "analyze_flow_sources",
    "analyze_flow_tree",
]

FLOW_RULES = (
    "pump-leak",
    "unbounded-buffer",
    "unthrottled-replication",
    "retry-no-dedup",
    "ring-epoch",
)

#: dedup machinery that makes a re-driven mutation idempotent: the
#: controlet-side rid gate, the per-class done-caches, the sequencer's
#: rid→pos table.
_DEDUP_GATE_CALLS = {"begin_write", "_remember_rid"}
_DEDUP_GATE_ATTRS = {"_rid_done", "_rid_pending", "_rid_pos", "dup_appends"}

#: classes analyzed: protocol actors by name-based ancestry, plus the
#: non-actor flow machinery that still owns queues/flags.
_FLOW_BASES = ("Controlet", "Actor")
_EXTRA_ANALYZED = {"PipelinedClient", "SharedLog", "Pump", "Request",
                   "ClusterView", "MigrationPump"}

#: generic machinery exempt from the queue-discipline passes: Pump's
#: own queue/requeue ARE the drain/retry primitives the user-side
#: rules check at each binding site, and MigrationPump's retry requeue
#: is rid-disciplined by its issue callable (the controlet stamps the
#: stable per-key migration rid), which the binding-site rules cover.
_GENERIC_CLASSES = {"Pump", "MigrationPump"}

#: how deep the defer-discharge recursion chases timer continuations
#: (arm → tick → re-arm chains settle well within this).
_DISCHARGE_DEPTH = 3

#: declared-legal flow findings.  Keep this list justified: every entry
#: shows up in ``repro lint --show-suppressed`` with its reason.
FLOW_WAIVERS: Tuple[Waiver, ...] = ()

#: the source set CI replays to prove the seeded flow defects stay
#: caught (``repro lint --inject-flow-defects``): the defect classes in
#: flowdefects.py plus the ancestry they subclass.
FLOW_INJECTION_SOURCES = [
    "core/controlet.py",
    "core/ms_ec.py",
    "core/ms_sc.py",
    "cluster/view.py",
    "cluster/migrate.py",
    "analysis/flowdefects.py",
]


@dataclass
class _Raw:
    file: str
    line: int
    rule: str
    message: str
    cls: str
    waived_by: Optional[Waiver] = None


# ----------------------------------------------------------------------
# shared helpers
# ----------------------------------------------------------------------

def _is_analyzed(table: ClassTable, cls: str) -> bool:
    if cls in _EXTRA_ANALYZED:
        return True
    ancestry = table.ancestry(cls)
    return any(base in a for a in ancestry for base in _FLOW_BASES)


def _own_methods(table: ClassTable, cls: str):
    c = table.classes.get(cls)
    return c.methods if c is not None else {}


def _open_flags(steps: Sequence[Step]) -> Dict[str, Step]:
    """Flag attrs still latched at the end of a path, with the step
    that last set them."""
    open_: Dict[str, Step] = {}
    for s in steps:
        if s.kind == "flag-set":
            open_[s.detail] = s
        elif s.kind == "flag-clear":
            open_.pop(s.detail, None)
    return open_


def _defer_discharges(walker: FlowWalker, closure: Optional[Closure],
                      attr: str, depth: int, seen: Set[int]) -> bool:
    """True when a deferred (timer) continuation is guaranteed to clear
    ``attr`` on every non-abandoned path, possibly by deferring again
    (self-sustaining tick loops count as discharged: each firing clears
    the token before re-arming)."""
    if closure is None:
        return False
    key = id(closure.node)
    if depth > _DISCHARGE_DEPTH or key in seen:
        return True
    for path in walker.walk_closure(closure):
        if path.abandoned:
            continue
        if attr not in _open_flags(path.steps):
            continue
        defers = [s for s in path.steps if s.kind == "defer"]
        if not any(_defer_discharges(walker, s.closure, attr, depth + 1,
                                     seen | {key}) for s in defers):
            return False
    return True


def _paths_call_done(walker: FlowWalker, closure: Closure,
                     depth: int = 0, seen: Optional[Set[int]] = None) -> bool:
    """True when every non-abandoned path of a pump issue callable
    invokes (or hands off) its ``done`` continuation."""
    seen = set() if seen is None else seen
    key = id(closure.node)
    if depth > _DISCHARGE_DEPTH or key in seen:
        return True
    params = closure.params()
    if len(params) < 2:
        return True  # not the (item, done) shape; nothing to check
    paths = walker.walk_closure(closure, seed_env={params[1]: DONE})
    for path in paths:
        if path.abandoned:
            continue
        if any(s.kind == "done-call" for s in path.steps):
            continue
        defers = [s for s in path.steps if s.kind == "defer"
                  and s.closure is not None]
        if not any(
                any(ds.kind == "done-call"
                    for p2 in walker.walk_closure(d.closure)
                    for ds in p2.steps)
                for d in defers):
            return False
    return True


# ----------------------------------------------------------------------
# pass (a): pump-liveness
# ----------------------------------------------------------------------

def _check_liveness(table: ClassTable, cls: str) -> List[_Raw]:
    raws: List[_Raw] = []
    pumps: List[PumpBinding] = []
    for name, funcdef in sorted(_own_methods(table, cls).items()):
        walker = FlowWalker(table, cls)
        paths = walker.walk(funcdef)
        pumps.extend(walker.pumps)
        if name == "__init__":
            continue  # construction only declares flags
        for path in paths:
            if path.abandoned:
                continue
            leaked = _open_flags(path.steps)
            if not leaked:
                continue
            defers = [s for s in path.steps if s.kind == "defer"]
            for attr, step in leaked.items():
                if any(_defer_discharges(walker, d.closure, attr, 0, set())
                       for d in defers):
                    continue
                where = "an RPC callback" if step.in_callback else "a fall-through"
                raws.append(_Raw(
                    step.file, step.line, "pump-leak",
                    f"{cls}.{name}: busy token self.{attr} acquired here is "
                    f"left latched on {where} path that neither clears it "
                    "nor re-arms a timer that does — the pump it guards "
                    "wedges permanently",
                    cls))
    # every Pump issue callable must complete its done continuation
    for binding in pumps:
        if binding.issue is None:
            continue
        walker = FlowWalker(table, cls)
        if not _paths_call_done(walker, binding.issue):
            node = binding.issue.node
            raws.append(_Raw(
                binding.issue.file or binding.file,
                getattr(node, "lineno", binding.line), "pump-leak",
                f"{cls}: Pump issue callable {binding.issue.name!r} (bound "
                f"to self.{binding.attr}) has a path that never invokes "
                "done() — the pump stays busy forever and its queue is "
                "never drained again",
                cls))
    return raws


# ----------------------------------------------------------------------
# pass (b): backpressure
# ----------------------------------------------------------------------

@dataclass
class _QueueEvidence:
    appends: Dict[str, Step]
    drains: Set[str]
    bounds: Set[str]
    caps: Set[str]
    pump_attrs: Set[str]
    requeues: List[Step]
    rid_strip_appends: List[Step]


def _gather_queue_evidence(table: ClassTable, cls: str) -> _QueueEvidence:
    ev = _QueueEvidence({}, set(), set(), set(), set(), [], [])
    for name, funcdef in sorted(_own_methods(table, cls).items()):
        walker = FlowWalker(table, cls)
        paths = walker.walk(funcdef)
        for b in walker.pumps:
            ev.pump_attrs.add(b.attr)
        in_init = name == "__init__"
        for path in paths:
            stripped_since = False
            for s in path.steps:
                if s.kind == "append" and not in_init:
                    ev.appends.setdefault(s.detail, s)
                    if stripped_since:
                        ev.rid_strip_appends.append(s)
                elif s.kind == "drain" and not in_init:
                    ev.drains.add(s.detail)
                elif s.kind == "bound":
                    ev.bounds.add(s.detail)
                elif s.kind in ("pump-push", "pump-new"):
                    ev.pump_attrs.add(s.detail)
                elif s.kind == "requeue":
                    ev.requeues.append(s)
                elif s.kind == "pump-requeue":
                    ev.requeues.append(s)
                elif s.kind == "rid-strip":
                    stripped_since = True
        # cap checks are branch tests, not steps: flat scan
        for node in ast.walk(funcdef):
            if isinstance(node, ast.Compare) \
                    and isinstance(node.left, ast.Call) \
                    and isinstance(node.left.func, ast.Name) \
                    and node.left.func.id == "len" and node.left.args:
                target = node.left.args[0]
                if isinstance(target, ast.Attribute) \
                        and isinstance(target.value, ast.Name) \
                        and target.value.id == "self":
                    ev.caps.add(target.attr)
    return ev


def _merged_evidence(table: ClassTable,
                     evidence: Dict[str, _QueueEvidence],
                     cls: str) -> _QueueEvidence:
    merged = _QueueEvidence({}, set(), set(), set(), set(), [], [])
    for ancestor in table.ancestry(cls):
        ev = evidence.get(ancestor)
        if ev is None:
            continue
        for attr, step in ev.appends.items():
            merged.appends.setdefault(attr, step)
        merged.drains |= ev.drains
        merged.bounds |= ev.bounds
        merged.caps |= ev.caps
        merged.pump_attrs |= ev.pump_attrs
    return merged


def _check_backpressure(table: ClassTable, cls: str,
                        evidence: Dict[str, _QueueEvidence]) -> List[_Raw]:
    raws: List[_Raw] = []
    own = evidence[cls]
    merged = _merged_evidence(table, evidence, cls)
    for attr, step in sorted(own.appends.items()):
        if looks_like_flag(attr):
            continue  # per-key flag dicts are handled by pump-liveness
        if attr in merged.drains or attr in merged.bounds \
                or attr in merged.caps or attr in merged.pump_attrs:
            continue
        raws.append(_Raw(
            step.file, step.line, "unbounded-buffer",
            f"{cls}: self.{attr} is appended here but nothing along the "
            "class ancestry drains, caps (ControlConfig batch knob / "
            "deque(maxlen)), or pump-manages it — a slow consumer grows "
            "it without bound",
            cls))
    # fire-and-forget replication fan-out
    for name, funcdef in sorted(_own_methods(table, cls).items()):
        for node in ast.walk(funcdef):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "send"
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == "self"
                    and len(node.args) >= 2
                    and isinstance(node.args[1], ast.Constant)
                    and node.args[1].value in REPL_TYPES):
                continue
            raws.append(_Raw(
                table.file_of(cls), node.lineno, "unthrottled-replication",
                f"{cls}.{name}: replication fan-out "
                f"({node.args[1].value!r}) via fire-and-forget send() has "
                "no in-flight bound and no failure signal — route it "
                "through call(callback=) under a Pump or batch window",
                cls))
    return raws


# ----------------------------------------------------------------------
# pass (c): retry-idempotency
# ----------------------------------------------------------------------

def _class_has_dedup_gate(table: ClassTable, cls: str) -> bool:
    for ancestor in table.ancestry(cls):
        for funcdef in _own_methods(table, ancestor).values():
            for node in ast.walk(funcdef):
                if isinstance(node, ast.Attribute) \
                        and node.attr in (_DEDUP_GATE_ATTRS | _DEDUP_GATE_CALLS):
                    return True
    return False


def _enqueue_sites_mention_rid(table: ClassTable, cls: str, attr: str) -> bool:
    """Do the methods that feed ``self.<attr>`` thread a rid into the
    queued entries?  Flat check over the ancestry: an enqueuing method
    satisfies it either directly or through one level of caller
    indirection (``_forward_down`` attaches the rid, ``_enqueue_down``
    does the append) — the walker already proved the queue/requeue
    relationship, this only locates the identity."""
    feeders: Set[str] = set()
    rid_methods: Set[str] = set()
    callers: Dict[str, Set[str]] = {}
    for ancestor in table.ancestry(cls):
        for name, funcdef in _own_methods(table, ancestor).items():
            for node in ast.walk(funcdef):
                if isinstance(node, ast.Call) \
                        and isinstance(node.func, ast.Attribute) \
                        and isinstance(node.func.value, ast.Name):
                    base_name = node.func.value.id
                    if node.func.attr in ("append", "extend", "insert",
                                          "appendleft", "push"):
                        base = node.func.value
                    else:
                        base = None
                    if base_name == "self" and base is None:
                        # self.helper(...): caller edge
                        callers.setdefault(node.func.attr, set()).add(name)
                if isinstance(node, ast.Call) \
                        and isinstance(node.func, ast.Attribute) \
                        and node.func.attr in ("append", "extend", "insert",
                                               "appendleft", "push"):
                    target = node.func.value
                    while isinstance(target, ast.Subscript):
                        target = target.value
                    if isinstance(target, ast.Attribute) \
                            and isinstance(target.value, ast.Name) \
                            and target.value.id == "self" \
                            and target.attr == attr:
                        feeders.add(name)
                if (isinstance(node, ast.Constant) and node.value == "rid") \
                        or (isinstance(node, ast.Attribute)
                            and node.attr == "rid"):
                    rid_methods.add(name)
    for feeder in feeders:
        if feeder in rid_methods:
            return True
        if any(c in rid_methods for c in callers.get(feeder, ())):
            return True
    return False


def _check_retry(table: ClassTable, cls: str,
                 evidence: Dict[str, _QueueEvidence]) -> List[_Raw]:
    raws: List[_Raw] = []
    own = evidence[cls]
    gated = _class_has_dedup_gate(table, cls)
    for step in own.requeues:
        attr = step.detail
        if not gated:
            raws.append(_Raw(
                step.file, step.line, "retry-no-dedup",
                f"{cls}: retry requeue of self.{attr} but no dedup gate "
                "(begin_write rid cache / _rid_done / sequencer _rid_pos) "
                "anywhere on the class ancestry — a re-driven mutation "
                "can apply twice",
                cls))
            continue
        if not _enqueue_sites_mention_rid(table, cls, attr):
            raws.append(_Raw(
                step.file, step.line, "retry-no-dedup",
                f"{cls}: self.{attr} is requeued for retry but its "
                "enqueue sites never attach a rid — downstream dedup "
                "gates cannot recognize the re-driven entries",
                cls))
    for step in own.rid_strip_appends:
        raws.append(_Raw(
            step.file, step.line, "retry-no-dedup",
            f"{cls}: payload queued into self.{step.detail} after its "
            "rid was stripped on this path — if this entry is re-driven "
            "no dedup gate can recognize it",
            cls))
    return raws


# ----------------------------------------------------------------------
# pass (d): epoch-guard
# ----------------------------------------------------------------------

def _mentions_epoch_compare(funcdef) -> bool:
    for node in ast.walk(funcdef):
        if isinstance(node, ast.Compare):
            for sub in ast.walk(node):
                if isinstance(sub, ast.Attribute) and "epoch" in sub.attr:
                    return True
                if isinstance(sub, ast.Name) and "epoch" in sub.id:
                    return True
    return False


#: double-ring routing state a controlet may only install through the
#: epoch-fenced paths below — a stale broadcast writing these directly
#: can re-open a committed reshard window.
_RING_STATE_ATTRS = ("_ring", "_old_ring", "_reshard")
_RING_INSTALLERS = ("__init__", "_install_shard", "_install_ring",
                    "_adopt_window")


def _check_epoch(table: ClassTable, cls: str) -> List[_Raw]:
    ancestry = table.ancestry(cls)
    file = table.file_of(cls)
    methods = _own_methods(table, cls)
    if cls == "ClusterView" or any("ClusterView" in a for a in ancestry):
        # the membership view's install() IS the fence every follower
        # relies on: it must compare incoming vs held epoch.
        raws: List[_Raw] = []
        if "install" in methods \
                and not _mentions_epoch_compare(methods["install"]):
            raws.append(_Raw(
                file, methods["install"].lineno, "ring-epoch",
                f"{cls}.install: override drops the epoch comparison — "
                "a lagging standby's snapshot can roll the membership "
                "view (and its ring generation) backwards",
                cls))
        return raws
    if not any("Controlet" in a for a in ancestry):
        return []
    raws = []
    for name, funcdef in sorted(methods.items()):
        if name in ("__init__", "_install_shard"):
            continue
        for node in ast.walk(funcdef):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if not (isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"):
                        continue
                    if target.attr == "shard":
                        raws.append(_Raw(
                            file, node.lineno, "ring-epoch",
                            f"{cls}.{name}: ring state installed directly "
                            "(self.shard = ...) instead of through the "
                            "epoch-fenced _install_shard — a stale config "
                            "delivery can resurrect a retired replica set",
                            cls))
                    elif target.attr in _RING_STATE_ATTRS \
                            and name not in _RING_INSTALLERS:
                        raws.append(_Raw(
                            file, node.lineno, "ring-epoch",
                            f"{cls}.{name}: double-ring routing state "
                            f"(self.{target.attr} = ...) installed outside "
                            "the fenced installers "
                            f"({', '.join(_RING_INSTALLERS)}) — a delayed "
                            "broadcast from a previous window can re-open "
                            "dual-routing after the cutover committed",
                            cls))
    if "_install_shard" in methods \
            and not _mentions_epoch_compare(methods["_install_shard"]):
        raws.append(_Raw(
            file, methods["_install_shard"].lineno, "ring-epoch",
            f"{cls}._install_shard: override drops the config-epoch "
            "comparison — out-of-order config updates are no longer "
            "rejected",
            cls))
    if "_on_config_update" in methods:
        routed = any(
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("_install_shard", "_on_config_update")
            for node in ast.walk(methods["_on_config_update"]))
        if not routed:
            raws.append(_Raw(
                file, methods["_on_config_update"].lineno, "ring-epoch",
                f"{cls}._on_config_update: override does not route the "
                "new ring through _install_shard (or super()), bypassing "
                "the epoch fence",
                cls))
    return raws


# ----------------------------------------------------------------------
# driver
# ----------------------------------------------------------------------

def analyze_flow_sources(
    sources: List[Tuple[str, str]],
    waivers: Sequence[Waiver] = FLOW_WAIVERS,
) -> List[Finding]:
    """Run all four flow passes over ``(rel_path, source)`` pairs."""
    table = ClassTable(sources)
    src_files = {rel for rel, _src in sources}
    pragmas = {rel: _parse_pragmas(src) for rel, src in sources}

    evidence: Dict[str, _QueueEvidence] = {}
    analyzed = [cls for cls in sorted(table.classes)
                if _is_analyzed(table, cls)]
    for cls in analyzed:
        evidence[cls] = _gather_queue_evidence(table, cls)

    raws: List[_Raw] = []
    for cls in analyzed:
        raws.extend(_check_liveness(table, cls))
        if cls in _GENERIC_CLASSES:
            continue  # Pump's queue/requeue ARE the primitives
        raws.extend(_check_backpressure(table, cls, evidence))
        raws.extend(_check_retry(table, cls, evidence))
        raws.extend(_check_epoch(table, cls))

    by_cls_rule = {(w.cls, w.rule): w for w in waivers}
    best: Dict[Tuple[str, int, str], Finding] = {}
    for raw in raws:
        if raw.file not in src_files:
            continue  # step inlined from a file outside this run
        line_rules = (pragmas[raw.file].get(raw.line, set())
                      | pragmas[raw.file].get(raw.line - 1, set()))
        suppressed = raw.rule in line_rules or "*" in line_rules
        message = raw.message
        waiver = raw.waived_by or by_cls_rule.get((raw.cls, raw.rule))
        if waiver is not None:
            suppressed = True
            message += (f" [flow waiver: {waiver.condition} — "
                        f"{waiver.reason}]")
        finding = Finding(path=raw.file, line=raw.line, rule=raw.rule,
                          message=message, suppressed=suppressed)
        key = (raw.file, raw.line, raw.rule)
        prev = best.get(key)
        # forked paths and sibling classes rediscover the same site; an
        # unsuppressed occurrence outranks a waived one
        if prev is None or (prev.suppressed and not suppressed):
            best[key] = finding
    return sorted(best.values(), key=lambda f: (f.path, f.line, f.rule))


def analyze_flow_tree(root: Optional[_FsPath] = None) -> List[Finding]:
    """Flow findings for the protocol portion of the package: the
    controlet cores, the shared log, and the pipelined client."""
    if root is None:
        import repro

        root = _FsPath(repro.__file__).resolve().parent
    root = _FsPath(root)
    files: List[_FsPath] = []
    for sub in ("core", "sharedlog", "cluster"):
        d = root / sub
        if d.is_dir():
            files.extend(sorted(d.glob("*.py")))
    pipeline = root / "client" / "pipeline.py"
    if pipeline.is_file():
        files.append(pipeline)
    sources = [(p.relative_to(root).as_posix(), p.read_text()) for p in files]
    return analyze_flow_sources(sources)
