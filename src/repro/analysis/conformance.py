"""Static protocol-conformance checker.

The actor protocol in this codebase is string-typed: a sender does
``self.send(dst, "config_update", ...)`` and the receiver must have
done ``self.register("config_update", handler)``.  Nothing checks the
two sides against each other until a message lands in
``Actor.on_unhandled`` at runtime — in a chaos soak that shows up as a
mysteriously hung recovery, not as a type error.  This pass extracts
both sides from the AST and reports the asymmetries:

* **sent-but-never-handled** — a request type some actor sends (via
  ``send``/``call``/``ClientPort.request``) that no actor anywhere
  registers a handler for: a typo or a missing handler (error);
* **registered-but-never-sent** — a handler no code path can reach:
  dead protocol surface (error, unless the registration is explicitly
  declared an external entry point with ``# protocol: external`` on the
  ``register`` line — e.g. an admin API driven from outside the actor
  system);
* **expected-but-never-produced** — a response type some callback
  compares against (``resp.type == "sync_state"``) that nothing ever
  ``respond``s with (warning).

Message types are mostly literal at the call site, but the framework
funnels many sends through parameterized helpers (``sync_recover(
"tail_sync_pull")`` → ``self.call(src, pull_type, ...)``).  The checker
therefore propagates string constants through call chains to a
fixpoint: any function that forwards a parameter into a send/respond
position becomes a *forwarder*, and constants at its call sites count
as sends — including multi-hop chains like ``handle_put`` →
``_accept_write(msg, "put")`` → ``datalet_call(op, ...)`` →
``self.call(target, type, ...)``.

Registrations driven by a loop over a literal tuple
(``for op in ("put", "get", "del"): self.register(op, ...)``) are
expanded.  Anything genuinely dynamic (``self.call(dst, msg.type)``
relays) is recorded as unresolvable and excluded from the asymmetry
checks rather than guessed at.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.findings import Finding

__all__ = ["ProtocolModel", "check_tree", "check_sources"]

_EXTERNAL_PRAGMA = re.compile(r"#\s*protocol:\s*external\b")

#: methods that put their message-type argument on the wire, with the
#: positional index of that argument (``self`` excluded).  These are the
#: propagation seeds; everything else is discovered as a forwarder.
_SEND_SEEDS = {"send": 1, "call": 1}
_RESPOND_SEEDS = {"respond": 1}


@dataclass(frozen=True)
class Use:
    """One occurrence of a message type in a role."""

    type: str
    cls: str
    path: str
    line: int


@dataclass
class _Forwarder:
    """``method`` puts its parameter ``param`` on the wire when called."""

    method: str
    param: str
    index: int  # positional index at the *call site* (self stripped)
    kind: str  # "sent" | "responded"


@dataclass
class _CallSite:
    method: str
    args: List[Tuple[str, Optional[str]]]  # ("const"|"param"|"other", value)
    keywords: Dict[str, Tuple[str, Optional[str]]]
    cls: str
    func: str  # enclosing function name ("" at module level)
    func_params: List[str]  # enclosing function's params (self stripped)
    path: str
    line: int

    def resolve(self, index: int, name: str) -> Tuple[str, Optional[str]]:
        if name in self.keywords:
            return self.keywords[name]
        if 0 <= index < len(self.args):
            return self.args[index]
        return ("other", None)


@dataclass
class ProtocolModel:
    """Everything the checker learned about the message protocol."""

    registered: Dict[str, List[Use]] = field(default_factory=dict)
    sent: Dict[str, List[Use]] = field(default_factory=dict)
    responded: Dict[str, List[Use]] = field(default_factory=dict)
    #: response types that some callback pattern-matches on
    expected: Dict[str, List[Use]] = field(default_factory=dict)
    #: registered types declared as externally driven entry points
    external: Set[str] = field(default_factory=set)
    #: send/register sites whose type expression could not be resolved
    unresolved: List[Use] = field(default_factory=list)
    #: class -> message type -> handler method name ("<lambda>"/"<dynamic>"
    #: when the registration is not a plain bound method).  Consumed by
    #: :mod:`repro.analysis.summaries` to pair each message type with the
    #: method whose state footprint decides commutativity.
    handler_methods: Dict[str, Dict[str, str]] = field(default_factory=dict)

    def _add(self, table: Dict[str, List[Use]], use: Use) -> bool:
        uses = table.setdefault(use.type, [])
        if any(u.cls == use.cls for u in uses):
            return False
        uses.append(use)
        return True

    # -- queries -------------------------------------------------------
    def senders(self, type: str) -> List[str]:
        return sorted({u.cls for u in self.sent.get(type, [])})

    def handlers(self, type: str) -> List[str]:
        return sorted({u.cls for u in self.registered.get(type, [])})

    def describe(self) -> str:
        """Per-type role table (handlers ← senders)."""
        lines = []
        for t in sorted(set(self.registered) | set(self.sent)):
            handlers = ", ".join(self.handlers(t)) or "-"
            senders = ", ".join(self.senders(t)) or "-"
            mark = " (external)" if t in self.external else ""
            lines.append(f"{t:22s} handlers: {handlers:40s} senders: {senders}{mark}")
        return "\n".join(lines)

    def findings(self) -> List[Finding]:
        out: List[Finding] = []
        response_types = set(self.responded)
        for t in sorted(set(self.sent) - set(self.registered)):
            for u in self.sent[t]:
                out.append(Finding(
                    path=u.path, line=u.line, rule="sent-unhandled",
                    message=f"message type {t!r} sent by {u.cls} but no "
                            "actor registers a handler for it",
                ))
        for t in sorted(set(self.registered) - set(self.sent)):
            suppressed = t in self.external
            for u in self.registered[t]:
                out.append(Finding(
                    path=u.path, line=u.line, rule="registered-unsent",
                    message=f"handler for {t!r} registered by {u.cls} but "
                            "nothing in the package ever sends it",
                    suppressed=suppressed,
                ))
        never_produced = (
            set(self.expected) - response_types - set(self.registered) - {"error", "ok"}
        )
        for t in sorted(never_produced):
            for u in self.expected[t]:
                out.append(Finding(
                    path=u.path, line=u.line, rule="expected-response-missing",
                    message=f"callback expects response type {t!r} but "
                            "nothing ever responds with it",
                    severity="warning",
                ))
        return out


class _Collector(ast.NodeVisitor):
    def __init__(self, rel_path: str, model: ProtocolModel,
                 forwarders: Dict[str, List[_Forwarder]],
                 sites: List[_CallSite], external_lines: Set[int]):
        self.rel = rel_path
        self.model = model
        self.forwarders = forwarders
        self.sites = sites
        self.external_lines = external_lines
        self._cls: List[str] = []
        self._func: List[Tuple[str, List[str]]] = []
        self._loop_consts: List[Dict[str, List[str]]] = [{}]

    # -- context tracking ----------------------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._cls.append(node.name)
        self.generic_visit(node)
        self._cls.pop()

    def _visit_func(self, node) -> None:
        params = [a.arg for a in node.args.args if a.arg != "self"]
        self._func.append((node.name, params))
        self.generic_visit(node)
        self._func.pop()

    visit_FunctionDef = _visit_func
    visit_AsyncFunctionDef = _visit_func

    def visit_For(self, node: ast.For) -> None:
        consts: Optional[List[str]] = None
        if isinstance(node.iter, (ast.Tuple, ast.List, ast.Set)) and node.iter.elts:
            if all(
                isinstance(e, ast.Constant) and isinstance(e.value, str)
                for e in node.iter.elts
            ):
                consts = [e.value for e in node.iter.elts]
        if consts is not None and isinstance(node.target, ast.Name):
            self._loop_consts.append(
                dict(self._loop_consts[-1], **{node.target.id: consts})
            )
            self.generic_visit(node)
            self._loop_consts.pop()
        else:
            self.generic_visit(node)

    # -- helpers --------------------------------------------------------
    @property
    def _cur_cls(self) -> str:
        return self._cls[-1] if self._cls else f"<module {self.rel}>"

    @property
    def _cur_func(self) -> Tuple[str, List[str]]:
        return self._func[-1] if self._func else ("", [])

    def _classify(self, node: ast.expr) -> Tuple[str, Optional[str]]:
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return ("const", node.value)
        if isinstance(node, ast.Name) and node.id in self._cur_func[1]:
            return ("param", node.id)
        return ("other", None)

    def _use(self, type: str, line: int) -> Use:
        return Use(type=type, cls=self._cur_cls, path=self.rel, line=line)

    # -- the interesting nodes -----------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Attribute):
            mname = node.func.attr
            on_self = isinstance(node.func.value, ast.Name) and node.func.value.id == "self"
        elif isinstance(node.func, ast.Name):
            mname = node.func.id
            on_self = False
        else:
            self.generic_visit(node)
            return

        if mname == "register" and node.args:
            self._handle_register(node)
        elif on_self and mname in _SEND_SEEDS:
            self._handle_wire(node, _SEND_SEEDS[mname], "sent")
        elif on_self and mname in _RESPOND_SEEDS:
            self._handle_wire(node, _RESPOND_SEEDS[mname], "responded")

        # every call is a potential forwarder call site
        self.sites.append(_CallSite(
            method=mname,
            args=[self._classify(a) for a in node.args],
            keywords={
                kw.arg: self._classify(kw.value)
                for kw in node.keywords if kw.arg is not None
            },
            cls=self._cur_cls,
            func=self._cur_func[0],
            func_params=list(self._cur_func[1]),
            path=self.rel,
            line=node.lineno,
        ))
        self.generic_visit(node)

    def _handle_register(self, node: ast.Call) -> None:
        arg = node.args[0]
        kind, value = self._classify(arg)
        if kind == "const":
            types = [value]
        elif isinstance(arg, ast.Name) and arg.id in self._loop_consts[-1]:
            types = self._loop_consts[-1][arg.id]
        else:
            self.model.unresolved.append(self._use(f"register:{ast.dump(arg)[:40]}", node.lineno))
            return
        handler = "<dynamic>"
        if len(node.args) > 1:
            h = node.args[1]
            if (
                isinstance(h, ast.Attribute)
                and isinstance(h.value, ast.Name)
                and h.value.id == "self"
            ):
                handler = h.attr
            elif isinstance(h, ast.Lambda):
                handler = "<lambda>"
        per_cls = self.model.handler_methods.setdefault(self._cur_cls, {})
        for t in types:
            self.model._add(self.model.registered, self._use(t, node.lineno))
            per_cls.setdefault(t, handler)
            if node.lineno in self.external_lines:
                self.model.external.add(t)

    def _handle_wire(self, node: ast.Call, index: int, table: str) -> None:
        if index < len(node.args):
            kind, value = self._classify(node.args[index])
        elif "type" in {kw.arg for kw in node.keywords}:
            kind, value = self._classify(
                next(kw.value for kw in node.keywords if kw.arg == "type")
            )
        else:
            return
        if kind == "const":
            self.model._add(getattr(self.model, table), self._use(value, node.lineno))
        elif kind == "param":
            fname = self._cur_func[0]
            fwd = _Forwarder(
                method=fname, param=value,
                index=self._cur_func[1].index(value),
                kind=table,
            )
            bucket = self.forwarders.setdefault(fname, [])
            if fwd not in bucket:
                bucket.append(fwd)
        else:
            self.model.unresolved.append(
                self._use(f"{table}:{ast.dump(node.args[index] if index < len(node.args) else node)[:40]}",
                          node.lineno))

    def visit_Compare(self, node: ast.Compare) -> None:
        """Collect ``resp.type == "x"`` / ``in ("x", "y")`` patterns."""
        if (
            isinstance(node.left, ast.Attribute)
            and node.left.attr == "type"
            and len(node.comparators) == 1
        ):
            comp = node.comparators[0]
            values: List[str] = []
            if isinstance(comp, ast.Constant) and isinstance(comp.value, str):
                values = [comp.value]
            elif isinstance(comp, (ast.Tuple, ast.List, ast.Set)):
                values = [
                    e.value for e in comp.elts
                    if isinstance(e, ast.Constant) and isinstance(e.value, str)
                ]
            for v in values:
                self.model._add(self.model.expected, self._use(v, node.lineno))
        self.generic_visit(node)


def _propagate(model: ProtocolModel, forwarders: Dict[str, List[_Forwarder]],
               sites: List[_CallSite]) -> None:
    """Run constant propagation through forwarder call chains to a
    fixpoint (chains are short; the bound is just a safety net)."""
    for _ in range(12):
        changed = False
        for site in sites:
            for fwd in forwarders.get(site.method, []):
                kind, value = site.resolve(fwd.index, fwd.param)
                if kind == "const":
                    table = getattr(model, fwd.kind)
                    use = Use(type=value, cls=site.cls, path=site.path, line=site.line)
                    changed |= model._add(table, use)
                elif kind == "param" and value in site.func_params:
                    new = _Forwarder(
                        method=site.func, param=value,
                        index=site.func_params.index(value),
                        kind=fwd.kind,
                    )
                    bucket = forwarders.setdefault(site.func, [])
                    if new not in bucket:
                        bucket.append(new)
                        changed = True
        if not changed:
            return


def check_sources(
    sources: Iterable[Tuple[str, str]],
) -> ProtocolModel:
    """Analyze ``(rel_path, source)`` pairs as one protocol universe."""
    model = ProtocolModel()
    forwarders: Dict[str, List[_Forwarder]] = {}
    sites: List[_CallSite] = []
    for rel, source in sources:
        external_lines = {
            lineno
            for lineno, text in enumerate(source.splitlines(), start=1)
            if _EXTERNAL_PRAGMA.search(text)
        }
        tree = ast.parse(source)
        _Collector(rel, model, forwarders, sites, external_lines).visit(tree)
    _propagate(model, forwarders, sites)
    return model


def check_tree(root: Path, files: Optional[Iterable[Path]] = None) -> ProtocolModel:
    """Conformance-check every ``*.py`` under the package root."""
    root = Path(root)
    targets = sorted(files) if files is not None else sorted(root.rglob("*.py"))
    return check_sources(
        (p.relative_to(root).as_posix(), p.read_text()) for p in targets
    )
