"""Runtime simulation race detector.

The kernel breaks ties between same-timestamp events by insertion
sequence — deterministic, but *arbitrary*: nothing in the protocol
ordered those events, the heap did.  If two same-time events touch the
same actor, the run's outcome silently depends on that tie-break, and
an innocent refactor that reorders two ``call_later`` lines changes the
digest of every seed.  This module makes that schedule-sensitivity
observable:

* :class:`RaceDetector` hooks :attr:`Simulator.tracer
  <repro.sim.kernel.Simulator.tracer>` (event begin/end) and the
  cluster transport (actor-access attribution): message arrivals and
  actor timer fires are recorded against the kernel event executing
  them.  Two *different* events at the *same* timestamp touching the
  *same* actor are reported as a schedule-sensitive race.
* :func:`perturb_ties` is the confirmation tool: run the same scenario
  under FIFO and LIFO tie-breaking (``Simulator(tie_break="lifo")``)
  and diff the resulting digests.  A digest difference proves the
  outcome depends on tie order.

Attribution detail: a message to a loaded host is *queued* on the
host's CPU at arrival and handled later, but its position in the CPU
queue — hence handler order — is fixed at arrival time, so accesses
are recorded at arrival.  Enable via
:meth:`SimCluster.attach_race_detector
<repro.net.simnet.SimCluster.attach_race_detector>` **before**
``start()`` so timer wrapping covers the boot timers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.sim.kernel import Simulator

__all__ = ["AccessRecord", "RaceReport", "RaceDetector", "PerturbationResult",
           "perturb_ties"]


@dataclass(frozen=True)
class RaceReport:
    """Two same-timestamp events whose order over one actor is fixed
    only by heap insertion sequence."""

    time: float
    actor: str
    first_seq: int
    first_labels: Tuple[str, ...]
    second_seq: int
    second_labels: Tuple[str, ...]

    def describe(self) -> str:
        return (
            f"t={self.time:.9f} actor={self.actor}: "
            f"event#{self.first_seq} {list(self.first_labels)} vs "
            f"event#{self.second_seq} {list(self.second_labels)} "
            "(order fixed only by insertion sequence)"
        )


@dataclass
class AccessRecord:
    """Accesses attributed to one kernel event."""

    seq: int
    actors: Dict[str, Set[str]] = field(default_factory=dict)


class RaceDetector:
    """Same-timestamp conflict tracer (kernel + transport hook)."""

    def __init__(self, max_races: int = 256):
        self.max_races = max_races
        self.races: List[RaceReport] = []
        #: timestamp groups that contained more than one traced event
        self.tied_groups = 0
        self.events_traced = 0
        self._time: Optional[float] = None
        self._current: Optional[AccessRecord] = None
        self._group: List[AccessRecord] = []
        self._group_size = 0

    # -- kernel tracer protocol ----------------------------------------
    def begin_event(self, time: float, seq: int) -> None:
        if self._time is None or time != self._time:
            self._flush_group()
            self._time = time
            self._group_size = 0
        self._group_size += 1
        self._current = AccessRecord(seq=seq)
        self.events_traced += 1

    def end_event(self) -> None:
        cur, self._current = self._current, None
        if cur is not None and cur.actors:
            self._group.append(cur)

    # -- transport hook -------------------------------------------------
    def record_access(self, actor: str, label: str) -> None:
        if self._current is not None:
            self._current.actors.setdefault(actor, set()).add(label)

    # -- analysis --------------------------------------------------------
    def _flush_group(self) -> None:
        group, self._group = self._group, []
        if self._group_size > 1:
            self.tied_groups += 1
        if len(group) < 2 or self._time is None:
            return
        for i in range(len(group)):
            for j in range(i + 1, len(group)):
                a, b = group[i], group[j]
                for actor in sorted(set(a.actors) & set(b.actors)):
                    if len(self.races) >= self.max_races:
                        return
                    self.races.append(RaceReport(
                        time=self._time,
                        actor=actor,
                        first_seq=a.seq,
                        first_labels=tuple(sorted(a.actors[actor])),
                        second_seq=b.seq,
                        second_labels=tuple(sorted(b.actors[actor])),
                    ))

    def finish(self) -> "RaceDetector":
        """Analyze the trailing timestamp group; returns self."""
        self._flush_group()
        self._time = None
        self._group_size = 0
        return self

    def describe(self) -> str:
        self.finish()
        head = (
            f"race detector: {len(self.races)} schedule-sensitive race(s), "
            f"{self.tied_groups} tied timestamp group(s), "
            f"{self.events_traced} events traced"
        )
        return "\n".join([head] + [f"  {r.describe()}" for r in self.races])


@dataclass(frozen=True)
class PerturbationResult:
    """Digest comparison between FIFO and LIFO tie-breaking."""

    baseline: str
    perturbed: str

    @property
    def differs(self) -> bool:
        return self.baseline != self.perturbed

    def describe(self) -> str:
        verdict = (
            "outcome DEPENDS on tied-event order"
            if self.differs
            else "outcome independent of tied-event order"
        )
        return (
            f"{verdict}: fifo={self.baseline[:16]} lifo={self.perturbed[:16]}"
        )


def perturb_ties(scenario: Callable[[Simulator], str]) -> PerturbationResult:
    """Run ``scenario`` under both tie orders and diff its digests.

    ``scenario`` receives a fresh :class:`Simulator`, drives it to
    completion, and returns a digest string of whatever final state
    matters.  Each run gets its own kernel, so the scenario must build
    all of its own state (a closure over a builder function).
    """
    baseline = scenario(Simulator())
    perturbed = scenario(Simulator(tie_break="lifo"))
    return PerturbationResult(baseline=baseline, perturbed=perturbed)
