"""Per-handler control-flow extraction for the flow-control passes.

The flow analyzer (:mod:`repro.analysis.flow`) needs to answer
path-sensitive questions about controlet hot paths — "does every path
out of this busy-flag acquisition release the flag, *including* the RPC
error/timeout callback?" — which the flat read/write summaries of
:mod:`repro.analysis.summaries` cannot express.  This module provides
the missing machinery: a walker that linearizes a method body into
execution *paths* (sequences of :class:`Step` events), forking at
branches and following the asynchronous continuation structure the
actor fabric imposes:

* ``self.call(..., callback=cb)`` / ``self.datalet_call(..., callback=cb)``
  — the callback is inlined **in line** with the emitting path: its
  statements are the path's future, executed at response/timeout time.
* ``self.helper(...)`` — same-class (inheritance-resolved) methods are
  inlined with parameters bound, so closures threaded through helpers
  (``refresh_shard(then=resume)``) keep their identity.
* ``self.set_timer(delay, cb)`` — recorded as a :class:`Step` of kind
  ``defer``; timer continuations run in a later turn, so the flow
  passes treat them as separate discharge sites rather than splicing
  them into the acquiring path (see the defer-discharge rule in
  flow.py).
* closures parked into containers or passed to unresolvable calls are
  inlined optimistically exactly once per path — a continuation handed
  to a drained queue is invoked by whatever pump drains it.

Branch tests are classified **strict** or **lenient**: a test that
reads ``self`` state or a (callback) parameter — the shape of an RPC
error arm — forks the path and every arm must satisfy its obligations;
a test over purely local data (join counters like ``state["left"]``)
forks too, but an arm that bails out early is marked *abandoned* and
exempt, because local-data joins re-fire until the fall-through arm
runs.  This keeps fan-in completion counters from producing false
leaks while still catching ``if err is None: release()``.

Class collection, ancestry and method resolution are shared with the
handler-summary pass (:mod:`repro.analysis.summaries`) so every static
analyzer sees the same class universe.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.analysis.summaries import (
    _ancestry,
    _collect_classes,
)

__all__ = [
    "Step",
    "Path",
    "Closure",
    "PumpBinding",
    "ClassTable",
    "FlowWalker",
    "walk_method",
]

#: fork explosion guard, same order of magnitude as the commit-point
#: analyzer's cap: beyond this many concurrent paths the walker keeps
#: the first ``_PATH_CAP`` (real handlers stay well under it).
_PATH_CAP = 192

#: emitting methods of the actor fabric (``callback=`` = continuation).
_EMITS = {"send", "call", "respond", "forward", "redirect", "datalet_call"}

#: container mutators the flow passes care about.
_APPEND_METHODS = {"append", "extend", "insert", "appendleft"}
_DRAIN_METHODS = {"pop", "popleft", "clear"}


@dataclass
class Step:
    """One observable event on an execution path.

    Kinds: ``flag-set``/``flag-clear`` (busy-token transitions;
    per-key dict flags get an ``[]`` suffix), ``append``/``drain``/
    ``requeue``/``bound`` (queue discipline), ``pump-new``/
    ``pump-push``/``pump-requeue`` (:class:`repro.core.controlet.Pump`
    usage), ``emit``/``respond`` (message out; detail =
    ``primitive:type``), ``defer`` (timer arm; ``closure`` = the
    continuation), ``rid-strip`` (dedup identity dropped from a
    payload), ``done-call`` (a pump issue callable invoking its
    completion continuation), ``attr-assign`` (other self-attribute
    store), ``reenter`` (cycle-guarded re-entry of a frame already on
    the inline stack).
    """

    kind: str
    detail: str = ""
    line: int = 0
    in_callback: bool = False
    file: str = ""
    closure: Optional["Closure"] = None


@dataclass
class Path:
    steps: List[Step] = field(default_factory=list)
    #: ended inside a lenient (local-data join) early-out arm: exempt
    #: from liveness obligations — the join re-fires until the
    #: fall-through arm runs.
    abandoned: bool = False


class Closure:
    """A statically known callable: a local ``def``/``lambda`` or a
    bound self-method reference, with its defining environment."""

    __slots__ = ("node", "env", "name", "file")

    def __init__(self, node: ast.AST, env: Dict[str, Any],
                 name: str = "", file: str = ""):
        self.node = node
        self.env = env
        self.name = name or getattr(node, "name", "<lambda>")
        self.file = file

    def params(self) -> List[str]:
        args = getattr(self.node, "args", None)
        if args is None:
            return []
        return [a.arg for a in args.args if a.arg != "self"]


class _Alias:
    """Local name aliasing a self container attribute."""

    __slots__ = ("attr",)

    def __init__(self, attr: str):
        self.attr = attr


class _CbParam:
    """Marker: name bound as a callback/handler parameter (tests over
    these are strict — they model response/error/timeout arms)."""

    __slots__ = ()


class _DoneParam:
    """Marker: the completion continuation of a pump issue callable;
    invoking it emits a ``done-call`` step."""

    __slots__ = ()


CBPARAM = _CbParam()
DONE = _DoneParam()


@dataclass
class PumpBinding:
    """One ``Pump(...)`` construction site."""

    cls: str
    attr: str
    issue: Optional[Closure]
    line: int
    file: str


class ClassTable:
    """Shared class universe: collection + file attribution."""

    def __init__(self, sources: Iterable[Tuple[str, str]]):
        sources = list(sources)
        self.classes = _collect_classes(sources)
        self.files: Dict[str, str] = {}
        for rel, source in sources:
            tree = ast.parse(source)
            for node in ast.walk(tree):
                if isinstance(node, ast.ClassDef):
                    self.files[node.name] = rel

    def ancestry(self, cls: str) -> List[str]:
        return _ancestry(self.classes, cls)

    def resolve(self, cls: str, method: str):
        """``(funcdef, defining_class)`` along the ancestry, or
        ``(None, None)``."""
        for ancestor in self.ancestry(cls):
            c = self.classes.get(ancestor)
            if c is not None and method in c.methods:
                return c.methods[method], ancestor
        return None, None

    def file_of(self, cls: str) -> str:
        return self.files.get(cls, "<unknown>")


class _Ctx:
    """One in-flight path during the walk."""

    __slots__ = ("steps", "env", "ended", "abandoned", "inlined")

    def __init__(self):
        self.steps: List[Step] = []
        self.env: Dict[str, Any] = {}
        self.ended = False
        self.abandoned = False
        #: closure node ids already spliced into this path (cycle guard).
        self.inlined: set = set()

    def fork(self) -> "_Ctx":
        c = _Ctx()
        c.steps = list(self.steps)
        c.env = dict(self.env)
        c.ended = self.ended
        c.abandoned = self.abandoned
        c.inlined = set(self.inlined)
        return c


def _const_str(node: Optional[ast.expr]) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _arg_or_kw(call: ast.Call, pos: int, kw: str) -> Optional[ast.expr]:
    if len(call.args) > pos:
        return call.args[pos]
    for k in call.keywords:
        if k.arg == kw:
            return k.value
    return None


def _self_attr(node: ast.expr) -> Optional[str]:
    """``self.X`` -> ``X``."""
    if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name) \
            and node.value.id == "self":
        return node.attr
    return None


def _is_empty_container(node: ast.expr) -> bool:
    if isinstance(node, ast.Dict):
        return not node.keys
    if isinstance(node, (ast.List, ast.Set, ast.Tuple)):
        return not node.elts
    return False


def looks_like_flag(attr: str) -> bool:
    """Busy-token attribute names: one-in-flight / armed-timer tokens."""
    lowered = attr.lower()
    return any(tok in lowered for tok in ("busy", "armed", "pending", "inflight"))


class FlowWalker:
    """Path extraction for one method, with interprocedural inlining."""

    def __init__(self, table: ClassTable, cls: str):
        self.table = table
        self.cls = cls
        #: (class, method) frames currently inlined (cycle guard).
        self.active: set = set()
        self.in_callback = False
        self._file = table.file_of(cls)
        #: Pump constructions observed during the walk.
        self.pumps: List[PumpBinding] = []

    # -- entry points ---------------------------------------------------
    def walk(self, funcdef, seed_env: Optional[Dict[str, Any]] = None) -> List[Path]:
        """Linearize a method body into paths."""
        ctx = _Ctx()
        for a in funcdef.args.args:
            if a.arg != "self":
                ctx.env[a.arg] = CBPARAM
        if seed_env:
            ctx.env.update(seed_env)
        frame = (self.cls, getattr(funcdef, "name", "<lambda>"))
        self.active.add(frame)
        try:
            done = self._walk_block(list(funcdef.body), [ctx])
        finally:
            self.active.discard(frame)
        return [Path(steps=c.steps, abandoned=c.abandoned) for c in done]

    def walk_closure(self, closure: Closure,
                     seed_env: Optional[Dict[str, Any]] = None) -> List[Path]:
        """Linearize a closure (deferred continuation / pump issue
        callable) with its captured environment re-seeded."""
        ctx = _Ctx()
        ctx.env = dict(closure.env)
        for p in closure.params():
            ctx.env[p] = CBPARAM
        if seed_env:
            ctx.env.update(seed_env)
        saved_file = self._file
        if closure.file:
            self._file = closure.file
        node = closure.node
        if isinstance(node, ast.Lambda):
            body: List[ast.stmt] = []
            if isinstance(node.body, ast.Call):
                expr = ast.Expr(value=node.body)
                ast.copy_location(expr, node.body)
                body = [expr]
        else:
            body = list(node.body)
        key = (self.cls, closure.name)
        self.active.add(key)
        try:
            done = self._walk_block(body, [ctx])
        finally:
            self.active.discard(key)
            self._file = saved_file
        return [Path(steps=c.steps, abandoned=c.abandoned) for c in done]

    # -- step helper ----------------------------------------------------
    def _step(self, kind: str, detail: str, line: int,
              closure: Optional[Closure] = None) -> Step:
        return Step(kind, detail, line, self.in_callback, self._file, closure)

    # -- statement dispatch ---------------------------------------------
    def _walk_block(self, stmts: List[ast.stmt], ctxs: List[_Ctx]) -> List[_Ctx]:
        for stmt in stmts:
            nxt: List[_Ctx] = []
            for ctx in ctxs:
                if ctx.ended:
                    nxt.append(ctx)
                    continue
                nxt.extend(self._walk_stmt(stmt, ctx))
                if len(nxt) >= _PATH_CAP:
                    nxt = nxt[:_PATH_CAP]
                    break
            ctxs = nxt
        return ctxs

    def _walk_stmt(self, stmt: ast.stmt, ctx: _Ctx) -> List[_Ctx]:
        if isinstance(stmt, ast.Assign):
            return self._do_assign(stmt, ctx)
        if isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            fake = ast.Assign(targets=[stmt.target], value=stmt.value)
            ast.copy_location(fake, stmt)
            return self._do_assign(fake, ctx)
        if isinstance(stmt, ast.AugAssign):
            return [ctx]
        if isinstance(stmt, ast.Delete):
            return self._do_delete(stmt, ctx)
        if isinstance(stmt, ast.Expr):
            value = stmt.value
            if isinstance(value, ast.Await):
                value = value.value
            if isinstance(value, ast.Call):
                return self._do_call(value, ctx)
            return [ctx]
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            ctx.env[stmt.name] = Closure(stmt, dict(ctx.env), stmt.name,
                                         self._file)
            return [ctx]
        if isinstance(stmt, (ast.Return, ast.Raise)):
            out = [ctx]
            if isinstance(stmt, ast.Return) and isinstance(stmt.value, ast.Call):
                out = self._do_call(stmt.value, ctx)
            for c in out:
                c.ended = True
            return out
        if isinstance(stmt, ast.If):
            return self._do_if(stmt, ctx)
        if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
            # loop bodies are traced once: the passes reason about the
            # per-iteration obligations, not iteration counts
            return self._walk_block(list(stmt.body) + list(stmt.orelse), [ctx])
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._walk_block(list(stmt.body), [ctx])
        if isinstance(stmt, ast.Try):
            out = self._walk_block(list(stmt.body), [ctx])
            return self._walk_block(list(stmt.finalbody), out)
        return [ctx]

    # -- assignments -----------------------------------------------------
    def _do_assign(self, stmt: ast.Assign, ctx: _Ctx) -> List[_Ctx]:
        value = stmt.value
        ctxs = [ctx]
        if isinstance(value, ast.Call):
            ctxs = self._do_call(value, ctx, assigned=True)
        out: List[_Ctx] = []
        for c in ctxs:
            for target in stmt.targets:
                if isinstance(target, ast.Tuple) and isinstance(value, ast.Tuple) \
                        and len(target.elts) == len(value.elts):
                    for t, v in zip(target.elts, value.elts):
                        self._assign_one(t, v, stmt, c)
                else:
                    self._assign_one(target, value, stmt, c)
            out.append(c)
        return out

    def _assign_one(self, target: ast.expr, value: ast.expr,
                    stmt: ast.stmt, ctx: _Ctx) -> None:
        line = stmt.lineno
        attr = _self_attr(target)
        if attr is not None:
            self._assign_self_attr(attr, value, line, ctx)
            return
        if isinstance(target, ast.Subscript):
            base_attr = self._container_attr(target.value, ctx)
            if base_attr is None:
                return
            if isinstance(target.slice, ast.Slice):
                lower = target.slice.lower
                if lower is None or (isinstance(lower, ast.Constant)
                                     and lower.value == 0):
                    # queue[:0] = batch — retry-requeue at the front
                    ctx.steps.append(self._step("requeue", base_attr, line))
                return
            if isinstance(value, ast.Constant) and value.value is True \
                    and looks_like_flag(base_attr):
                # per-key flag dict (e.g. _peer_busy[peer_id] = True)
                ctx.steps.append(self._step("flag-set", base_attr + "[]", line))
            elif isinstance(value, ast.Constant) and value.value is False \
                    and looks_like_flag(base_attr):
                ctx.steps.append(self._step("flag-clear", base_attr + "[]", line))
            return
        if isinstance(target, ast.Name):
            src_attr = _self_attr(value)
            if src_attr is not None:
                ctx.env[target.id] = _Alias(src_attr)
                return
            if isinstance(value, ast.Lambda):
                ctx.env[target.id] = Closure(value, dict(ctx.env), target.id,
                                             self._file)
                return
            if isinstance(value, ast.Name) and value.id in ctx.env:
                ctx.env[target.id] = ctx.env[value.id]
                return
            if isinstance(value, ast.Call):
                alias = self._aliasing_call(value, ctx)
                if alias is not None:
                    ctx.env[target.id] = alias
                    return
                if isinstance(value.func, ast.Name) and value.func.id == "Pump":
                    self._record_pump(target.id, value, stmt.lineno, ctx)
                    return
            if isinstance(value, ast.Subscript):
                base_attr = self._container_attr(value.value, ctx)
                if base_attr is not None:
                    ctx.env[target.id] = _Alias(base_attr)
                    return
            ctx.env.pop(target.id, None)

    def _assign_self_attr(self, attr: str, value: ast.expr, line: int,
                          ctx: _Ctx) -> None:
        if isinstance(value, ast.Constant) and looks_like_flag(attr):
            if value.value is True:
                ctx.steps.append(self._step("flag-set", attr, line))
                return
            if value.value is False:
                ctx.steps.append(self._step("flag-clear", attr, line))
                return
        if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
            if value.func.id == "Pump":
                self._record_pump(attr, value, line, ctx)
                return
            if value.func.id == "deque" and any(
                    k.arg == "maxlen" and not (
                        isinstance(k.value, ast.Constant)
                        and k.value.value is None)
                    for k in value.keywords):
                ctx.steps.append(self._step("bound", attr, line))
                return
        if _is_empty_container(value):
            # reassignment-to-empty: the swap half of a swap-drain
            # (``batch, self.q = self.q, []``); flow.py ignores the ones
            # coming from ``__init__`` construction
            ctx.steps.append(self._step("drain", attr, line))
            return
        ctx.steps.append(self._step("attr-assign", attr, line))

    def _record_pump(self, attr: str, call: ast.Call, line: int,
                     ctx: _Ctx) -> None:
        issue = self._resolve_callable(_arg_or_kw(call, 0, "issue"), ctx)
        self.pumps.append(PumpBinding(
            cls=self.cls, attr=attr, issue=issue, line=line, file=self._file))
        ctx.steps.append(self._step("pump-new", attr, line))

    # -- deletes ---------------------------------------------------------
    def _do_delete(self, stmt: ast.Delete, ctx: _Ctx) -> List[_Ctx]:
        for target in stmt.targets:
            if not isinstance(target, ast.Subscript):
                continue
            base_attr = self._container_attr(target.value, ctx)
            if base_attr is not None:
                ctx.steps.append(self._step("drain", base_attr, stmt.lineno))
            elif _const_str(target.slice) == "rid":
                ctx.steps.append(self._step("rid-strip", "", stmt.lineno))
        return [ctx]

    # -- calls -----------------------------------------------------------
    def _container_attr(self, node: ast.expr, ctx: _Ctx) -> Optional[str]:
        """Resolve an expression back to a self container attribute,
        chasing local aliases and subscript chains."""
        while isinstance(node, ast.Subscript):
            node = node.value
        attr = _self_attr(node)
        if attr is not None:
            return attr
        if isinstance(node, ast.Name):
            bound = ctx.env.get(node.id)
            if isinstance(bound, _Alias):
                return bound.attr
        return None

    def _aliasing_call(self, call: ast.Call, ctx: _Ctx) -> Optional[_Alias]:
        """``self.X.setdefault(...)`` / ``self.X.get(...)`` expose the
        container (or an element sharing its lifetime) under a local."""
        func = call.func
        if isinstance(func, ast.Attribute) and func.attr in ("setdefault", "get"):
            base_attr = _self_attr(func.value)
            if base_attr is not None:
                return _Alias(base_attr)
        return None

    def _resolve_callable(self, node: Optional[ast.expr],
                          ctx: _Ctx) -> Optional[Closure]:
        if node is None:
            return None
        if isinstance(node, ast.Lambda):
            return Closure(node, dict(ctx.env), file=self._file)
        if isinstance(node, ast.Name):
            bound = ctx.env.get(node.id)
            if isinstance(bound, Closure):
                return bound
            return None
        attr = _self_attr(node)
        if attr is not None:
            funcdef, owner = self.table.resolve(self.cls, attr)
            if funcdef is not None:
                return Closure(funcdef, {}, attr, self.table.file_of(owner))
        return None

    def _do_call(self, call: ast.Call, ctx: _Ctx,
                 assigned: bool = False) -> List[_Ctx]:
        func = call.func
        # self.<method>(...) -----------------------------------------------
        attr = _self_attr(func) if isinstance(func, ast.Attribute) else None
        if attr is not None:
            if attr in _EMITS:
                return self._do_emit(attr, call, ctx)
            if attr == "set_timer":
                cb = self._resolve_callable(_arg_or_kw(call, 1, "callback"), ctx)
                ctx.steps.append(self._step("defer", attr, call.lineno, cb))
                return [ctx]
            return self._do_self_call(attr, call, ctx)
        # self.<attr>.<method>(...) ----------------------------------------
        if isinstance(func, ast.Attribute):
            base_attr = self._container_attr(func.value, ctx)
            if base_attr is not None:
                return self._do_container_call(base_attr, func.attr, call, ctx)
            # local.pop("rid") — dedup identity stripped off a payload
            if func.attr == "pop" and call.args \
                    and _const_str(call.args[0]) == "rid":
                ctx.steps.append(self._step("rid-strip", "", call.lineno))
                return [ctx]
            return self._inline_closure_args(call, ctx)
        # plain-name call ---------------------------------------------------
        if isinstance(func, ast.Name):
            bound = ctx.env.get(func.id)
            if isinstance(bound, _DoneParam):
                ctx.steps.append(self._step("done-call", func.id, call.lineno))
                return [ctx]
            if isinstance(bound, Closure):
                return self._inline(bound, call, ctx, as_callback=False)
        return self._inline_closure_args(call, ctx)

    def _do_emit(self, kind: str, call: ast.Call, ctx: _Ctx) -> List[_Ctx]:
        if kind == "datalet_call":
            msg_type = _const_str(_arg_or_kw(call, 0, "type"))
        else:
            msg_type = _const_str(_arg_or_kw(call, 1, "type"))
        step_kind = "respond" if kind == "respond" else "emit"
        cb_expr = next((k.value for k in call.keywords if k.arg == "callback"),
                       None)
        detail = f"{kind}:{msg_type or '?'}" + ("+cb" if cb_expr else "")
        ctx.steps.append(self._step(step_kind, detail, call.lineno))
        cb = self._resolve_callable(cb_expr, ctx)
        if cb is None:
            return [ctx]
        # splice the response/timeout continuation into the path
        return self._inline(cb, None, ctx, as_callback=True)

    def _do_container_call(self, attr: str, method: str, call: ast.Call,
                           ctx: _Ctx) -> List[_Ctx]:
        line = call.lineno
        if method in _APPEND_METHODS:
            ctx.steps.append(self._step("append", attr, line))
            # a continuation parked into a drained container is invoked
            # by whatever drains it: splice it in optimistically
            return self._inline_closure_args(call, ctx)
        if method in _DRAIN_METHODS:
            ctx.steps.append(self._step("drain", attr, line))
            return [ctx]
        if method == "push":
            ctx.steps.append(self._step("pump-push", attr, line))
            return self._inline_closure_args(call, ctx)
        if method == "requeue_front":
            ctx.steps.append(self._step("pump-requeue", attr, line))
            return [ctx]
        if method == "kick":
            return [ctx]
        # unknown container/object method: follow any closures handed in
        return self._inline_closure_args(call, ctx)

    def _do_self_call(self, method: str, call: ast.Call, ctx: _Ctx) -> List[_Ctx]:
        funcdef, owner = self.table.resolve(self.cls, method)
        if funcdef is None:
            return self._inline_closure_args(call, ctx)
        if (self.cls, method) in self.active or (owner, method) in self.active:
            ctx.steps.append(self._step("reenter", method, call.lineno))
            return [ctx]
        # bind parameters: closures and container aliases keep identity
        env: Dict[str, Any] = {}
        params = [a.arg for a in funcdef.args.args if a.arg != "self"]
        supplied: List[Tuple[str, ast.expr]] = []
        for i, arg in enumerate(call.args):
            if i < len(params):
                supplied.append((params[i], arg))
        for k in call.keywords:
            if k.arg is not None and k.arg in params:
                supplied.append((k.arg, k.value))
        for name, expr in supplied:
            resolved = self._resolve_callable(expr, ctx)
            if resolved is not None:
                env[name] = resolved
                continue
            src_attr = _self_attr(expr)
            if src_attr is not None:
                env[name] = _Alias(src_attr)
            elif isinstance(expr, ast.Name) and expr.id in ctx.env:
                env[name] = ctx.env[expr.id]
        self.active.add((self.cls, method))
        self.active.add((owner, method))
        saved_file = self._file
        self._file = self.table.file_of(owner)
        try:
            saved_env = ctx.env
            ctx.env = dict(env)
            for p in params:
                ctx.env.setdefault(p, CBPARAM)
            done = self._walk_block(list(funcdef.body), [ctx])
            out = []
            for c in done:
                c.env = dict(saved_env)
                c.ended = False  # the helper's return ends the helper, not us
                out.append(c)
        finally:
            self.active.discard((self.cls, method))
            self.active.discard((owner, method))
            self._file = saved_file
        return out

    def _inline(self, closure: Closure, call: Optional[ast.Call], ctx: _Ctx,
                as_callback: bool) -> List[_Ctx]:
        key = id(closure.node)
        if key in ctx.inlined:
            ctx.steps.append(self._step("reenter", closure.name,
                                        getattr(closure.node, "lineno", 0)))
            return [ctx]
        ctx.inlined.add(key)
        saved_env = ctx.env
        saved_cb = self.in_callback
        saved_file = self._file
        child_env = dict(closure.env)
        params = closure.params()
        if call is not None:
            for i, arg in enumerate(call.args):
                if i >= len(params):
                    break
                resolved = self._resolve_callable(arg, ctx)
                if resolved is not None:
                    child_env[params[i]] = resolved
                elif isinstance(arg, ast.Name) and arg.id in ctx.env:
                    child_env[params[i]] = ctx.env[arg.id]
                else:
                    child_env[params[i]] = CBPARAM
            for p in params:
                child_env.setdefault(p, CBPARAM)
        else:
            for p in params:
                child_env[p] = CBPARAM
        ctx.env = child_env
        if as_callback:
            self.in_callback = True
        if closure.file:
            self._file = closure.file
        node = closure.node
        if isinstance(node, ast.Lambda):
            body: List[ast.stmt] = []
            if isinstance(node.body, ast.Call):
                expr = ast.Expr(value=node.body)
                ast.copy_location(expr, node.body)
                body = [expr]
        else:
            body = list(node.body)
        done = self._walk_block(body, [ctx])
        out = []
        for c in done:
            c.env = dict(saved_env)
            c.ended = False  # the outer frame resumes after the splice
            out.append(c)
        self.in_callback = saved_cb
        self._file = saved_file
        return out

    def _inline_closure_args(self, call: ast.Call, ctx: _Ctx) -> List[_Ctx]:
        """Optimistically splice closure arguments of an opaque call: a
        continuation handed to unknown machinery is assumed to run."""
        closures: List[Closure] = []

        def collect(expr: ast.expr) -> None:
            if isinstance(expr, (ast.Tuple, ast.List)):
                for e in expr.elts:
                    collect(e)
                return
            if isinstance(expr, ast.Name):
                bound = ctx.env.get(expr.id)
                if isinstance(bound, Closure):
                    closures.append(bound)
                elif isinstance(bound, _DoneParam):
                    # handing the done continuation onward counts as
                    # discharging it (the receiver owns it now)
                    ctx.steps.append(self._step("done-call", expr.id,
                                                call.lineno))
            elif isinstance(expr, ast.Lambda):
                closures.append(Closure(expr, dict(ctx.env), file=self._file))

        for arg in call.args:
            collect(arg)
        for k in call.keywords:
            collect(k.value)
        ctxs = [ctx]
        for closure in closures:
            nxt: List[_Ctx] = []
            for c in ctxs:
                nxt.extend(self._inline(closure, None, c, as_callback=True))
            ctxs = nxt
        return ctxs

    # -- branching -------------------------------------------------------
    def _do_if(self, stmt: ast.If, ctx: _Ctx) -> List[_Ctx]:
        pruned = self._prune_known_callable(stmt.test, ctx)
        if pruned is not None:
            arm = stmt.body if pruned else stmt.orelse
            return self._walk_block(list(arm), [ctx])
        strict = self._is_strict_test(stmt.test, ctx)
        other = ctx.fork()
        body_ctxs = self._walk_block(list(stmt.body), [ctx])
        else_ctxs = self._walk_block(list(stmt.orelse), [other])
        if not strict:
            # local-data join (completion counters): an arm that bails
            # out early re-fires later; only fall-through paths carry
            # liveness obligations
            for c in body_ctxs + else_ctxs:
                if c.ended:
                    c.abandoned = True
        return body_ctxs + else_ctxs

    def _prune_known_callable(self, test: ast.expr,
                              ctx: _Ctx) -> Optional[bool]:
        """``then is not None`` over an env-bound closure is decidable:
        take only the arm where the continuation exists."""
        if isinstance(test, ast.Compare) and len(test.ops) == 1 \
                and isinstance(test.comparators[0], ast.Constant) \
                and test.comparators[0].value is None \
                and isinstance(test.left, ast.Name) \
                and isinstance(ctx.env.get(test.left.id),
                               (Closure, _DoneParam)):
            if isinstance(test.ops[0], ast.IsNot):
                return True
            if isinstance(test.ops[0], ast.Is):
                return False
        return None

    def _is_strict_test(self, test: ast.expr, ctx: _Ctx) -> bool:
        for node in ast.walk(test):
            if _self_attr(node) is not None:
                return True
            if isinstance(node, ast.Name) \
                    and isinstance(ctx.env.get(node.id), _CbParam):
                return True
        return False


def walk_method(table: ClassTable, cls: str, funcdef,
                seed_env: Optional[Dict[str, Any]] = None,
                ) -> Tuple[List[Path], List[PumpBinding]]:
    """Walk one method in the dispatch context of ``cls``; returns the
    linearized paths and any Pump constructions encountered."""
    walker = FlowWalker(table, cls)
    paths = walker.walk(funcdef, seed_env)
    return paths, walker.pumps
