"""Static + runtime correctness tooling for the reproduction.

Three cooperating passes guard the properties the rest of the repo
relies on but nothing else enforces:

* :mod:`repro.analysis.lint` — AST determinism linter (wall clock,
  global/ad-hoc RNG, unordered set iteration, ``hash()``/``id()``
  ordering in protocol code);
* :mod:`repro.analysis.conformance` — static exhaustiveness check of
  the string-typed actor protocol (sent-but-never-handled,
  registered-but-never-sent, expected-response-missing);
* :mod:`repro.analysis.races` — opt-in runtime detector for
  same-timestamp events whose order over one actor is fixed only by
  heap insertion sequence, plus a tie-order perturbation helper;
* :mod:`repro.analysis.commitpoints` — static commit-point analysis of
  the write paths (ack-before-durable / ack-before-replication), whose
  waiver table doubles as the per-combo durability contract consumed by
  the chaos runner and the recovery-aware model checker;
* :mod:`repro.analysis.flow` — path-sensitive flow-control passes over
  the controlet hot paths (pump-liveness, backpressure,
  retry-idempotency, config-epoch fencing), built on the
  :mod:`repro.analysis.cfg` walker that inlines RPC callbacks and
  timer continuations; seeded must-fail defects live in
  :mod:`repro.analysis.flowdefects`.

On top of those sit the model-checking modules (imported directly, not
re-exported here, so ``import repro.analysis`` stays light):

* :mod:`repro.analysis.summaries` — static per-handler read/write
  footprints, the commutativity evidence for partial-order reduction;
* :mod:`repro.analysis.statespace` — the controlled-scheduler cluster,
  scenario scope bounds and checker clients;
* :mod:`repro.analysis.explore` — exhaustive DFS with sleep sets +
  fingerprint pruning, counterexample traces and their replayer.

CLI front-ends: ``bespokv lint`` and ``bespokv check`` (see
:mod:`repro.cli`); lint, conformance and a small-scope check smoke also
run in CI before the test and soak jobs.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional

from repro.analysis.commitpoints import (
    CONTRACTS,
    CommitContract,
    Waiver,
    ack_durable_for,
    analyze_sources,
    analyze_tree,
    contract_for,
)
from repro.analysis.conformance import ProtocolModel, check_sources, check_tree
from repro.analysis.flow import (
    FLOW_INJECTION_SOURCES,
    FLOW_RULES,
    FLOW_WAIVERS,
    analyze_flow_sources,
    analyze_flow_tree,
)
from repro.analysis.findings import (
    FINDINGS_SCHEMA,
    Finding,
    findings_to_json,
    format_findings,
    format_github,
    summarize,
)
from repro.analysis.lint import (
    DEFAULT_ALLOWLIST,
    PROTOCOL_PREFIXES,
    lint_source,
    lint_tree,
)
from repro.analysis.races import (
    PerturbationResult,
    RaceDetector,
    RaceReport,
    perturb_ties,
)

__all__ = [
    "FINDINGS_SCHEMA",
    "Finding",
    "findings_to_json",
    "format_findings",
    "format_github",
    "summarize",
    "lint_source",
    "lint_tree",
    "DEFAULT_ALLOWLIST",
    "PROTOCOL_PREFIXES",
    "ProtocolModel",
    "check_sources",
    "check_tree",
    "CONTRACTS",
    "CommitContract",
    "Waiver",
    "ack_durable_for",
    "analyze_sources",
    "analyze_tree",
    "contract_for",
    "FLOW_INJECTION_SOURCES",
    "FLOW_RULES",
    "FLOW_WAIVERS",
    "analyze_flow_sources",
    "analyze_flow_tree",
    "RaceDetector",
    "RaceReport",
    "PerturbationResult",
    "perturb_ties",
    "run_lint",
    "package_root",
]


def package_root() -> Path:
    """Directory of the installed ``repro`` package (the lint target)."""
    import repro

    return Path(repro.__file__).resolve().parent


def run_lint(root: Optional[Path] = None, conformance: bool = True,
             flow: bool = True) -> List[Finding]:
    """Run the determinism linter, the commit-point pass, the flow
    passes, and (optionally) the protocol checker over one package
    tree; returns every finding, suppressed included."""
    root = package_root() if root is None else Path(root)
    findings = lint_tree(root)
    findings.extend(analyze_tree(root))
    if flow:
        findings.extend(analyze_flow_tree(root))
    if conformance:
        findings.extend(check_tree(root).findings())
    return findings
