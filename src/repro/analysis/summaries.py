"""Static handler summaries: which message types commute.

The model checker (:mod:`repro.analysis.explore`) explores interleavings
of message deliveries.  Two deliveries to **different** actors always
commute in this framework (a handler mutates only its own actor's state
and *appends* sends, which are order-insensitive as a multiset).  Two
deliveries to the **same** actor commute only if their handlers touch
disjoint slices of the actor's state — e.g. ``get`` (reads nothing on a
controlet, forwards to the datalet) commutes with ``seq_probe`` (reads
``_seq``), but two ``replicate`` batches do not (both advance
``_stream``).

This pass computes, per actor class and per handler method, the set of
``self.*`` attributes **read** and **written** (transitively through
same-class helper calls, including nested callback closures — a
callback's accesses happen at a later event, but charging them to the
registering handler only makes the summary more conservative, never
less sound).  Handlers whose footprint cannot be bounded (``self``
escapes into an external call, a ``<lambda>``/``<dynamic>``
registration) are marked opaque and commute with nothing.

Commutativity rule for types ``a``, ``b`` on one class::

    W(a) ∩ (R(b) ∪ W(b)) = ∅  and  W(b) ∩ (R(a) ∪ W(a)) = ∅

with ``stats`` (pure accounting, excluded from state fingerprints too)
ignored on both sides.  The message-type→method pairing comes from the
conformance checker's ``handler_methods`` table, so the two static
passes stay in sync.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.conformance import check_sources, check_tree

__all__ = [
    "DATALET_ATTR",
    "DATALET_READ_OPS",
    "HandlerFootprint",
    "ClassSummary",
    "SummaryTable",
    "build_summaries",
    "datalet_footprint",
]

#: attributes that never count toward conflicts.  ``stats`` is pure
#: accounting (state fingerprints exclude it for the same reason).  The
#: ``_rid_*`` dedup tables are quiescent under the model checker: its
#: scripted clients never stamp request ids, so ``begin_write`` returns
#: before touching them and reordering deliveries cannot change them —
#: counting them would make every pair of write handlers conflict for
#: state that provably never moves during exploration.
IGNORED_ATTRS = {"stats", "_rid_done", "_rid_order", "_rid_pending"}

#: self-methods that emit messages / arm timers: order-insensitive
#: effects (multiset append), not state conflicts.  ``datalet_call`` is
#: here too — its *framework plumbing* is an emit — but its **effect on
#: the colocated datalet** is charged separately (see DATALET_ATTR):
#: under the model checker a colocated engine call executes
#: synchronously inside the handler, so it is very much part of the
#: handler's footprint.
_EMIT_METHODS = {
    "send", "call", "respond", "forward", "redirect", "set_timer",
    "datalet_call", "emit", "loop_phase", "now",
}

#: pseudo-attribute standing for "the colocated datalet's stored data".
#: Handlers that issue ``datalet_call`` read or write it depending on
#: the engine op; the explorer gives *direct* deliveries to a datalet a
#: synthetic footprint over the same token, so controlet-vs-datalet
#: conflicts on one host compare in a shared vocabulary.
DATALET_ATTR = "<datalet>"

#: engine ops that only read stored data (everything else mutates —
#: including unknown/dynamic op names, conservatively).
DATALET_READ_OPS = {"get", "scan", "snapshot", "stats"}

#: constructors a bare ``self`` may escape into without making the
#: handler opaque (see ``_MethodScanner.visit_Call``).
_SELF_SAFE_CALLEES = {"Request"}


@dataclass
class HandlerFootprint:
    """Transitive read/write sets of one handler method."""

    method: str
    reads: Set[str] = field(default_factory=set)
    writes: Set[str] = field(default_factory=set)
    #: True when the footprint cannot be statically bounded.
    opaque: bool = False

    def conflicts(self, other: "HandlerFootprint") -> bool:
        if self.opaque or other.opaque:
            return True
        w1, w2 = self.writes - IGNORED_ATTRS, other.writes - IGNORED_ATTRS
        r1, r2 = self.reads - IGNORED_ATTRS, other.reads - IGNORED_ATTRS
        return bool(w1 & (r2 | w2)) or bool(w2 & (r1 | w1))


@dataclass
class ClassSummary:
    """Per-actor-class commutativity oracle."""

    cls: str
    #: message type -> footprint of its (transitively resolved) handler.
    handlers: Dict[str, HandlerFootprint] = field(default_factory=dict)

    def footprint(self, msg_type: str) -> Optional[HandlerFootprint]:
        """Footprint of the handler bound to ``msg_type`` (None = no
        statically known binding: treat as conflicting with everything)."""
        return self.handlers.get(msg_type)

    def commutes(self, type_a: str, type_b: str) -> bool:
        """True only when reordering deliveries of ``type_a``/``type_b``
        to one instance of this class provably reaches the same state."""
        fa = self.handlers.get(type_a)
        fb = self.handlers.get(type_b)
        if fa is None or fb is None:
            return False
        return not fa.conflicts(fb)


class SummaryTable:
    """All class summaries, with MRO-style lookup by class name chain."""

    def __init__(self, classes: Dict[str, ClassSummary]):
        self.classes = classes

    def for_class_chain(self, names: Iterable[str]) -> ClassSummary:
        """Merge summaries along an MRO chain (most-derived first): a
        subclass registration shadows the base's for the same type."""
        merged = ClassSummary(cls="+".join(names))
        for name in names:
            summary = self.classes.get(name)
            if summary is None:
                continue
            for t, fp in summary.handlers.items():
                merged.handlers.setdefault(t, fp)
        return merged

    def describe(self) -> str:
        lines = []
        for cls in sorted(self.classes):
            summary = self.classes[cls]
            for t in sorted(summary.handlers):
                fp = summary.handlers[t]
                shape = "opaque" if fp.opaque else (
                    f"R={sorted(fp.reads - IGNORED_ATTRS)} "
                    f"W={sorted(fp.writes - IGNORED_ATTRS)}"
                )
                lines.append(f"{cls}.{fp.method} [{t}]: {shape}")
        return "\n".join(lines)


#: methods of :class:`repro.core.controlet.Pump` that run the bound
#: issue callable synchronously (push/kick drain inline when idle).
_PUMP_DRIVERS = {"push", "kick", "requeue_front"}


class _MethodScanner(ast.NodeVisitor):
    """Direct (non-transitive) footprint of one method body."""

    def __init__(self, pumps: Optional[Dict[str, str]] = None) -> None:
        self.reads: Set[str] = set()
        self.writes: Set[str] = set()
        self.calls: Set[str] = set()  # self.<method>() invocations
        #: ``self.<attr> = Pump(self.<issue>)`` bindings for this class:
        #: driving the pump runs the issue callable (synchronously when
        #: the pump is idle), so its footprint belongs to the driver.
        self.pumps = pumps or {}
        self.opaque = False

    def _is_self(self, node: ast.expr) -> bool:
        return isinstance(node, ast.Name) and node.id == "self"

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if self._is_self(node.value):
            if isinstance(node.ctx, (ast.Store, ast.Del)):
                self.writes.add(node.attr)
            else:
                self.reads.add(node.attr)
        self.generic_visit(node)

    def _scan_datalet_call(self, node: ast.Call) -> None:
        """Charge a ``self.datalet_call(op, ...)`` to the ``<datalet>``
        pseudo-attribute: colocated engine calls execute synchronously
        under the checker, so the engine op belongs to the handler's
        footprint (a remote target makes this an over-approximation —
        conservative in the safe direction)."""
        op = None
        if node.args and isinstance(node.args[0], ast.Constant) \
                and isinstance(node.args[0].value, str):
            op = node.args[0].value
        else:
            for kw in node.keywords:
                if kw.arg == "type" and isinstance(kw.value, ast.Constant) \
                        and isinstance(kw.value.value, str):
                    op = kw.value.value
        if op in DATALET_READ_OPS:
            self.reads.add(DATALET_ATTR)
        elif op is not None:
            self.writes.add(DATALET_ATTR)
        else:  # dynamic op name: could be anything
            self.reads.add(DATALET_ATTR)
            self.writes.add(DATALET_ATTR)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and self._is_self(func.value):
            # self.method(...) — resolved transitively by the builder
            if func.attr == "datalet_call":
                self._scan_datalet_call(node)
            if func.attr not in _EMIT_METHODS:
                self.calls.add(func.attr)
            self.reads.discard(func.attr)
        elif isinstance(func, ast.Attribute) and isinstance(func.value, ast.Attribute) \
                and self._is_self(func.value.value):
            # self.attr.method(...): a mutating container call writes the
            # attribute; we cannot tell mutators from pure reads reliably,
            # so count it as BOTH read and write (conservative).
            self.reads.add(func.value.attr)
            self.writes.add(func.value.attr)
            if func.value.attr in self.pumps and func.attr in _PUMP_DRIVERS:
                self.calls.add(self.pumps[func.value.attr])
        # bare self passed as an argument escapes the analysis entirely —
        # except into known-safe constructors: a Request only reaches
        # back through ``respond``/``_complete_request`` (an emit plus
        # the ignored ``_rid_*`` tables), so its footprint adds nothing.
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            if self._is_self(arg):
                if isinstance(func, ast.Name) and func.id in _SELF_SAFE_CALLEES:
                    continue
                self.opaque = True
        self.generic_visit(node)


@dataclass
class _ClassAst:
    name: str
    bases: List[str]
    methods: Dict[str, ast.AST]


def _collect_classes(sources: Iterable[Tuple[str, str]]) -> Dict[str, _ClassAst]:
    out: Dict[str, _ClassAst] = {}
    for _rel, source in sources:
        tree = ast.parse(source)
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            bases = [
                b.id if isinstance(b, ast.Name) else getattr(b, "attr", "")
                for b in node.bases
            ]
            methods = {
                item.name: item
                for item in node.body
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            out[node.name] = _ClassAst(node.name, bases, methods)
    return out


def _resolve_method(classes: Dict[str, _ClassAst], cls: str, name: str):
    """Walk the (name-based) base-class chain for a method definition."""
    seen: Set[str] = set()
    stack = [cls]
    while stack:
        cur = stack.pop(0)
        if cur in seen or cur not in classes:
            continue
        seen.add(cur)
        if name in classes[cur].methods:
            return classes[cur].methods[name]
        stack.extend(classes[cur].bases)
    return None


def _pump_bindings(classes: Dict[str, _ClassAst], cls: str) -> Dict[str, str]:
    """``attr -> issue method`` for every ``self.<attr> = Pump(self.<m>)``
    along the ancestry (the canonical one-in-flight drain helper from
    core/controlet.py).  Issue callables that are not plain self-method
    references (e.g. local closures) resolve to nothing here — their
    effects are already folded in because the scanner visits nested
    defs — so only the cross-method indirection needs the table."""
    out: Dict[str, str] = {}
    for ancestor in _ancestry(classes, cls):
        if ancestor not in classes:
            continue
        for node in classes[ancestor].methods.values():
            for n in ast.walk(node):
                if not (isinstance(n, ast.Assign) and isinstance(n.value, ast.Call)
                        and isinstance(n.value.func, ast.Name)
                        and n.value.func.id == "Pump"):
                    continue
                issue = n.value.args[0] if n.value.args else next(
                    (kw.value for kw in n.value.keywords if kw.arg == "issue"),
                    None,
                )
                if not (isinstance(issue, ast.Attribute)
                        and isinstance(issue.value, ast.Name)
                        and issue.value.id == "self"):
                    continue
                for tgt in n.targets:
                    if isinstance(tgt, ast.Attribute) \
                            and isinstance(tgt.value, ast.Name) \
                            and tgt.value.id == "self":
                        out.setdefault(tgt.attr, issue.attr)
    return out


def _footprint(
    classes: Dict[str, _ClassAst],
    cls: str,
    method: str,
    cache: Dict[Tuple[str, str], HandlerFootprint],
    stack: Set[Tuple[str, str]],
    pumps: Optional[Dict[str, str]] = None,
) -> HandlerFootprint:
    key = (cls, method)
    if key in cache:
        return cache[key]
    if key in stack:  # recursion (retry loops): already accounted
        return HandlerFootprint(method=method)
    node = _resolve_method(classes, cls, method)
    fp = HandlerFootprint(method=method)
    if node is None:
        fp.opaque = True
        cache[key] = fp
        return fp
    if pumps is None:
        pumps = _pump_bindings(classes, cls)
    scanner = _MethodScanner(pumps)
    # scan the whole body *including* nested callback closures: their
    # accesses happen at later events, and folding them in only widens
    # the footprint (conservative in the right direction)
    for item in ast.iter_child_nodes(node):
        scanner.visit(item)
    fp.reads |= scanner.reads
    fp.writes |= scanner.writes
    fp.opaque |= scanner.opaque
    stack.add(key)
    for callee in sorted(scanner.calls):
        sub = _footprint(classes, cls, callee, cache, stack, pumps)
        fp.reads |= sub.reads
        fp.writes |= sub.writes
        fp.opaque |= sub.opaque
    stack.discard(key)
    cache[key] = fp
    return fp


def _ancestry(classes: Dict[str, _ClassAst], cls: str) -> List[str]:
    """Name-based base chain, most-derived first (approximate MRO)."""
    order: List[str] = []
    seen: Set[str] = set()
    stack = [cls]
    while stack:
        cur = stack.pop(0)
        if cur in seen:
            continue
        seen.add(cur)
        order.append(cur)
        if cur in classes:
            stack.extend(classes[cur].bases)
    return order


def build_from_sources(sources: List[Tuple[str, str]]) -> SummaryTable:
    model = check_sources(sources)
    classes = _collect_classes(sources)
    cache: Dict[Tuple[str, str], HandlerFootprint] = {}
    table: Dict[str, ClassSummary] = {}
    for cls in sorted(classes):
        # a handler registered by a base class but *overridden* in a
        # subclass (or dispatching to overridden hooks, e.g. Controlet's
        # _client_op -> handle_put) must be summarized in the context of
        # the concrete class, so inherit every ancestor's bindings and
        # resolve methods against ``cls`` itself
        bindings: Dict[str, str] = {}
        for ancestor in _ancestry(classes, cls):
            for msg_type, method in model.handler_methods.get(ancestor, {}).items():
                bindings.setdefault(msg_type, method)
        if not bindings:
            continue
        summary = ClassSummary(cls=cls)
        for msg_type, method in sorted(bindings.items()):
            if method in ("<lambda>", "<dynamic>"):
                summary.handlers[msg_type] = HandlerFootprint(
                    method=method, opaque=True
                )
                continue
            summary.handlers[msg_type] = _footprint(
                classes, cls, method, cache, set()
            )
        table[cls] = summary
    return SummaryTable(table)


def datalet_footprint(msg_type: str) -> HandlerFootprint:
    """Synthetic footprint for a message delivered *directly* to a
    datalet actor (remote engine calls: recovery snapshots, AA fan-out).
    Expressed over :data:`DATALET_ATTR` so it conflicts correctly with a
    colocated controlet handler touching the same engine."""
    fp = HandlerFootprint(method=f"datalet:{msg_type}")
    if msg_type in DATALET_READ_OPS:
        fp.reads.add(DATALET_ATTR)
    else:
        fp.writes.add(DATALET_ATTR)
    return fp


def build_summaries(root: Optional[Path] = None) -> SummaryTable:
    """Summaries for the whole installed ``repro`` package (default) or
    an explicit source root."""
    if root is None:
        from repro.analysis import package_root

        root = package_root()
    root = Path(root)
    # reuse the conformance file walk so both passes see the same universe
    _ = check_tree  # (kept importable for callers that want the model too)
    sources = [
        (p.relative_to(root).as_posix(), p.read_text())
        for p in sorted(root.rglob("*.py"))
    ]
    return build_from_sources(sources)
