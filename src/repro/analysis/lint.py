"""AST-based determinism linter.

Every simulation in this repo is supposed to be bit-for-bit replayable
from its seed (the property the chaos oracle and the soak digests pin
down).  That only holds while protocol code draws *all* nondeterminism
from the simulated clock and the :class:`~repro.sim.rng.RngRegistry`.
This linter walks the package source and flags the ways that contract
historically gets broken:

``wallclock``
    Reads of the host clock (``time.time``, ``time.monotonic``,
    ``datetime.now`` ...) or wall sleeps.  Simulation code must use
    ``actor.now()`` / ``sim.now``.
``global-rng``
    Draws from the process-global RNG (``random.random`` and friends),
    ``os.urandom``, ``uuid.uuid1/uuid4``, ``secrets`` — all of which
    vary run to run regardless of the seed.
``adhoc-rng``
    ``random.Random(<seed>)`` constructed inside protocol code.  Even a
    constant seed gives every instance the *same* stream and decouples
    it from the run seed; protocol code must take a named stream from
    the cluster's :class:`~repro.sim.rng.RngRegistry` instead.  Scoped
    to protocol directories — workload generators may build seeded
    generators freely.
``set-iteration``
    Iteration over a value inferred to be a ``set``/``frozenset`` in
    protocol code.  Set order depends on insertion history and element
    hashes; wrap in ``sorted(...)``.  Order-insensitive consumers
    (``sorted``, ``min``, ``len`` ...) are not flagged.
``hash-ordering``
    Calls to builtin ``hash()`` / ``id()`` in protocol code.  Both vary
    across processes (``PYTHONHASHSEED``, allocator layout); anything
    ordering or seeding off them breaks cross-run replay.  Use
    :func:`repro.hashing.stable_hash`.
``fs-ordering``
    Directory listing with no defined order in protocol code
    (``os.listdir``, ``os.scandir``, ``os.walk``, ``glob.glob``/
    ``iglob``, ``Path.iterdir``/``.glob``/``.rglob``).  Listing order
    is filesystem-dependent, so WAL replay or durable-store iteration
    driven by it diverges across machines; wrap the listing directly in
    ``sorted(...)``.  (The simulated
    :class:`~repro.sim.durable.DurableStore` iterates sorted names for
    exactly this reason.)
``mutable-payload``
    A local name aliased into a sent payload (bare argument to
    ``send``/``call``/``respond``/``datalet_call``/..., or a value
    inside a dict/list literal argument) that is *mutated later in the
    same function*.  The simulated fabric passes payloads by reference,
    so the receiver shares the object and the mutation rewrites what it
    sees — behaviour no serializing network exhibits.  Function-scoped
    heuristic (no inter-procedural aliasing); the runtime counterpart
    is :class:`repro.net.sanitize.PayloadSanitizer`, which catches what
    this rule cannot see.

Escapes, both auditable via ``repro lint --show-suppressed``:

* a line pragma ``# lint: allow[rule]`` (or ``allow[rule1, rule2]``,
  or ``allow[*]``) on the offending line or the line above;
* the per-file :data:`DEFAULT_ALLOWLIST` for files whose *job* is the
  real world (the TCP front-end, wall-time measurement in the bench
  harness, the RngRegistry itself).
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.findings import Finding

__all__ = [
    "DEFAULT_ALLOWLIST",
    "PROTOCOL_PREFIXES",
    "lint_source",
    "lint_tree",
]

#: Directories (relative to the package root) holding code that runs on
#: the simulated timeline.  The scoped rules (set-iteration,
#: hash-ordering, adhoc-rng) only apply here; wallclock/global-rng apply
#: everywhere.
PROTOCOL_PREFIXES: Tuple[str, ...] = (
    "core/",
    "cluster/",
    "coordinator/",
    "dlm/",
    "net/",
    "chaos/",
    "client/",
    "sharedlog/",
    "baselines/",
    "datalet/",
    "sim/",
)

#: path prefix (or exact file) -> rules waived for it, with the reason
#: documented here rather than scattered through the code:
#:
#: * ``harness/`` measures *wall* time on purpose (simulated-seconds-
#:   per-wall-second is a reported metric);
#: * ``net/tcp.py`` is the real-TCP front-end — its sockets live on the
#:   host clock, not the simulated one;
#: * ``sim/rng.py`` is the RngRegistry: the one sanctioned constructor
#:   of ``random.Random`` instances.
DEFAULT_ALLOWLIST: Dict[str, Set[str]] = {
    "harness/": {"wallclock"},
    "net/tcp.py": {"wallclock"},
    "sim/rng.py": {"adhoc-rng"},
}

_PRAGMA = re.compile(r"#\s*lint:\s*allow\[([^\]]*)\]")

_WALLCLOCK_TIME = {
    "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
    "perf_counter_ns", "process_time", "process_time_ns", "clock_gettime",
    "localtime", "gmtime", "ctime", "asctime", "strftime", "sleep",
}
_WALLCLOCK_DATETIME = {"now", "utcnow", "today"}
_GLOBAL_RNG_UUID = {"uuid1", "uuid4"}
#: order-insensitive consumers: a set flowing straight into one of these
#: cannot leak iteration order.
_ORDER_FREE = {
    "sorted", "min", "max", "sum", "len", "any", "all", "set", "frozenset",
}
_ITER_WRAPPERS = {"list", "tuple", "enumerate", "iter", "reversed"}
#: actor-surface methods whose arguments enter the message fabric.
#: ``ack``/``finish``/``fail`` are the Request completion surface — their
#: payloads reach ``respond`` (and parked duplicate waiters) through
#: ``Controlet._complete_request``, so aliasing them is just as unsafe.
_SEND_METHODS = {
    "send", "call", "respond", "transmit", "broadcast", "datalet_call",
    "ack", "finish", "fail",
}
#: in-place mutators of dict/list payload values.
_PAYLOAD_MUTATORS = {
    "update", "pop", "popitem", "setdefault", "clear",
    "append", "extend", "insert", "remove", "sort", "reverse",
}
#: directory listings with filesystem-dependent order.
_FS_LISTING_OS = {"listdir", "scandir", "walk"}
_FS_LISTING_GLOB = {"glob", "iglob"}
_FS_LISTING_METHODS = {"iterdir", "rglob", "glob"}


def _harvest_payload_names(node: ast.expr, out: Set[str]) -> None:
    """Collect bare names aliased into a payload argument: the name
    itself, or names nested in dict/list/tuple literals.  Deliberately
    does not look through calls — ``dict(x)`` copies its top level."""
    if isinstance(node, ast.Name):
        out.add(node.id)
    elif isinstance(node, ast.Dict):
        for v in node.values:
            if v is not None:
                _harvest_payload_names(v, out)
    elif isinstance(node, (ast.List, ast.Tuple)):
        for v in node.elts:
            _harvest_payload_names(v, out)


def _parse_pragmas(source: str) -> Dict[int, Set[str]]:
    """Map line number -> rules allowed by a ``# lint: allow[...]``."""
    out: Dict[int, Set[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        m = _PRAGMA.search(text)
        if m:
            rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
            out[lineno] = rules
    return out


class _Imports:
    """Resolve names back to the stdlib modules the rules care about."""

    MODULES = {"time", "datetime", "random", "os", "uuid", "secrets", "glob"}

    def __init__(self, tree: ast.Module):
        #: local alias -> module name ("t" -> "time")
        self.modules: Dict[str, str] = {}
        #: local alias -> (module, attr)  ("now" -> ("datetime.datetime", "now"))
        self.members: Dict[str, Tuple[str, str]] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for a in node.names:
                    root = a.name.split(".")[0]
                    if root in self.MODULES:
                        self.modules[a.asname or root] = root
            elif isinstance(node, ast.ImportFrom):
                if node.module and node.module.split(".")[0] in self.MODULES:
                    for a in node.names:
                        self.members[a.asname or a.name] = (node.module, a.name)

    def resolve_call(self, func: ast.expr) -> Optional[Tuple[str, str]]:
        """Return ``(module, attr)`` for a call target, if it bottoms out
        in one of the tracked stdlib modules."""
        if isinstance(func, ast.Attribute):
            base = func.value
            if isinstance(base, ast.Name) and base.id in self.modules:
                return self.modules[base.id], func.attr
            if isinstance(base, ast.Name) and base.id in self.members:
                mod, attr = self.members[base.id]
                # e.g. ``from datetime import datetime`` then datetime.now()
                return f"{mod}.{attr}", func.attr
            if (
                isinstance(base, ast.Attribute)
                and isinstance(base.value, ast.Name)
                and base.value.id in self.modules
            ):
                # e.g. ``import datetime`` then datetime.datetime.now()
                return f"{self.modules[base.value.id]}.{base.attr}", func.attr
        elif isinstance(func, ast.Name) and func.id in self.members:
            return self.members[func.id]
        return None


def _is_setish_value(node: ast.expr) -> bool:
    """Syntactically set-valued expressions (no name inference)."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    ):
        return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_setish_value(node.left) or _is_setish_value(node.right)
    return False


def _annotation_is_set(node: ast.expr) -> bool:
    if isinstance(node, ast.Name):
        return node.id in ("set", "frozenset", "Set", "FrozenSet", "MutableSet")
    if isinstance(node, ast.Subscript):
        return _annotation_is_set(node.value)
    if isinstance(node, ast.Attribute):  # typing.Set[...]
        return node.attr in ("Set", "FrozenSet", "MutableSet")
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        head = node.value.split("[")[0].strip()
        return head in ("set", "frozenset", "Set", "FrozenSet", "MutableSet")
    return False


class _SetInference(ast.NodeVisitor):
    """Module-wide, name-granular inference of set-typed bindings.

    Deliberately coarse (one namespace per module): a false positive is
    one ``sorted()`` or pragma away, while a per-scope type system would
    be overkill for a linter.
    """

    def __init__(self) -> None:
        self.names: Set[str] = set()
        self.attrs: Set[str] = set()

    def _mark(self, target: ast.expr) -> None:
        if isinstance(target, ast.Name):
            self.names.add(target.id)
        elif isinstance(target, ast.Attribute):
            self.attrs.add(target.attr)

    def visit_Assign(self, node: ast.Assign) -> None:
        if _is_setish_value(node.value):
            for t in node.targets:
                self._mark(t)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if _annotation_is_set(node.annotation) or (
            node.value is not None and _is_setish_value(node.value)
        ):
            self._mark(node.target)
        self.generic_visit(node)

    def visit_arg(self, node: ast.arg) -> None:
        if node.annotation is not None and _annotation_is_set(node.annotation):
            self.names.add(node.arg)
        self.generic_visit(node)


class _Linter(ast.NodeVisitor):
    def __init__(self, rel_path: str, imports: _Imports, protocol: bool,
                 sets: _SetInference):
        self.rel_path = rel_path
        self.imports = imports
        self.protocol = protocol
        self.sets = sets
        self.findings: List[Tuple[int, str, str]] = []  # (line, rule, message)
        #: comprehension nodes whose iteration order provably cannot
        #: escape (direct argument of an order-insensitive call)
        self._blessed: Set[int] = set()
        self._func_depth = 0

    def _flag(self, node: ast.AST, rule: str, message: str) -> None:
        self.findings.append((getattr(node, "lineno", 0), rule, message))

    # -- mutable-payload (function-scope aliasing heuristic) -----------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        # analyze outermost functions as one scope: nested closures
        # (completion callbacks) share the outer frame's payload names
        if self.protocol and self._func_depth == 0:
            self._check_payload_aliasing(node)
        self._func_depth += 1
        self.generic_visit(node)
        self._func_depth -= 1

    visit_AsyncFunctionDef = visit_FunctionDef

    def _check_payload_aliasing(self, func: ast.AST) -> None:
        sends: Dict[str, List[int]] = {}    # name -> send linenos
        rebinds: Dict[str, List[int]] = {}  # name -> fresh-object linenos
        mutations: List[Tuple[int, str, str]] = []
        for node in ast.walk(func):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if node.func.attr in _SEND_METHODS:
                    names: Set[str] = set()
                    for arg in list(node.args) + [kw.value for kw in node.keywords]:
                        _harvest_payload_names(arg, names)
                    for name in names:
                        sends.setdefault(name, []).append(node.lineno)
                if node.func.attr in _PAYLOAD_MUTATORS:
                    base = node.func.value
                    if isinstance(base, ast.Subscript):
                        base = base.value  # payload["ops"].append(...)
                    if isinstance(base, ast.Name):
                        mutations.append(
                            (node.lineno, base.id, f".{node.func.attr}()")
                        )
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for t in targets:
                    if isinstance(t, ast.Subscript) and isinstance(t.value, ast.Name):
                        mutations.append(
                            (node.lineno, t.value.id, "subscript assignment")
                        )
                    elif isinstance(t, ast.Name) and isinstance(node, ast.Assign):
                        rebinds.setdefault(t.id, []).append(node.lineno)
            elif isinstance(node, ast.Delete):
                for t in node.targets:
                    if isinstance(t, ast.Subscript) and isinstance(t.value, ast.Name):
                        mutations.append((node.lineno, t.value.id, "del"))
        for lineno, name, how in mutations:
            live = any(
                s <= lineno
                and not any(s < r <= lineno for r in rebinds.get(name, ()))
                for s in sends.get(name, ())
            )
            if live:
                self.findings.append((
                    lineno, "mutable-payload",
                    f"{how} mutates {name!r} after it was aliased into a "
                    "sent payload; the fabric passes payloads by reference "
                    "so the receiver shares this object — send a copy or "
                    "mutate a copy",
                ))

    # -- wallclock / global-rng / adhoc-rng ----------------------------
    def visit_Call(self, node: ast.Call) -> None:
        resolved = self.imports.resolve_call(node.func)
        if resolved is not None:
            self._check_stdlib_call(node, *resolved)
        if self.protocol:
            if isinstance(node.func, ast.Name) and node.func.id in ("hash", "id"):
                self._flag(
                    node, "hash-ordering",
                    f"builtin {node.func.id}() varies across processes; "
                    "use repro.hashing.stable_hash for protocol decisions",
                )
            if (
                isinstance(node.func, ast.Name)
                and node.func.id in _ORDER_FREE
                and node.args
            ):
                for arg in node.args:
                    if isinstance(
                        arg, (ast.GeneratorExp, ast.ListComp, ast.SetComp,
                              ast.Call)
                    ):
                        # a listing call flowing straight into sorted()
                        # & co. cannot leak its order
                        self._blessed.add(id(arg))
            self._check_fs_ordering(node, resolved)
            if (
                isinstance(node.func, ast.Name)
                and node.func.id in _ITER_WRAPPERS
                and node.args
                and self._is_set_valued(node.args[0])
            ):
                self._flag(
                    node, "set-iteration",
                    f"{node.func.id}() over a set materializes its "
                    "arbitrary order; wrap the set in sorted(...)",
                )
        self.generic_visit(node)

    def _check_fs_ordering(self, node: ast.Call,
                           resolved: Optional[Tuple[str, str]]) -> None:
        """Flag directory listings whose order the filesystem decides,
        unless the listing is the direct argument of an order-insensitive
        consumer (``sorted(os.listdir(p))`` is the sanctioned idiom)."""
        if id(node) in self._blessed:
            return
        hit: Optional[str] = None
        if resolved is not None:
            module, attr = resolved
            if module == "os" and attr in _FS_LISTING_OS:
                hit = f"os.{attr}()"
            elif module == "glob" and attr in _FS_LISTING_GLOB:
                hit = f"glob.{attr}()"
        elif (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _FS_LISTING_METHODS
        ):
            hit = f".{node.func.attr}()"
        if hit is not None:
            self._flag(
                node, "fs-ordering",
                f"{hit} lists files in filesystem-dependent order; WAL "
                "replay and durable-store iteration must not depend on "
                "it — wrap the listing directly in sorted(...)",
            )

    def _check_stdlib_call(self, node: ast.Call, module: str, attr: str) -> None:
        if module == "time" and attr in _WALLCLOCK_TIME:
            what = "wall sleep" if attr == "sleep" else "wall-clock read"
            self._flag(
                node, "wallclock",
                f"time.{attr}() is a {what}; simulation code must use "
                "the virtual clock (actor.now() / sim.now)",
            )
        elif module in ("datetime.datetime", "datetime.date") and attr in _WALLCLOCK_DATETIME:
            self._flag(
                node, "wallclock",
                f"{module}.{attr}() reads the host clock; use the "
                "virtual clock instead",
            )
        elif module == "random":
            if attr == "Random":
                if not node.args and not node.keywords:
                    self._flag(
                        node, "global-rng",
                        "random.Random() with no seed is OS-entropy seeded; "
                        "take a named RngRegistry stream",
                    )
                elif self.protocol:
                    self._flag(
                        node, "adhoc-rng",
                        "ad-hoc random.Random(seed) in protocol code; take "
                        "a named stream from the cluster RngRegistry so "
                        "draws derive from the run seed",
                    )
            elif attr == "SystemRandom":
                self._flag(node, "global-rng",
                           "random.SystemRandom is OS entropy, never replayable")
            elif attr[:1].islower():
                self._flag(
                    node, "global-rng",
                    f"random.{attr}() draws from the process-global RNG; "
                    "use an RngRegistry stream",
                )
        elif module == "os" and attr == "urandom":
            self._flag(node, "global-rng", "os.urandom() is OS entropy")
        elif module == "uuid" and attr in _GLOBAL_RNG_UUID:
            self._flag(node, "global-rng",
                       f"uuid.{attr}() is host/entropy derived; derive ids "
                       "from seeded streams or counters")
        elif module == "secrets":
            self._flag(node, "global-rng", f"secrets.{attr}() is OS entropy")

    # -- set iteration -------------------------------------------------
    def _is_set_valued(self, node: ast.expr) -> bool:
        if _is_setish_value(node):
            return True
        if isinstance(node, ast.Name) and node.id in self.sets.names:
            return True
        if isinstance(node, ast.Attribute) and node.attr in self.sets.attrs:
            return True
        return False

    def visit_For(self, node: ast.For) -> None:
        if self.protocol and self._is_set_valued(node.iter):
            self._flag(
                node, "set-iteration",
                "for-loop over a set: iteration order is arbitrary and "
                "leaks into event order; iterate sorted(...) instead",
            )
        self.generic_visit(node)

    def _visit_comprehension(self, node) -> None:
        if self.protocol and id(node) not in self._blessed:
            for gen in node.generators:
                if self._is_set_valued(gen.iter):
                    self._flag(
                        node, "set-iteration",
                        "comprehension over a set: iteration order is "
                        "arbitrary; iterate sorted(...) instead",
                    )
                    break
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension
    visit_DictComp = _visit_comprehension

    def visit_SetComp(self, node: ast.SetComp) -> None:
        # building a set from a set keeps everything unordered; only
        # *ordered* materialization is a finding
        self.generic_visit(node)


def _allowed_by_list(rel_path: str, allowlist: Dict[str, Set[str]]) -> Set[str]:
    allowed: Set[str] = set()
    for prefix, rules in allowlist.items():
        if rel_path == prefix or rel_path.startswith(prefix):
            allowed |= rules
    return allowed


def lint_source(
    source: str,
    rel_path: str = "<string>",
    allowlist: Optional[Dict[str, Set[str]]] = None,
) -> List[Finding]:
    """Lint one module's source; ``rel_path`` decides rule scope."""
    allowlist = DEFAULT_ALLOWLIST if allowlist is None else allowlist
    tree = ast.parse(source)
    imports = _Imports(tree)
    sets = _SetInference()
    sets.visit(tree)
    protocol = rel_path.startswith(PROTOCOL_PREFIXES)
    linter = _Linter(rel_path, imports, protocol, sets)
    linter.visit(tree)

    pragmas = _parse_pragmas(source)
    file_allowed = _allowed_by_list(rel_path, allowlist)
    out: List[Finding] = []
    for line, rule, message in linter.findings:
        line_rules = pragmas.get(line, set()) | pragmas.get(line - 1, set())
        suppressed = (
            rule in file_allowed or rule in line_rules or "*" in line_rules
        )
        out.append(Finding(path=rel_path, line=line, rule=rule,
                           message=message, suppressed=suppressed))
    return out


def lint_tree(
    root: Path,
    allowlist: Optional[Dict[str, Set[str]]] = None,
    files: Optional[Iterable[Path]] = None,
) -> List[Finding]:
    """Lint every ``*.py`` under ``root`` (the ``repro`` package dir)."""
    root = Path(root)
    targets = sorted(files) if files is not None else sorted(root.rglob("*.py"))
    findings: List[Finding] = []
    for path in targets:
        rel = path.relative_to(root).as_posix()
        findings.extend(lint_source(path.read_text(), rel, allowlist))
    return findings
