"""CORFU-style shared log: sequencer + segmented storage + cursors."""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional

from repro.errors import BespoError
from repro.hashing.ring import HashRing
from repro.net.actor import Actor
from repro.net.message import Message

__all__ = ["LogEntry", "SharedLog", "SharedLogActor"]


@dataclass(frozen=True)
class LogEntry:
    """One totally-ordered record.

    ``rid`` is the client request id the write was appended under (None
    for unstamped writers); replaying consumers forward it so secondary
    propagation paths (the AA-MS hybrid's slaves) inherit the identity.
    """

    pos: int
    writer: str
    op: str
    key: str
    value: Optional[str]
    rid: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        return {"pos": self.pos, "writer": self.writer, "op": self.op,
                "key": self.key, "value": self.value, "rid": self.rid}

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "LogEntry":
        return cls(int(d["pos"]), str(d["writer"]), str(d["op"]),
                   str(d["key"]), d["value"], d.get("rid"))


class SharedLog:
    """Synchronous core: append-ordered segments with trimming."""

    def __init__(self, segment_size: int = 4096):
        if segment_size < 1:
            raise BespoError(f"segment_size must be >= 1, got {segment_size}")
        self._segment_size = segment_size
        self._segments: List[List[LogEntry]] = [[]]
        self._base = 0  # global position of the first retained entry
        self._next = 0  # next position the sequencer will hand out

    @property
    def tail(self) -> int:
        """Next position to be written (= current length incl. trimmed)."""
        return self._next

    @property
    def base(self) -> int:
        return self._base

    def append(self, writer: str, op: str, key: str, value: Optional[str],
               rid: Optional[str] = None) -> LogEntry:
        entry = LogEntry(self._next, writer, op, key, value, rid)
        self._next += 1
        if len(self._segments[-1]) >= self._segment_size:
            self._segments.append([])
        self._segments[-1].append(entry)
        return entry

    def read(self, pos: int) -> LogEntry:
        if pos < self._base:
            raise BespoError(f"position {pos} trimmed (base={self._base})")
        if pos >= self._next:
            raise BespoError(f"position {pos} beyond tail {self._next}")
        offset = pos - self._base
        for seg in self._segments:
            if offset < len(seg):
                return seg[offset]
            offset -= len(seg)
        raise BespoError(f"position {pos} missing (corrupt segment chain)")

    def fetch_from(self, pos: int, max_entries: int = 128) -> List[LogEntry]:
        """Entries at positions >= ``pos`` (bounded), for polling readers."""
        start = max(pos, self._base)
        out: List[LogEntry] = []
        p = start
        while p < self._next and len(out) < max_entries:
            out.append(self.read(p))
            p += 1
        return out

    def trim(self, pos: int) -> int:
        """Discard entries below ``pos``; returns how many were dropped.

        The paper: "The duration to keep the requests in Shared Log is
        configurable" — controlets trim once all replicas ack a prefix.
        """
        pos = min(pos, self._next)
        dropped = 0
        while self._base < pos:
            seg = self._segments[0]
            take = min(len(seg), pos - self._base)
            del seg[:take]
            self._base += take
            dropped += take
            if not seg and len(self._segments) > 1:
                self._segments.pop(0)
        return dropped

    def __len__(self) -> int:
        return self._next - self._base


class SharedLogActor(Actor):
    """Message front-end.

    Protocol:

    * ``log_append`` {op, key, val[, rid]} → ``appended`` {pos[, dup]}
    * ``log_append_batch`` {entries: [{op, key, val[, rid]}, ...]} →
      ``appended_batch`` {results: [{pos[, dup]}, ...]} — one sequenced
      group commit; entries are ordered (and rid-deduplicated) exactly
      as if appended one by one, but the sequencer round-trip and most
      of the append handling are paid once per batch
    * ``log_fetch`` {pos, max} → ``entries`` {entries, tail}
    * ``log_trim`` {pos} → ``ok`` {dropped}

    **Sequencer-side dedup**: the sequencer is the one total-order
    point every AA+EC write passes through, so it also owns duplicate
    suppression.  An append carrying a ``rid`` already sequenced is
    *not* re-appended — the original position is returned with
    ``dup: True`` so the accepting active acks without re-applying.
    This catches client retries routed to a different active, which no
    per-controlet cache can see.

    **Auto-trim** ("the duration to keep the requests in Shared Log is
    configurable", App C-C): a reader's ``log_fetch`` at position *p*
    acknowledges everything below *p*; once the retained window exceeds
    ``high_watermark`` entries, the log trims to the minimum cursor
    across all readers seen so far.  Readers that start at the tail
    (transition/recovery joiners) never hold the window open.
    """

    def __init__(
        self,
        node_id: str = "sharedlog",
        segment_size: int = 4096,
        high_watermark: Optional[int] = 65536,
    ):
        super().__init__(node_id)
        self.log = SharedLog(segment_size)
        self.high_watermark = high_watermark
        self._cursors: Dict[str, int] = {}
        self.auto_trims = 0
        self.appends = 0
        self.dup_appends = 0
        self.batch_appends = 0
        self.batched_entries = 0
        #: rid → sequenced position, bounded FIFO (dedup window).
        self._rid_pos: Dict[str, int] = {}
        self._rid_order: Deque[str] = deque(maxlen=65536)
        #: open reshard window.  The sequencer is the ordering authority
        #: for its AA+EC shard, so it is *armed before* any controlet or
        #: client learns the window: ``{"gen", "old", "new", "dirty"}``
        #: — the two rings plus every moved key a client wrote while
        #: the window is open (a later migrated copy of such a key would
        #: clobber the newer value and is refused with ``skipped``).
        self._reshard: Optional[Dict[str, Any]] = None
        # Single-append entry point: controlets now group-commit via
        # log_append_batch, but the one-at-a-time surface stays for
        # external writers and tooling (identical dedup semantics).
        self.register("log_append", self._on_append)  # protocol: external
        self.register("log_append_batch", self._on_append_batch)
        self.register("log_fetch", self._on_fetch)
        # Operator/retention API: driven from outside the actor system
        # (tests, admin tooling); in-cluster trimming happens via the
        # auto-trim watermark above.
        self.register("log_trim", self._on_trim)  # protocol: external
        self.register("reshard_begin", self._on_reshard_begin)
        self.register("reshard_end", self._on_reshard_end)

    def service_demand(self, msg: Message, costs) -> float:
        if msg.type == "log_append":
            return costs.scaled("sharedlog_append_cost")
        if msg.type == "log_append_batch":
            # group commit: full append handling once, then only the
            # marginal sequencing cost per extra entry
            n = len(msg.payload["entries"])
            return costs.scaled("sharedlog_append_cost") + max(0, n - 1) * (
                costs.scaled("sharedlog_append_entry_cost")
            )
        return costs.scaled("sharedlog_fetch_cost")

    def _on_append(self, msg: Message) -> None:
        result = self._append_one(msg.src, msg.payload, msg.payload.get("gen"))
        self.respond(msg, "appended", result)

    def _append_one(
        self, writer: str, d: Dict[str, Any], gen: Optional[int] = None
    ) -> Dict[str, Any]:
        """Sequence one entry; same dedup semantics for single and batch
        appends (a rid already sequenced keeps its original position and
        is not re-appended).

        During a reshard window, entries for *moved* keys pass the
        window gate: a migrated copy (``mig``) of a key a client wrote
        during the window is refused (``skipped`` — the copy is older by
        construction); a client write stamped with a stale ring
        generation is refused (``wrong_shard`` — it would land only on
        the old owner and be lost at the cutover); an in-generation
        client write marks the key dirty.  Clean migrated copies enter
        the log as plain put entries, so replaying replicas need no
        special casing."""
        rid = d.get("rid")
        if rid is not None:
            pos = self._rid_pos.get(rid)
            if pos is not None:
                self.dup_appends += 1
                return {"pos": pos, "dup": True}
        win = self._reshard
        if win is not None:
            key = d["key"]
            moved = win["old"].lookup(key) != win["new"].lookup(key)
            if moved:
                if d.get("mig"):
                    if key in win["dirty"]:
                        return {"skipped": True}
                elif gen != win["gen"]:
                    return {"wrong_shard": True}
                else:
                    win["dirty"].add(key)
        entry = self.log.append(
            writer=writer, op=d["op"], key=d["key"], value=d.get("val"), rid=rid,
        )
        if rid is not None:
            if len(self._rid_order) == self._rid_order.maxlen:
                self._rid_pos.pop(self._rid_order[0], None)
            self._rid_order.append(rid)
            self._rid_pos[rid] = entry.pos
        self.appends += 1
        return {"pos": entry.pos}

    def _on_append_batch(self, msg: Message) -> None:
        """One group-commit batch: members are sequenced in payload
        order, atomically adjacent in the log (no interleaving with
        other writers' appends — the handler runs to completion)."""
        gen = msg.payload.get("gen")
        results = [
            self._append_one(msg.src, d, gen) for d in msg.payload["entries"]
        ]
        self.batch_appends += 1
        self.batched_entries += len(results)
        self.respond(msg, "appended_batch", {"results": results})

    def _on_reshard_begin(self, msg: Message) -> None:
        gen = int(msg.payload["gen"])
        if self._reshard is None or self._reshard["gen"] != gen:
            self._reshard = {
                "gen": gen,
                "old": HashRing(list(msg.payload["old"])),
                "new": HashRing(list(msg.payload["new"])),
                "dirty": set(),
            }
        self.respond(msg, "ok", {"gen": gen})

    def _on_reshard_end(self, msg: Message) -> None:
        if (
            self._reshard is not None
            and self._reshard["gen"] == int(msg.payload.get("gen", -1))
        ):
            self._reshard = None

    def metrics_group(self) -> Dict[str, float]:
        return {
            "appends": self.appends,
            "dup_appends": self.dup_appends,
            "batch_appends": self.batch_appends,
            "batched_entries": self.batched_entries,
            "auto_trims": self.auto_trims,
            "tail": self.log.tail,
            "retained": len(self.log),
        }

    def _on_fetch(self, msg: Message) -> None:
        pos = msg.payload["pos"]
        entries = self.log.fetch_from(pos, msg.payload.get("max", 128))
        self.respond(
            msg,
            "entries",
            {"entries": [e.to_dict() for e in entries], "tail": self.log.tail},
        )
        # everything below the fetch position is acknowledged by this reader
        self._cursors[msg.src] = max(
            self._cursors.get(msg.src, 0), min(pos, self.log.tail)
        )
        self._maybe_auto_trim()

    def _maybe_auto_trim(self) -> None:
        if self.high_watermark is None or len(self.log) <= self.high_watermark:
            return
        if not self._cursors:
            return
        safe = min(self._cursors.values())
        if safe > self.log.base:
            self.log.trim(safe)
            self.auto_trims += 1

    # -- model-checker introspection -----------------------------------
    def snapshot_state(self):
        s = super().snapshot_state()
        s.update({
            "reshard_gen": self._reshard["gen"] if self._reshard else 0,
            "base": self.log.base,
            "tail": self.log.tail,
            "entries": [
                [e.pos, e.writer, e.op, e.key, e.value]
                for e in self.log.fetch_from(self.log.base, len(self.log))
            ],
            "cursors": dict(self._cursors),
        })
        return s

    def _on_trim(self, msg: Message) -> None:
        dropped = self.log.trim(msg.payload["pos"])
        self.respond(msg, "ok", {"dropped": dropped})
