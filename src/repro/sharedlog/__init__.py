"""Shared log ordering service (paper §III optional components).

BESPOKV imports ZLog (a CORFU implementation) to give Active-Active
deployments a global order over concurrent Puts.  This package provides
the same service: a sequencer hands out positions, entries live in
fixed-size segments, and readers poll with ``fetch_from`` cursors
(the paper's ``AsyncFetch``).
"""

from repro.sharedlog.log import LogEntry, SharedLog, SharedLogActor

__all__ = ["SharedLog", "SharedLogActor", "LogEntry"]
