"""Messaging layer: messages, actors, transports, protocol parsers.

* :class:`~repro.net.message.Message` — typed envelope
* :class:`~repro.net.actor.Actor` — the paper's event-driven
  programming model (Register/On/Emit, request-response continuations)
* :class:`~repro.net.simnet.SimCluster` — simulated transport with
  per-host CPUs and the network model
* :mod:`repro.net.protocol` / :mod:`repro.net.resp` — wire codecs for
  the real TCP front-end (:mod:`repro.net.tcp`)
"""

from repro.net.actor import Actor, NodeContext, Reply
from repro.net.message import HEADER_BYTES, Message
from repro.net.simnet import ClientPort, SimCluster

__all__ = [
    "Message",
    "HEADER_BYTES",
    "Actor",
    "NodeContext",
    "Reply",
    "SimCluster",
    "ClientPort",
]
