"""Copy-on-send payload sanitizer.

The simulated fabric passes message payloads **by reference**: a dict
the sender builds is the very object the receiver reads.  Real networks
serialize — the receiver gets a private copy, and a sender mutating its
buffer after send (or a receiver stashing and later mutating a received
dict) has no effect on the other side.  Reference passing therefore
*hides* a whole bug class (and can conjure up impossible behaviours,
e.g. a retained-ops window that retroactively changes because a peer
edited a shared dict).

``repro chaos --sanitize`` (and the model checker, always) turns on two
complementary checks at the fabric boundary:

* **freeze-on-deliver** — the receiver sees a recursively read-only
  view (:class:`FrozenDict` / :class:`FrozenList`); any mutation raises
  :class:`PayloadMutationError` *at the mutating line*, naming the
  culprit handler in the traceback.
* **digest-at-send vs digest-at-delivery** — the payload is fingerprinted
  when it enters the fabric and re-fingerprinted on arrival; a mismatch
  means the *sender* (or anyone aliasing the dict) mutated it while the
  message was in flight, which a serializing network would never show
  the receiver.

The static counterpart is the ``mutable-payload`` lint rule
(:mod:`repro.analysis.lint`), which flags post-send mutation of sent
dicts without running anything.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, Iterator, List, Mapping, Sequence, Tuple

__all__ = [
    "FrozenDict",
    "FrozenList",
    "PayloadMutationError",
    "PayloadSanitizer",
    "canonical_digest",
    "deep_freeze",
    "deep_unfreeze",
]


class PayloadMutationError(TypeError):
    """A message payload was mutated across the send/deliver boundary."""


def _blocked(what: str):
    def op(self, *args, **kwargs):
        raise PayloadMutationError(
            f"payload mutation: {what} on a delivered message payload — "
            "a serializing network would give the receiver a private copy; "
            "copy before mutating (e.g. dict(payload))"
        )

    return op


class FrozenDict(Mapping):
    """Recursively read-only dict view delivered to receivers."""

    __slots__ = ("_d",)

    def __init__(self, d: Mapping):
        object.__setattr__(self, "_d", d)

    def __getitem__(self, key):
        return deep_freeze(self._d[key])

    def __iter__(self) -> Iterator:
        return iter(self._d)

    def __len__(self) -> int:
        return len(self._d)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FrozenDict({self._d!r})"

    def copy(self) -> Dict:
        """A *mutable* shallow copy — the sanctioned escape hatch."""
        return dict(self._d)

    # every mutator of dict, blocked with a pointed message
    __setitem__ = _blocked("__setitem__")
    __delitem__ = _blocked("__delitem__")
    __setattr__ = _blocked("__setattr__")
    pop = _blocked("pop")
    popitem = _blocked("popitem")
    setdefault = _blocked("setdefault")
    update = _blocked("update")
    clear = _blocked("clear")


class FrozenList(Sequence):
    """Recursively read-only list view delivered to receivers."""

    __slots__ = ("_l",)

    def __init__(self, l: Sequence):
        object.__setattr__(self, "_l", l)

    def __getitem__(self, idx):
        if isinstance(idx, slice):
            return FrozenList(self._l[idx])
        return deep_freeze(self._l[idx])

    def __len__(self) -> int:
        return len(self._l)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FrozenList({self._l!r})"

    def copy(self) -> List:
        return list(self._l)

    __setitem__ = _blocked("__setitem__")
    __delitem__ = _blocked("__delitem__")
    __setattr__ = _blocked("__setattr__")
    append = _blocked("append")
    extend = _blocked("extend")
    insert = _blocked("insert")
    pop = _blocked("pop")
    remove = _blocked("remove")
    sort = _blocked("sort")
    reverse = _blocked("reverse")
    clear = _blocked("clear")


def deep_freeze(obj: Any) -> Any:
    """Wrap ``obj`` in a recursively read-only view (lazy: children are
    frozen on access, so freezing a large snapshot payload is O(1))."""
    if isinstance(obj, FrozenDict) or isinstance(obj, FrozenList):
        return obj
    if isinstance(obj, dict):
        return FrozenDict(obj)
    if isinstance(obj, (list, tuple)):
        return FrozenList(obj)
    return obj


def deep_unfreeze(obj: Any) -> Any:
    """Recursive mutable copy of a (possibly frozen) payload value."""
    if isinstance(obj, Mapping):
        return {k: deep_unfreeze(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple, FrozenList)):
        return [deep_unfreeze(v) for v in obj]
    return obj


def _canonical_lines(obj: Any, out: List[str], prefix: str) -> None:
    if isinstance(obj, Mapping):
        for k in sorted(obj, key=str):
            _canonical_lines(obj[k], out, f"{prefix}.{k}")
    elif isinstance(obj, (list, tuple, FrozenList)):
        for i, v in enumerate(obj):
            _canonical_lines(v, out, f"{prefix}[{i}]")
    else:
        out.append(f"{prefix}={type(obj).__name__}:{obj!r}")


def canonical_digest(obj: Any) -> str:
    """Structure-insensitive fingerprint of a payload value (handles
    frozen views, nested dicts/lists, arbitrary scalar reprs)."""
    lines: List[str] = []
    _canonical_lines(obj, lines, "$")
    h = hashlib.sha256()
    for line in lines:
        h.update(line.encode())
        h.update(b"\n")
    return h.hexdigest()


class PayloadSanitizer:
    """Fabric-boundary checker: digest at send, verify + freeze at deliver.

    Attach with :meth:`SimCluster.attach_sanitizer`; the cluster calls
    :meth:`on_send` as a message enters :meth:`route` and
    :meth:`on_deliver` just before handing it to the receiver.
    """

    def __init__(self, freeze: bool = True):
        self.freeze = freeze
        self.sends = 0
        self.deliveries = 0
        #: (src, dst, type) triples that failed the in-flight digest check.
        self.violations: List[Tuple[str, str, str]] = []

    def on_send(self, msg) -> None:
        self.sends += 1
        # stamp the digest on the message itself: duplicate deliveries
        # (duplicate_rate faults) re-verify against the same token
        msg.sent_digest = canonical_digest(msg.payload)

    def on_deliver(self, msg):
        """Verify the in-flight digest and return the message to hand to
        the receiver (payload frozen when ``freeze`` is on)."""
        self.deliveries += 1
        sent = getattr(msg, "sent_digest", None)
        if sent is not None and canonical_digest(msg.payload) != sent:
            self.violations.append((msg.src, msg.dst, msg.type))
            raise PayloadMutationError(
                f"payload of {msg.type!r} ({msg.src} -> {msg.dst}) changed "
                "between send and delivery: the sender (or an aliasing "
                "handler) mutated a dict that was already in flight"
            )
        if self.freeze:
            msg.payload = deep_freeze(msg.payload)
        return msg
