"""Length-prefixed binary codec — the "BESPOKV-defined protocol".

The paper's preferred option for new datalets is a framed protocol
built with Protocol Buffers (§III-A); this is the equivalent framing:
a 4-byte big-endian length followed by a compact JSON body.  It shares
the incremental-feed interface with :class:`~repro.net.resp.RespParser`
so the TCP server can host either protocol behind one loop.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Dict

from repro.errors import ProtocolError

__all__ = ["BinaryCodec", "INCOMPLETE"]

_LEN = struct.Struct(">I")
MAX_FRAME = 64 * 1024 * 1024


class _Incomplete:
    def __bool__(self) -> bool:
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<frame-incomplete>"


INCOMPLETE = _Incomplete()


class BinaryCodec:
    """Frame encoder + incremental decoder."""

    def __init__(self) -> None:
        self._buf = bytearray()

    @staticmethod
    def encode(message: Dict[str, Any]) -> bytes:
        body = json.dumps(message, separators=(",", ":")).encode()
        if len(body) > MAX_FRAME:
            raise ProtocolError(f"frame too large: {len(body)} bytes")
        return _LEN.pack(len(body)) + body

    def feed(self, data: bytes) -> None:
        self._buf.extend(data)

    def next_frame(self):
        """One decoded dict, or :data:`INCOMPLETE` if more bytes are
        needed."""
        if len(self._buf) < _LEN.size:
            return INCOMPLETE
        (length,) = _LEN.unpack(bytes(self._buf[: _LEN.size]))
        if length > MAX_FRAME:
            raise ProtocolError(f"frame too large: {length} bytes")
        if len(self._buf) < _LEN.size + length:
            return INCOMPLETE
        body = bytes(self._buf[_LEN.size : _LEN.size + length])
        del self._buf[: _LEN.size + length]
        try:
            frame = json.loads(body)
        except json.JSONDecodeError as e:
            raise ProtocolError(f"bad frame body: {e}") from None
        if not isinstance(frame, dict):
            raise ProtocolError(f"frame must be an object, got {type(frame).__name__}")
        return frame
