"""Real TCP front-end: expose any datalet engine as a network server.

This is the runnable equivalent of the paper artifact's ``conkv -l
<addr> -p <port>``: a threaded socket server hosting a storage engine
behind either wire protocol —

* **RESP** (``protocol="resp"``): the server understands
  SET/GET/DEL/EXISTS/SCAN/DBSIZE/PING/QUIT, so it looks like a small
  Redis (a drop-in tRedis datalet);
* **binary** (``protocol="binary"``): the framed BESPOKV protocol with
  ``{"op": ..., "key": ...}`` request bodies.

:class:`TcpKVClient` is the matching blocking client.  The quickstart
example and the TCP integration tests run a server on localhost and
drive it end-to-end — real sockets, no simulation.
"""

from __future__ import annotations

import socket
import socketserver
import threading
from typing import List, Optional, Tuple

from repro.datalet import Engine
from repro.errors import BespoError, KeyNotFound, ProtocolError
from repro.net import resp
from repro.net.protocol import BinaryCodec, INCOMPLETE as FRAME_INCOMPLETE

__all__ = ["DataletServer", "TcpKVClient"]


def _as_text(value) -> str:
    return value.decode() if isinstance(value, bytes) else str(value)


class _RespHandler(socketserver.BaseRequestHandler):
    def handle(self) -> None:  # noqa: D102 - socketserver plumbing
        parser = resp.RespParser()
        engine: Engine = self.server.engine  # type: ignore[attr-defined]
        lock: threading.Lock = self.server.engine_lock  # type: ignore[attr-defined]
        while True:
            try:
                data = self.request.recv(65536)
            except ConnectionError:
                return
            if not data:
                return
            parser.feed(data)
            while True:
                try:
                    value = parser.next_value()
                except ProtocolError as e:
                    self.request.sendall(resp.encode_error(f"ERR protocol: {e}"))
                    return
                if value is resp.INCOMPLETE:
                    break
                reply = self._dispatch(engine, lock, value)
                if reply is None:
                    return  # QUIT
                self.request.sendall(reply)

    def _dispatch(self, engine: Engine, lock: threading.Lock, value) -> Optional[bytes]:
        if not isinstance(value, list) or not value:
            return resp.encode_error("ERR expected command array")
        cmd = _as_text(value[0]).upper()
        args = [_as_text(a) for a in value[1:]]
        try:
            with lock:
                if cmd == "PING":
                    return resp.encode_simple("PONG")
                if cmd == "QUIT":
                    self.request.sendall(resp.encode_simple("OK"))
                    return None
                if cmd == "SET" and len(args) == 2:
                    engine.put(args[0], args[1])
                    return resp.encode_simple("OK")
                if cmd == "GET" and len(args) == 1:
                    try:
                        return resp.encode_bulk(engine.get(args[0]))
                    except KeyNotFound:
                        return resp.encode_bulk(None)
                if cmd == "DEL" and len(args) >= 1:
                    removed = 0
                    for key in args:
                        try:
                            engine.delete(key)
                            removed += 1
                        except KeyNotFound:
                            pass
                    return resp.encode_integer(removed)
                if cmd == "EXISTS" and len(args) == 1:
                    return resp.encode_integer(1 if engine.contains(args[0]) else 0)
                if cmd == "DBSIZE":
                    return resp.encode_integer(len(engine))
                if cmd == "SCAN" and len(args) in (2, 3):
                    limit = int(args[2]) if len(args) == 3 else None
                    try:
                        items = engine.scan(args[0], args[1], limit)
                    except NotImplementedError as e:
                        return resp.encode_error(f"ERR {e}")
                    flat: List[bytes] = []
                    for k, v in items:
                        flat.append(resp.encode_bulk(k))
                        flat.append(resp.encode_bulk(v))
                    return resp.encode_array(flat)
        except Exception as e:  # noqa: BLE001 - wire boundary
            return resp.encode_error(f"ERR {e}")
        return resp.encode_error(f"ERR unknown command {cmd!r}")


class _BinaryHandler(socketserver.BaseRequestHandler):
    def handle(self) -> None:  # noqa: D102 - socketserver plumbing
        codec = BinaryCodec()
        engine: Engine = self.server.engine  # type: ignore[attr-defined]
        lock: threading.Lock = self.server.engine_lock  # type: ignore[attr-defined]
        while True:
            try:
                data = self.request.recv(65536)
            except ConnectionError:
                return
            if not data:
                return
            codec.feed(data)
            while True:
                try:
                    frame = codec.next_frame()
                except ProtocolError as e:
                    self.request.sendall(BinaryCodec.encode({"ok": False, "error": str(e)}))
                    return
                if frame is FRAME_INCOMPLETE:
                    break
                self.request.sendall(BinaryCodec.encode(self._dispatch(engine, lock, frame)))

    @staticmethod
    def _dispatch(engine: Engine, lock: threading.Lock, frame: dict) -> dict:
        op = frame.get("op")
        key = frame.get("key", "")
        try:
            with lock:
                if op == "put":
                    engine.put(key, frame["val"])
                    return {"ok": True}
                if op == "get":
                    try:
                        return {"ok": True, "val": engine.get(key)}
                    except KeyNotFound:
                        return {"ok": False, "error": "not_found"}
                if op == "del":
                    try:
                        engine.delete(key)
                        return {"ok": True}
                    except KeyNotFound:
                        return {"ok": False, "error": "not_found"}
                if op == "scan":
                    try:
                        items = engine.scan(frame["start"], frame["end"], frame.get("limit"))
                    except NotImplementedError as e:
                        return {"ok": False, "error": str(e)}
                    return {"ok": True, "items": [[k, v] for k, v in items]}
                if op == "size":
                    return {"ok": True, "size": len(engine)}
        except Exception as e:  # noqa: BLE001 - wire boundary
            return {"ok": False, "error": str(e)}
        return {"ok": False, "error": f"unknown op {op!r}"}


class DataletServer:
    """Threaded TCP server hosting one engine.

    >>> server = DataletServer(HashTableEngine(), protocol="resp")
    >>> host, port = server.start()          # background thread
    >>> ... connect with TcpKVClient or redis-cli ...
    >>> server.stop()
    """

    def __init__(self, engine: Engine, protocol: str = "resp", host: str = "127.0.0.1",
                 port: int = 0):
        if protocol not in ("resp", "binary"):
            raise BespoError(f"unknown protocol {protocol!r}")
        handler = _RespHandler if protocol == "resp" else _BinaryHandler
        self.protocol = protocol
        self._server = socketserver.ThreadingTCPServer((host, port), handler,
                                                       bind_and_activate=True)
        self._server.daemon_threads = True
        self._server.allow_reuse_address = True
        self._server.engine = engine  # type: ignore[attr-defined]
        self._server.engine_lock = threading.Lock()  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        return self._server.server_address  # type: ignore[return-value]

    def start(self) -> Tuple[str, int]:
        self._thread = threading.Thread(target=self._server.serve_forever, daemon=True)
        self._thread.start()
        return self.address

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)

    def __enter__(self) -> "DataletServer":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


class TcpKVClient:
    """Blocking client for :class:`DataletServer` (both protocols)."""

    def __init__(self, host: str, port: int, protocol: str = "resp", timeout: float = 5.0):
        if protocol not in ("resp", "binary"):
            raise BespoError(f"unknown protocol {protocol!r}")
        self.protocol = protocol
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._resp = resp.RespParser()
        self._codec = BinaryCodec()

    # -- low-level -------------------------------------------------------
    def _resp_call(self, *args: str):
        self._sock.sendall(resp.encode_command(*args))
        while True:
            value = self._resp.next_value()
            if value is not resp.INCOMPLETE:
                if isinstance(value, resp.ProtocolErrorValue):
                    raise BespoError(str(value))
                return value
            data = self._sock.recv(65536)
            if not data:
                raise BespoError("server closed connection")
            self._resp.feed(data)

    def _binary_call(self, frame: dict) -> dict:
        self._sock.sendall(BinaryCodec.encode(frame))
        while True:
            reply = self._codec.next_frame()
            if reply is not FRAME_INCOMPLETE:
                return reply
            data = self._sock.recv(65536)
            if not data:
                raise BespoError("server closed connection")
            self._codec.feed(data)

    # -- public API --------------------------------------------------------
    def put(self, key: str, val: str) -> None:
        if self.protocol == "resp":
            self._resp_call("SET", key, val)
        else:
            reply = self._binary_call({"op": "put", "key": key, "val": val})
            if not reply.get("ok"):
                raise BespoError(reply.get("error", "put failed"))

    def get(self, key: str) -> str:
        if self.protocol == "resp":
            value = self._resp_call("GET", key)
            if value is None:
                raise KeyNotFound(key)
            return _as_text(value)
        reply = self._binary_call({"op": "get", "key": key})
        if not reply.get("ok"):
            if reply.get("error") == "not_found":
                raise KeyNotFound(key)
            raise BespoError(reply.get("error", "get failed"))
        return reply["val"]

    def delete(self, key: str) -> None:
        if self.protocol == "resp":
            if self._resp_call("DEL", key) == 0:
                raise KeyNotFound(key)
            return
        reply = self._binary_call({"op": "del", "key": key})
        if not reply.get("ok"):
            raise KeyNotFound(key)

    def scan(self, start: str, end: str, limit: Optional[int] = None) -> List[Tuple[str, str]]:
        if self.protocol == "resp":
            args = ["SCAN", start, end] + ([str(limit)] if limit is not None else [])
            flat = self._resp_call(*args)
            pairs = list(zip(flat[0::2], flat[1::2]))
            return [(_as_text(k), _as_text(v)) for k, v in pairs]
        reply = self._binary_call({"op": "scan", "start": start, "end": end, "limit": limit})
        if not reply.get("ok"):
            raise BespoError(reply.get("error", "scan failed"))
        return [(k, v) for k, v in reply["items"]]

    def ping(self) -> bool:
        if self.protocol == "resp":
            return self._resp_call("PING") == "PONG"
        return self._binary_call({"op": "size"}).get("ok", False)

    def size(self) -> int:
        if self.protocol == "resp":
            return int(self._resp_call("DBSIZE"))
        return int(self._binary_call({"op": "size"})["size"])

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - teardown best effort
            pass

    def __enter__(self) -> "TcpKVClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
