"""Event-driven actor framework — the paper's controlet programming model.

BESPOKV asks controlet developers to express logic as handlers over
*basic events* (network messages, timers) and *extended events*
(developer-defined, raised with ``Emit``); see paper §III-B and the
MS+SC template in Appendix B.  This module is the Python rendition of
that abstraction:

* :meth:`Actor.register` — bind a handler to a message type
  (``Register``/``OnReqIn`` in the paper);
* :meth:`Actor.on` / :meth:`Actor.emit` — extended events
  (``On``/``Emit`` in the paper);
* :meth:`Actor.call` — request/response with continuation callback and
  timeout, the idiom every replication protocol here is written in;
* :meth:`Actor.set_timer` — timers for heartbeats, leases, batching.

Actors are transport-agnostic: the same controlet class runs on the
simulated cluster (:mod:`repro.net.simnet`) and behind the real TCP
front-end (:mod:`repro.net.tcp`).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Dict, Optional, Protocol

from repro.errors import BespoError, RequestTimeout
from repro.hashing import stable_hash
from repro.net.message import Message

__all__ = ["Actor", "NodeContext", "Reply"]


class NodeContext(Protocol):
    """Runtime services a transport provides to an attached actor."""

    node_id: str

    def transmit(self, msg: Message) -> None: ...

    def set_timer(self, delay: float, fn: Callable[[], None]) -> Any: ...

    def now(self) -> float: ...


#: A handler for a response: receives (response_message, error-or-None).
Reply = Callable[[Optional[Message], Optional[BespoError]], None]


class _Pending:
    __slots__ = ("callback", "timer", "ctx", "span")

    def __init__(self, callback: Reply, timer: Any, ctx: Any = None,
                 span: Any = None):
        self.callback = callback
        self.timer = timer
        #: caller's RequestContext at call time, restored around the
        #: continuation (and around timeout expiry) so retry chains keep
        #: flowing the same request envelope without hand-threading it.
        self.ctx = ctx
        #: open ``rpc:*`` span when a SpanRecorder is attached.
        self.span = span


class Actor:
    """Base class for every node-resident component.

    Subclasses register handlers in :meth:`on_start` (or ``__init__``)
    and never touch the transport directly.
    """

    #: datalet kind for CPU cost accounting ("" = generic control logic).
    kind: str = ""

    def __init__(self, node_id: str):
        self.node_id = node_id
        self._ctx: Optional[NodeContext] = None
        self._handlers: Dict[str, Callable[[Message], None]] = {}
        self._events: Dict[str, Callable[..., None]] = {}
        self._pending: Dict[int, _Pending] = {}
        self.alive = True
        #: when True, repeated deliveries of the same msg_id are dropped
        #: (TCP-style receiver dedup).  The transport enables this only
        #: when it injects duplicates, so the hot path stays branch-cheap.
        self.dedup_incoming = False
        self._seen_ids: "deque[int]" = deque(maxlen=4096)
        self._seen_set: set[int] = set()
        #: SpanRecorder when tracing is attached (SimCluster.attach_obs);
        #: every span hook is behind an ``is not None`` check so the
        #: untraced hot path pays one flag test and zero allocations.
        self._obs: Any = None
        #: MetricsRegistry of the hosting cluster (set by add_actor);
        #: lets actors publish push-style instruments (histograms) in
        #: addition to the pull-style ``metrics_group``/``stats`` scrape.
        self._metrics: Any = None
        #: RequestContext of the message/continuation being processed;
        #: stamped onto outgoing messages so the envelope flows
        #: client -> controlet -> replication -> datalet -> ack without
        #: any handler threading it explicitly.
        self._ctx_current: Any = None

    # ------------------------------------------------------------------
    # lifecycle (called by the transport)
    # ------------------------------------------------------------------
    def attach(self, ctx: NodeContext) -> None:
        self._ctx = ctx

    def on_start(self) -> None:
        """Hook: the node joined the cluster and may send messages."""

    def on_stop(self) -> None:
        """Hook: the node is being shut down or killed."""

    def on_restart(self) -> None:
        """Hook: a crashed node came back (same process image, state
        intact, but every timer chain died with it).  Default: rerun
        :meth:`on_start` so heartbeat/poll loops resume."""
        self.on_start()

    # ------------------------------------------------------------------
    # the paper's event API
    # ------------------------------------------------------------------
    def register(self, msg_type: str, fn: Callable[[Message], None]) -> None:
        """Bind a handler for a *basic event* (an incoming message type)."""
        self._handlers[msg_type] = fn

    def on(self, event: str, fn: Callable[..., None]) -> None:
        """Define an *extended event* handler."""
        self._events[event] = fn

    def emit(self, event: str, *args: Any, **kw: Any) -> None:
        """Raise an extended event; dispatches synchronously."""
        try:
            fn = self._events[event]
        except KeyError:
            raise BespoError(f"{self.node_id}: no handler for event {event!r}") from None
        fn(*args, **kw)

    # ------------------------------------------------------------------
    # messaging
    # ------------------------------------------------------------------
    def send(self, dst: str, type: str, payload: Dict[str, Any] | None = None,
             *, ctx: Any = None) -> Message:
        """Fire-and-forget message."""
        msg = Message(type=type, payload=payload or {}, src=self.node_id, dst=dst,
                      ctx=ctx if ctx is not None else self._ctx_current)
        self._transmit(msg)
        return msg

    def call(
        self,
        dst: str,
        type: str,
        payload: Dict[str, Any] | None = None,
        callback: Optional[Reply] = None,
        timeout: Optional[float] = None,
        *,
        ctx: Any = None,
    ) -> Message:
        """Request/response: invoke ``callback(response, error)`` later.

        On timeout the callback receives ``(None, RequestTimeout)``; a
        dropped message (dead peer) surfaces the same way, which is how
        every failover path in this codebase notices trouble.
        """
        if ctx is None:
            ctx = self._ctx_current
        msg = Message(type=type, payload=payload or {}, src=self.node_id, dst=dst,
                      ctx=ctx)
        if callback is not None:
            span = None
            if self._obs is not None and ctx is not None and ctx.trace_id is not None:
                span = self._obs.begin(ctx, f"rpc:{type}", self.node_id)
                msg.ctx = ctx.child(span.span_id)
            timer = None
            if timeout is not None:
                timer = self.set_timer(timeout, lambda: self._expire(msg.msg_id, dst, type))
            self._pending[msg.msg_id] = _Pending(callback, timer, ctx, span)
        self._transmit(msg)
        return msg

    def respond(self, req: Message, type: str, payload: Dict[str, Any] | None = None) -> None:
        """Send a response correlated with request ``req``."""
        self._transmit(req.response(type, payload))

    def forward(self, req: Message, dst: str) -> None:
        """Re-address a request to another node, preserving correlation.

        The eventual response goes directly back to the original
        requester (used by P2P-style routing, §IV-E).
        """
        fwd = Message(
            type=req.type, payload=dict(req.payload), src=req.src, dst=dst,
            msg_id=req.msg_id, reply_to=req.reply_to, ctx=req.ctx,
        )
        self._transmit(fwd)

    def _expire(self, msg_id: int, dst: str, type: str) -> None:
        pending = self._pending.pop(msg_id, None)
        if pending is None:
            return
        if pending.span is not None:
            self._obs.end(pending.span, "timeout")
        if pending.ctx is not None:
            prev = self._ctx_current
            self._ctx_current = pending.ctx
            try:
                pending.callback(None, RequestTimeout(f"{type} to {dst} timed out"))
            finally:
                self._ctx_current = prev
        else:
            pending.callback(None, RequestTimeout(f"{type} to {dst} timed out"))

    def _transmit(self, msg: Message) -> None:
        if self._ctx is None:
            raise BespoError(f"actor {self.node_id} not attached to a transport")
        self._ctx.transmit(msg)

    # ------------------------------------------------------------------
    # dispatch (called by the transport)
    # ------------------------------------------------------------------
    def deliver(self, msg: Message) -> None:
        """Route one incoming message to the right continuation/handler."""
        if not self.alive:
            return
        if msg.reply_to:
            pending = self._pending.pop(msg.reply_to, None)
            if pending is not None:
                if pending.timer is not None:
                    pending.timer.cancel()
                if pending.span is not None:
                    self._obs.end(pending.span, msg.type)
                if pending.ctx is not None:
                    prev = self._ctx_current
                    self._ctx_current = pending.ctx
                    try:
                        pending.callback(msg, None)
                    finally:
                        self._ctx_current = prev
                else:
                    pending.callback(msg, None)
                return
            # Late response after timeout: drop silently.
            return
        if self.dedup_incoming:
            if msg.msg_id in self._seen_set:
                return  # duplicate delivery (injected); already handled
            if len(self._seen_ids) == self._seen_ids.maxlen:
                self._seen_set.discard(self._seen_ids[0])
            self._seen_ids.append(msg.msg_id)
            self._seen_set.add(msg.msg_id)
        handler = self._handlers.get(msg.type)
        if handler is None:
            self.on_unhandled(msg)
            return
        if msg.ctx is not None:
            prev = self._ctx_current
            self._ctx_current = msg.ctx
            try:
                handler(msg)
            finally:
                self._ctx_current = prev
        else:
            handler(msg)

    def on_unhandled(self, msg: Message) -> None:
        """Hook for unknown message types; default replies with an error."""
        if msg.src:
            self.respond(msg, "error", {"error": f"unhandled message type {msg.type!r}"})

    # ------------------------------------------------------------------
    # model-checker introspection
    # ------------------------------------------------------------------
    def snapshot_state(self) -> Dict[str, Any]:
        """Protocol-relevant state digest for model-checker fingerprints.

        Subclasses extend the returned dict with whatever distinguishes
        two *behaviorally different* states, and **exclude** anything
        that merely drifts with wall time or accounting (timestamps,
        ``stats`` counters) — spurious differences there would make the
        explored state graph never close.  Values must be canonicalizable
        (dicts/lists/scalars).
        """
        return {
            "alive": self.alive,
            # count, not msg_ids: the global id counter diverges across
            # replayed branches, so ids must never reach a fingerprint
            "pending_calls": len(self._pending),
        }

    def pending_introspect(self) -> list:
        """``(msg_id, has_timer, armed)`` per outstanding call — feeds
        the checker's orphaned-pending-call invariant: a continuation
        whose timeout timer was *cancelled* without the entry being
        removed can only resolve via a response that may never come.
        Calls issued without a timeout (colocated datalet calls) have
        ``has_timer=False`` and are legitimately unbounded."""
        out = []
        for msg_id, pending in self._pending.items():
            has_timer = pending.timer is not None
            armed = has_timer and not pending.timer.cancelled
            out.append((msg_id, has_timer, armed))
        return out

    # ------------------------------------------------------------------
    # time
    # ------------------------------------------------------------------
    def set_timer(self, delay: float, fn: Callable[[], None]) -> Any:
        """Run ``fn`` after ``delay`` seconds unless the node dies first."""
        if self._ctx is None:
            raise BespoError(f"actor {self.node_id} not attached to a transport")

        def guarded() -> None:
            if self.alive:
                fn()

        # surfaced in race-detector reports (see simnet._NodeCtx.set_timer)
        guarded.timer_label = getattr(fn, "__qualname__", "timer")  # type: ignore[attr-defined]
        return self._ctx.set_timer(delay, guarded)

    def now(self) -> float:
        if self._ctx is None:
            raise BespoError(f"actor {self.node_id} not attached to a transport")
        return self._ctx.now()

    def loop_phase(self, label: str, period: float) -> float:
        """Stable per-(node, loop) offset in ``(0, period)``.

        Add it to a periodic loop's *first* arm: two independent
        same-period loops armed at the same instant (heartbeat and
        anti-entropy both start at boot) would otherwise fire at the
        same timestamp forever, leaving their relative order to the
        event heap's insertion sequence — exactly the schedule
        sensitivity ``repro.analysis.races`` flags.  Exact-period
        re-arms preserve the offset, so one stagger fixes the chain.
        """
        return period * ((stable_hash(f"{self.node_id}:{label}") % 65521) + 1) / 65523.0

    # ------------------------------------------------------------------
    # CPU accounting (overridden by datalets)
    # ------------------------------------------------------------------
    def service_demand(self, msg: Message, costs: Any) -> float:
        """Extra CPU seconds consumed processing ``msg`` (beyond the
        transport's per-message cost).  The simulated transport charges
        this to the node's CPU before invoking the handler.  ``costs`` is
        the cluster's :class:`~repro.sim.costs.CostModel`."""
        return 0.0
