"""Message type exchanged between actors (clients, controlets, datalets,
coordinator, DLM, shared log).

A message is a small typed envelope around a dict payload.  The wire
size is *estimated* (header + key/value lengths) because the simulator
only needs sizes for bandwidth/latency modeling; the real TCP layer
(:mod:`repro.net.tcp`) uses actual encoded bytes instead.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict

__all__ = ["Message", "HEADER_BYTES"]

#: modeled fixed per-message overhead (framing, type tag, ids).
HEADER_BYTES = 64

_msg_ids = itertools.count(1)


@dataclass
class Message:
    """Typed envelope routed by a transport.

    ``reply_to`` carries the ``msg_id`` of the request a response
    answers; transports use it to resume the caller's continuation.

    ``ctx`` is the per-request envelope (:class:`repro.obs.context.
    RequestContext`) stamped by the actor fabric; it rides *outside*
    the payload so it never affects modeled wire size, payload
    sanitization, or protocol semantics.  ``None`` for messages that
    are not part of a client request (heartbeats, timers, gossip).
    """

    type: str
    payload: Dict[str, Any] = field(default_factory=dict)
    src: str = ""
    dst: str = ""
    msg_id: int = field(default_factory=lambda: next(_msg_ids))
    reply_to: int = 0
    ctx: Any = None

    def size_bytes(self) -> int:
        """Estimated wire size for network modeling."""
        n = HEADER_BYTES
        for k, v in self.payload.items():
            n += len(k)
            if isinstance(v, str):
                n += len(v)
            elif isinstance(v, bytes):
                n += len(v)
            elif isinstance(v, (list, tuple)):
                n += sum(len(x) if isinstance(x, (str, bytes)) else 8 for x in v)
            elif isinstance(v, dict):
                n += sum(
                    len(kk) + (len(vv) if isinstance(vv, (str, bytes)) else 8)
                    for kk, vv in v.items()
                )
            else:
                n += 8
        return n

    def response(self, type: str, payload: Dict[str, Any] | None = None) -> "Message":
        """Build a response envelope addressed back to the sender."""
        return Message(
            type=type,
            payload=payload or {},
            src=self.dst,
            dst=self.src,
            reply_to=self.msg_id,
            ctx=self.ctx,
        )

    def __repr__(self) -> str:  # compact, log-friendly
        return (
            f"Message({self.type}, {self.src}->{self.dst}, id={self.msg_id}"
            + (f", re={self.reply_to}" if self.reply_to else "")
            + f", {self.payload!r})"
        )
