"""DPDK kernel-bypass model (paper §II "Low latency", Appendix E).

The paper adds DPDK support to BESPOKV and reports up to 65% lower
latency, ~3x throughput, and more stable performance than the kernel
socket path (Fig 17).  Two effects are modeled:

1. **Per-message CPU**: a poll-mode driver skips the kernel network
   stack — hosts created with ``dpdk=True`` are charged
   :attr:`~repro.sim.costs.CostModel.dpdk_msg_cost` instead of
   ``socket_msg_cost`` per message (6x cheaper by default).
2. **Wire latency & jitter**: no syscall/interrupt/copy path means a
   lower base one-way latency and far less variance.

Use :func:`dpdk_net_params` / :data:`SOCKET_NET_PARAMS` as the
``net_params`` of a deployment spec and set ``dpdk=True`` to flip both
knobs, as ``benchmarks/test_fig17_dpdk.py`` does.
"""

from __future__ import annotations

from repro.sim import NetworkParams

__all__ = ["SOCKET_NET_PARAMS", "dpdk_net_params"]

#: the default kernel-socket fabric (10 GbE local testbed flavor).
SOCKET_NET_PARAMS = NetworkParams(
    one_way_latency=100e-6,
    bandwidth=1.25e9,  # 10 Gbps
    jitter_frac=0.25,
)


def dpdk_net_params() -> NetworkParams:
    """Kernel-bypass fabric: ~65% lower base latency, tight jitter."""
    return NetworkParams(
        one_way_latency=35e-6,
        bandwidth=1.25e9,
        jitter_frac=0.05,
    )
