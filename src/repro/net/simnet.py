"""Simulated cluster transport: actors + network model + per-host CPUs.

This is where protocol code meets the discrete-event kernel.  Every
actor (controlet, datalet, coordinator, DLM, shared-log node) is placed
on a *host*; colocated actors (the paper's 1:1 controlet-datalet pair on
one VM) share that host's CPU :class:`~repro.sim.resources.Server` and
talk over loopback.  Message delivery charges the receiving host:

    network delay  →  [CPU: per-message stack cost + actor.service_demand]  →  handler

so saturation throughput per node and queueing delay under load are
emergent properties of the cost model, not scripted numbers.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.errors import BespoError
from repro.net.actor import Actor
from repro.net.message import Message
from repro.obs.metrics import MetricsRegistry
from repro.sim import (
    DEFAULT_COSTS,
    CostModel,
    DurableStore,
    Network,
    NetworkParams,
    RngRegistry,
    Server,
    SimFuture,
    Simulator,
)

__all__ = ["SimCluster", "ClientPort"]

#: vCPUs per host, matching the paper's n1-standard-4 instances.
DEFAULT_HOST_CPUS = 4


class _Host:
    __slots__ = ("name", "cpu", "dpdk", "free", "actors")

    def __init__(self, name: str, cpu: Server, dpdk: bool, free: bool):
        self.name = name
        self.cpu = cpu
        self.dpdk = dpdk
        self.free = free
        self.actors: list[str] = []


class _NodeCtx:
    """Per-actor runtime services bound to one cluster."""

    __slots__ = ("node_id", "_cluster")

    def __init__(self, node_id: str, cluster: "SimCluster"):
        self.node_id = node_id
        self._cluster = cluster

    def transmit(self, msg: Message) -> None:
        self._cluster.route(msg)

    def set_timer(self, delay: float, fn: Callable[[], None]) -> Any:
        tracer = self._cluster.race_tracer
        if tracer is None:
            return self._cluster.sim.call_later(delay, fn)
        node_id = self.node_id
        label = f"timer:{getattr(fn, 'timer_label', 'fn')}"

        def traced() -> None:
            tracer.record_access(node_id, label)
            fn()

        # keep the label visible to kernel introspection (armed_events)
        traced.timer_label = getattr(fn, "timer_label", "fn")  # type: ignore[attr-defined]
        return self._cluster.sim.call_later(delay, traced)

    def now(self) -> float:
        return self._cluster.sim.now


class ClientPort(Actor):
    """Load-generator endpoint: issues requests, awaits responses.

    Runs on a *free* host (no CPU charge) because the paper saturates
    servers from a separately provisioned, oversized client cluster.
    """

    def __init__(self, node_id: str):
        super().__init__(node_id)

    def request(
        self,
        dst: str,
        type: str,
        payload: Dict[str, Any] | None = None,
        timeout: Optional[float] = None,
        ctx: Any = None,
    ) -> SimFuture:
        """Send a request; the returned future resolves with the response
        :class:`Message` or raises :class:`RequestTimeout`.

        ``ctx`` is the client's :class:`~repro.obs.context.RequestContext`
        (request identity + tracing); it rides the message envelope end
        to end."""
        if self._ctx is None:
            raise BespoError(f"port {self.node_id} not attached")
        fut: SimFuture = self._ctx._cluster.sim.create_future()  # type: ignore[attr-defined]

        def done(resp: Optional[Message], err: Optional[BespoError]) -> None:
            if err is not None:
                fut.set_exception(err)
            else:
                fut.set_result(resp)

        self.call(dst, type, payload, callback=done, timeout=timeout, ctx=ctx)
        return fut


class SimCluster:
    """Container wiring actors, hosts, the network and the clock."""

    def __init__(
        self,
        sim: Optional[Simulator] = None,
        costs: CostModel = DEFAULT_COSTS,
        net_params: Optional[NetworkParams] = None,
        seed: int = 0,
    ):
        self.sim = sim or Simulator()
        self.costs = costs
        self.rng = RngRegistry(seed)
        self.network = Network(self.sim, net_params or NetworkParams(), self.rng)
        self._hosts: Dict[str, _Host] = {}
        self._actors: Dict[str, Actor] = {}
        self._actor_host: Dict[str, str] = {}
        self._started = False
        #: optional :class:`repro.analysis.races.RaceDetector`; see
        #: :meth:`attach_race_detector`.
        self.race_tracer: Optional[Any] = None
        #: optional :class:`repro.net.sanitize.PayloadSanitizer`; see
        #: :meth:`attach_sanitizer`.
        self.sanitizer: Optional[Any] = None
        #: optional :class:`repro.obs.trace.SpanRecorder`; see
        #: :meth:`attach_obs`.
        self.obs: Optional[Any] = None
        #: always-on metrics plane; actors' live stats dicts are
        #: registered as scrape groups in :meth:`add_actor` and read only
        #: when a snapshot is taken (harness.stats.collect_registry).
        self.metrics = MetricsRegistry()
        #: per-host durable stores (created on first use); owned by the
        #: cluster — NOT by actors — so a crash-restart can tear a
        #: host's actors down and re-spawn fresh ones that recover from
        #: the surviving store.  ``kill_host`` applies power-loss damage.
        self._durable: Dict[str, DurableStore] = {}
        #: loss policy for unsynced bytes on crash (see sim.durable).
        self.durable_loss = "partial"

    # ------------------------------------------------------------------
    # topology construction
    # ------------------------------------------------------------------
    def add_host(
        self,
        name: str,
        cpus: int = DEFAULT_HOST_CPUS,
        dpdk: bool = False,
        free: bool = False,
    ) -> str:
        """Create a host (a VM in the paper's deployments)."""
        if name in self._hosts:
            raise BespoError(f"duplicate host {name!r}")
        self._hosts[name] = _Host(name, Server(self.sim, cpus, f"cpu:{name}"), dpdk, free)
        return name

    def add_actor(self, actor: Actor, host: Optional[str] = None) -> Actor:
        """Place ``actor`` on ``host`` (auto-created if missing).

        May be called mid-simulation — that is exactly how the failover
        manager launches standby controlet-datalet pairs.
        """
        if actor.node_id in self._actors:
            raise BespoError(f"duplicate actor id {actor.node_id!r}")
        host = host or actor.node_id
        if host not in self._hosts:
            self.add_host(host)
        self._hosts[host].actors.append(actor.node_id)
        self._actors[actor.node_id] = actor
        self._actor_host[actor.node_id] = host
        actor.attach(_NodeCtx(actor.node_id, self))
        actor._obs = self.obs
        actor._metrics = self.metrics
        # metrics scrape source: an explicit metrics_group() hook wins,
        # else a plain live `stats` dict (controlets) is registered as-is
        group = getattr(actor, "metrics_group", None)
        if callable(group):
            self.metrics.register_group(actor.node_id, group)
        else:
            stats = getattr(actor, "stats", None)
            if isinstance(stats, dict):
                self.metrics.register_group(actor.node_id, stats)
        if self.network.params.duplicate_rate > 0.0:
            # the fabric may deliver a message twice; actors dedup by
            # msg_id like a TCP receive window would
            actor.dedup_incoming = True
        if self._started:
            self.sim.call_soon(actor.on_start)
        return actor

    def add_port(self, name: str) -> ClientPort:
        """Create a load-generator endpoint on its own free host."""
        port = ClientPort(name)
        if name not in self._hosts:
            self.add_host(name, cpus=1, free=True)
        self.add_actor(port, host=name)
        return port

    def start(self) -> None:
        """Invoke ``on_start`` on every actor (in placement order)."""
        self._started = True
        for actor in list(self._actors.values()):
            self.sim.call_soon(actor.on_start)

    def attach_race_detector(self, detector: Any) -> None:
        """Instrument this cluster for schedule-sensitivity detection.

        Installs ``detector`` as the kernel event tracer and records an
        access for every message delivery and timer callback.  Attach
        **before** :meth:`start` so boot timers are covered too.  See
        :mod:`repro.analysis.races`.
        """
        self.race_tracer = detector
        self.sim.add_tracer(detector)

    def attach_sanitizer(self, sanitizer: Optional[Any] = None) -> Any:
        """Enable copy-on-send payload checking on this cluster.

        Every message entering :meth:`route` is digest-stamped; on
        delivery the digest is re-verified (catching senders that mutate
        a payload already in flight) and the receiver gets a recursively
        frozen view (catching handlers that stash and later mutate a
        received dict).  See :mod:`repro.net.sanitize`.
        """
        if sanitizer is None:
            from repro.net.sanitize import PayloadSanitizer  # local: optional feature

            sanitizer = PayloadSanitizer()
        self.sanitizer = sanitizer
        return sanitizer

    def attach_obs(self, recorder: Optional[Any] = None) -> Any:
        """Enable end-to-end span tracing on this cluster.

        Installs ``recorder`` (default: a fresh
        :class:`~repro.obs.trace.SpanRecorder` on this cluster's clock)
        on every current and future actor.  Attach **before**
        :meth:`start` so boot-time requests are covered.  Without a
        recorder the fabric's span hooks are single ``is None`` tests —
        tracing off costs no allocations on the message hot path.
        """
        if recorder is None:
            from repro.obs.trace import SpanRecorder  # local: optional feature

            recorder = SpanRecorder(self.sim)
        self.obs = recorder
        for actor in self._actors.values():
            actor._obs = recorder
        return recorder

    # ------------------------------------------------------------------
    # durable storage
    # ------------------------------------------------------------------
    def durable_store(self, host: str) -> DurableStore:
        """The (lazily created) durable store of ``host``."""
        store = self._durable.get(host)
        if store is None:
            store = DurableStore(
                host,
                self.rng.stream(f"durable.{host}"),
                unsynced_loss=self.durable_loss,
            )
            self._durable[host] = store
        return store

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def actor(self, node_id: str) -> Actor:
        return self._actors[node_id]

    def host_of(self, node_id: str) -> str:
        return self._actor_host[node_id]

    def host_cpu(self, host: str) -> Server:
        return self._hosts[host].cpu

    @property
    def actors(self) -> Dict[str, Actor]:
        return dict(self._actors)

    # ------------------------------------------------------------------
    # message routing
    # ------------------------------------------------------------------
    def route(self, msg: Message) -> None:
        """Deliver ``msg`` honoring network delay and destination CPU."""
        dst_actor = self._actors.get(msg.dst)
        if dst_actor is None:
            # Unknown destination behaves like a dead peer: silently
            # dropped; the sender's timeout fires.
            return
        src_host = self._actor_host.get(msg.src, msg.src)
        dst_host = self._actor_host[msg.dst]
        nbytes = msg.size_bytes()
        if self.sanitizer is not None:
            self.sanitizer.on_send(msg)
        if self.obs is not None and msg.ctx is not None and msg.ctx.trace_id is not None:
            net_span = self.obs.begin(msg.ctx, f"net:{msg.type}", msg.src)
        else:
            net_span = None

        if (net_span is None and self.sanitizer is None
                and self.race_tracer is None):
            # Fast path for saturated benchmark runs: no observability
            # plane attached, so skip the per-arrival branch ladder and
            # build the smallest possible closure.
            hosts = self._hosts
            costs = self.costs

            def on_arrival_fast() -> None:
                host = hosts[dst_host]
                if host.free:
                    dst_actor.deliver(msg)
                    return
                demand = costs.msg_cost(dpdk=host.dpdk) + dst_actor.service_demand(msg, costs)
                host.cpu.submit(demand).add_done_callback(
                    lambda _f: dst_actor.deliver(msg))

            self.network.send(src_host, dst_host, nbytes, on_arrival_fast)
            return

        def on_arrival() -> None:
            if self.sanitizer is not None:
                self.sanitizer.on_deliver(msg)
            if self.race_tracer is not None:
                # Attribute the touch at *arrival*: the destination's CPU
                # queue order — and therefore handler order — is fixed the
                # moment the message lands, so two same-timestamp arrivals
                # at one actor are exactly the schedule-sensitive pair the
                # detector is after.
                self.race_tracer.record_access(msg.dst, f"deliver:{msg.type}")
            if net_span is not None:
                self.obs.end(net_span, "ok")
            host = self._hosts[dst_host]
            if host.free:
                dst_actor.deliver(msg)
                return
            demand = self.costs.msg_cost(dpdk=host.dpdk) + dst_actor.service_demand(msg, self.costs)
            if net_span is not None:
                # receiver-side dispatch: CPU queueing + service time
                # before the handler runs (the "controlet dispatch" /
                # "datalet service" stages of the breakdown)
                cpu_span = self.obs.begin(msg.ctx, f"cpu:{msg.type}", msg.dst)

                def dispatched(_f: Any) -> None:
                    self.obs.end(cpu_span, "ok")
                    dst_actor.deliver(msg)

                host.cpu.submit(demand).add_done_callback(dispatched)
            else:
                host.cpu.submit(demand).add_done_callback(lambda _f: dst_actor.deliver(msg))

        self.network.send(src_host, dst_host, nbytes, on_arrival)

    # ------------------------------------------------------------------
    # failure injection
    # ------------------------------------------------------------------
    def kill_actor(self, node_id: str) -> None:
        """Crash one actor: no more sends, receives or timer callbacks."""
        actor = self._actors.get(node_id)
        if actor is None or not actor.alive:
            return
        actor.alive = False
        actor.on_stop()

    def kill_host(self, host: str) -> None:
        """Crash a whole VM: every colocated actor dies and the network
        drops its traffic (paper's node-failure experiments).  The
        host's durable store (if any) takes power-loss damage: staged
        writes vanish and the unsynced suffix of every file is torn per
        the loss policy — fsynced bytes always survive."""
        h = self._hosts.get(host)
        if h is None:
            raise BespoError(f"unknown host {host!r}")
        self.network.kill(host)
        for node_id in h.actors:
            self.kill_actor(node_id)
        store = self._durable.get(host)
        if store is not None:
            store.on_crash(self.sim.now)

    def remove_actor(self, node_id: str) -> None:
        """Tear an actor down completely so a fresh instance may be
        added under the same id (crash-restart respawn).  Unlike
        :meth:`kill_actor` this forgets the object: its in-memory state
        is gone for good — recovery must come from durable storage."""
        actor = self._actors.pop(node_id, None)
        if actor is None:
            return
        if actor.alive:
            actor.alive = False
            actor.on_stop()
        host = self._actor_host.pop(node_id, None)
        if host is not None and host in self._hosts:
            try:
                self._hosts[host].actors.remove(node_id)
            except ValueError:
                pass

    def restart_host(self, host: str) -> None:
        """Bring a crashed VM back: network traffic resumes and every
        colocated actor re-runs its start hooks (``on_restart``).  The
        actors keep their in-memory state — a restart models a process
        that froze and thawed, so protocol code must *fence* itself
        until it has confirmed its role is still valid."""
        h = self._hosts.get(host)
        if h is None:
            raise BespoError(f"unknown host {host!r}")
        if not self.network.is_dead(host):
            return
        self.network.revive(host)
        for node_id in h.actors:
            actor = self._actors[node_id]
            if not actor.alive:
                actor.alive = True
                self.sim.call_soon(actor.on_restart)

    def set_host_slowdown(self, host: str, factor: float) -> None:
        """Degrade (or restore, with factor=1) a host's CPU service rate
        — the chaos ``slow_node`` fault."""
        h = self._hosts.get(host)
        if h is None:
            raise BespoError(f"unknown host {host!r}")
        h.cpu.set_slowdown(factor)

    def hosts(self) -> list[str]:
        return list(self._hosts)

    def is_host_alive(self, host: str) -> bool:
        return not self.network.is_dead(host)
