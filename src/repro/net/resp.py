"""RESP (REdis Serialization Protocol) codec.

BESPOKV ports existing stores by accepting "a parser for their own
protocols"; SSDB and Redis both speak simple text protocols (§III-A,
§VII).  This is an incremental RESP2 parser/serializer: feed it bytes
as they arrive off a socket, pull complete values out.  Used by the
real TCP front-end to expose any datalet engine as a Redis-compatible
server (tRedis).
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

from repro.errors import ProtocolError

__all__ = ["RespParser", "INCOMPLETE", "encode_command", "encode_bulk", "encode_error",
           "encode_simple", "encode_integer", "encode_array", "ProtocolErrorValue"]


class _Incomplete:
    """Sentinel: the parser needs more bytes before a value is ready."""

    def __bool__(self) -> bool:
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<resp-incomplete>"


INCOMPLETE = _Incomplete()

RespValue = Union[str, bytes, int, None, List["RespValue"]]


def encode_bulk(value: Optional[Union[str, bytes]]) -> bytes:
    """Bulk string (``$<len>\\r\\n<data>\\r\\n``); None encodes the null
    bulk string RESP uses for cache misses."""
    if value is None:
        return b"$-1\r\n"
    data = value.encode() if isinstance(value, str) else value
    return b"$" + str(len(data)).encode() + b"\r\n" + data + b"\r\n"


def encode_simple(value: str) -> bytes:
    if "\r" in value or "\n" in value:
        raise ProtocolError("simple strings cannot contain CR/LF")
    return b"+" + value.encode() + b"\r\n"


def encode_error(message: str) -> bytes:
    return b"-" + message.replace("\r", " ").replace("\n", " ").encode() + b"\r\n"


def encode_integer(value: int) -> bytes:
    return b":" + str(value).encode() + b"\r\n"


def encode_array(items: List[bytes]) -> bytes:
    """Array of already-encoded elements."""
    return b"*" + str(len(items)).encode() + b"\r\n" + b"".join(items)


def encode_command(*args: Union[str, bytes]) -> bytes:
    """Client-side command encoding: array of bulk strings."""
    return encode_array([encode_bulk(a) for a in args])


class RespParser:
    """Incremental RESP2 decoder.

    >>> p = RespParser()
    >>> p.feed(b"*2\\r\\n$3\\r\\nGET\\r\\n$1\\r\\nk\\r\\n")
    >>> p.next_value()
    [b'GET', b'k']
    """

    def __init__(self, max_bulk: int = 64 * 1024 * 1024):
        self._buf = bytearray()
        self._max_bulk = max_bulk

    def feed(self, data: bytes) -> None:
        self._buf.extend(data)

    def next_value(self) -> RespValue:
        """Decode one complete value.

        Returns the module-level :data:`INCOMPLETE` sentinel when more
        bytes are needed (``None`` is a legal decoded value — the null
        bulk string).  Raises :class:`ProtocolError` on malformed input.
        """
        result = self._parse(0)
        if result is None:
            return INCOMPLETE
        value, consumed = result
        del self._buf[:consumed]
        return None if value is NullValue else value

    # -- internals -------------------------------------------------------
    def _line_end(self, start: int) -> Optional[int]:
        idx = self._buf.find(b"\r\n", start)
        return None if idx < 0 else idx

    def _parse(self, pos: int) -> Optional[Tuple[RespValue, int]]:
        if pos >= len(self._buf):
            return None
        marker = self._buf[pos : pos + 1]
        end = self._line_end(pos + 1)
        if end is None:
            return None
        header = bytes(self._buf[pos + 1 : end])
        after = end + 2

        if marker == b"+":
            return header.decode(), after
        if marker == b"-":
            return ProtocolErrorValue(header.decode()), after
        if marker == b":":
            try:
                return int(header), after
            except ValueError:
                raise ProtocolError(f"bad integer: {header!r}") from None
        if marker == b"$":
            try:
                length = int(header)
            except ValueError:
                raise ProtocolError(f"bad bulk length: {header!r}") from None
            if length == -1:
                return NullValue, after
            if length < 0 or length > self._max_bulk:
                raise ProtocolError(f"bulk length out of range: {length}")
            if len(self._buf) < after + length + 2:
                return None
            data = bytes(self._buf[after : after + length])
            if self._buf[after + length : after + length + 2] != b"\r\n":
                raise ProtocolError("bulk string missing CRLF terminator")
            return data, after + length + 2
        if marker == b"*":
            try:
                count = int(header)
            except ValueError:
                raise ProtocolError(f"bad array length: {header!r}") from None
            if count == -1:
                return NullValue, after
            if count < 0:
                raise ProtocolError(f"array length out of range: {count}")
            items: List[RespValue] = []
            cursor = after
            for _ in range(count):
                sub = self._parse(cursor)
                if sub is None:
                    return None
                value, cursor = sub
                items.append(None if value is NullValue else value)
            return items, cursor
        raise ProtocolError(f"unknown RESP type marker: {marker!r}")


class _Null:
    """Internal sentinel distinguishing 'incomplete' from 'null bulk'."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<resp-null>"


NullValue = _Null()


class ProtocolErrorValue(str):
    """An ``-ERR ...`` reply decoded from the wire (kept as a str
    subclass so callers can distinguish it from data)."""
