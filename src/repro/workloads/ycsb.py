"""YCSB-style workload generators (paper §VIII-A).

The paper uses three mixes:

* update-intensive — 50% Get / 50% Put (YCSB-A);
* read-mostly      — 95% Get /  5% Put (YCSB-B);
* scan-intensive   — 95% Scan / 5% Put (YCSB-E).

Tuples default to 16 B keys and 32 B values as in the paper.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Tuple, Union

from repro.errors import ConfigError
from repro.workloads.keys import KeySpace, UniformKeys, ZipfKeys

__all__ = ["OpMix", "Workload", "LatestWorkload",
           "YCSB_A", "YCSB_B", "YCSB_D", "YCSB_E", "YCSB_F", "make_workload"]

#: an op is ("get", key) | ("put", key, val) | ("del", key)
#: | ("scan", start_key, count)
Op = Tuple[str, ...]


@dataclass(frozen=True)
class OpMix:
    """Operation ratios; must sum to 1.

    ``rmw`` is YCSB-F's read-modify-write: the driver reads the key,
    transforms the value, and writes it back (two store round trips).
    """

    get: float = 0.0
    put: float = 0.0
    scan: float = 0.0
    delete: float = 0.0
    rmw: float = 0.0

    def __post_init__(self) -> None:
        total = self.get + self.put + self.scan + self.delete + self.rmw
        if abs(total - 1.0) > 1e-9:
            raise ConfigError(f"op mix must sum to 1, got {total}")
        if min(self.get, self.put, self.scan, self.delete, self.rmw) < 0:
            raise ConfigError("op ratios must be non-negative")


YCSB_A = OpMix(get=0.50, put=0.50)
YCSB_B = OpMix(get=0.95, put=0.05)
YCSB_E = OpMix(scan=0.95, put=0.05)
YCSB_F = OpMix(get=0.50, rmw=0.50)


class Workload:
    """Closed-loop op stream over a keyspace."""

    def __init__(
        self,
        mix: OpMix,
        popularity: Union[UniformKeys, ZipfKeys],
        value_size: int = 32,
        scan_length: int = 50,
        rng: Optional[random.Random] = None,
    ):
        self.mix = mix
        self.popularity = popularity
        self.space = popularity.space
        self.value_size = value_size
        self.scan_length = scan_length
        self.rng = rng or random.Random(1)
        self._value_pool = [
            "".join(self.rng.choices("abcdefghijklmnopqrstuvwxyz0123456789", k=value_size))
            for _ in range(64)
        ]
        self.counts = {"get": 0, "put": 0, "scan": 0, "del": 0}

    def value(self) -> str:
        return self._value_pool[self.rng.randrange(len(self._value_pool))]

    def next_op(self) -> Op:
        r = self.rng.random()
        key = self.popularity.next_key()
        m = self.mix
        if r < m.get:
            self.counts["get"] += 1
            return ("get", key)
        if r < m.get + m.put:
            self.counts["put"] += 1
            return ("put", key, self.value())
        if r < m.get + m.put + m.scan:
            self.counts["scan"] += 1
            return ("scan", key, self.scan_length)
        if r < m.get + m.put + m.scan + m.rmw:
            self.counts["rmw"] = self.counts.get("rmw", 0) + 1
            return ("rmw", key, self.value())
        self.counts["del"] += 1
        return ("del", key)

    def preload_ops(self):
        """One put per key — the load phase before measurement."""
        for i in range(self.space.n):
            yield ("put", self.space.key(i), self.value())


#: YCSB-D ratios (95% read / 5% insert); the *latest* distribution is
#: what :class:`LatestWorkload` adds on top.
YCSB_D = OpMix(get=0.95, put=0.05)


class LatestWorkload(Workload):
    """YCSB-D: read-latest.  Inserts append fresh keys; reads follow a
    Zipfian over *recency ranks* so freshly inserted records are the
    hottest — the "status updates" access pattern."""

    def __init__(
        self,
        keys: int = 10_000,
        preloaded: int = 1_000,
        theta: float = 0.99,
        value_size: int = 32,
        seed: int = 0,
        recency_window: int = 1_000,
    ):
        if preloaded < 1 or preloaded > keys:
            raise ConfigError("preloaded must be in [1, keys]")
        space = KeySpace(keys)
        rng = random.Random(seed)
        super().__init__(YCSB_D, UniformKeys(space, rng), value_size=value_size, rng=rng)
        self.inserted = preloaded
        # Zipf CDF over recency ranks 1..W
        import numpy as np

        window = min(recency_window, keys)
        weights = 1.0 / np.power(np.arange(1, window + 1, dtype=np.float64), theta)
        self._recency_cdf = np.cumsum(weights)
        self._recency_cdf /= self._recency_cdf[-1]

    def _latest_key(self) -> str:
        import numpy as np

        rank = int(np.searchsorted(self._recency_cdf, self.rng.random(), side="right"))
        index = max(0, self.inserted - 1 - rank)
        return self.space.key(index)

    def next_op(self) -> Op:
        if self.rng.random() < self.mix.put and self.inserted < self.space.n:
            key = self.space.key(self.inserted)
            self.inserted += 1
            self.counts["put"] += 1
            return ("put", key, self.value())
        self.counts["get"] += 1
        return ("get", self._latest_key())

    def preload_ops(self):
        for i in range(self.inserted):
            yield ("put", self.space.key(i), self.value())


def make_workload(
    mix: OpMix,
    keys: int = 10_000,
    distribution: str = "zipfian",
    theta: float = 0.99,
    value_size: int = 32,
    scan_length: int = 50,
    seed: int = 0,
    spread_alpha: bool = False,
) -> Workload:
    """Convenience factory mirroring the paper's workload table."""
    space = KeySpace(keys, spread_alpha=spread_alpha)
    rng = random.Random(seed)
    if distribution == "zipfian":
        pop: Union[UniformKeys, ZipfKeys] = ZipfKeys(space, theta=theta, rng=rng)
    elif distribution == "uniform":
        pop = UniformKeys(space, rng=rng)
    else:
        raise ConfigError(f"unknown distribution {distribution!r}")
    return Workload(mix, pop, value_size=value_size, scan_length=scan_length, rng=rng)
