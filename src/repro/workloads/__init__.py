"""Workload generators: YCSB mixes, key popularity, HPC traces, DL ingest."""

from repro.workloads.dl import DLIngestWorkload
from repro.workloads.hpc import (
    ANALYTICS_MIX,
    HPCPhaseTrace,
    IO_FORWARDING_MIX,
    JOB_LAUNCH_MIX,
    MONITORING_MIX,
    MonitoringTrace,
    hpc_workload,
)
from repro.workloads.keys import KeySpace, UniformKeys, ZipfKeys
from repro.workloads.ycsb import (
    LatestWorkload,
    OpMix,
    Workload,
    YCSB_A,
    YCSB_B,
    YCSB_D,
    YCSB_E,
    YCSB_F,
    make_workload,
)

__all__ = [
    "KeySpace",
    "UniformKeys",
    "ZipfKeys",
    "OpMix",
    "Workload",
    "LatestWorkload",
    "YCSB_A",
    "YCSB_B",
    "YCSB_D",
    "YCSB_E",
    "YCSB_F",
    "make_workload",
    "JOB_LAUNCH_MIX",
    "IO_FORWARDING_MIX",
    "MONITORING_MIX",
    "ANALYTICS_MIX",
    "hpc_workload",
    "HPCPhaseTrace",
    "MonitoringTrace",
    "DLIngestWorkload",
]
