"""Deep-learning training ingest workload (paper §VI-B).

Training reads the full dataset every epoch in a shuffled order; the
dataset is sharded into fixed-size records (image batches).  The first
epoch is a cold read (backing store); later epochs hit the distributed
cache.  The §VI-B experiment compares ingest rate with and without the
BESPOKV cache (paper: 40 vs 10 images/s, 4x).
"""

from __future__ import annotations

import random
from typing import Iterator, List, Tuple

from repro.errors import ConfigError

__all__ = ["DLIngestWorkload"]


class DLIngestWorkload:
    """Epoch-shuffled reads over an image-shard dataset."""

    def __init__(
        self,
        images: int = 2000,
        batch: int = 4,
        record_bytes: int = 4096,
        seed: int = 0,
    ):
        if images < 1 or batch < 1:
            raise ConfigError("images and batch must be >= 1")
        self.images = images
        self.batch = batch
        self.record_bytes = record_bytes
        self.rng = random.Random(seed)
        self.records = [f"img{(i // batch):06d}" for i in range(0, images, batch)]

    def record_value(self) -> str:
        """Synthetic record payload of ``record_bytes`` bytes."""
        return "x" * self.record_bytes

    def load_ops(self) -> Iterator[Tuple[str, ...]]:
        """Populate the cache with every record."""
        for rec in self.records:
            yield ("put", rec, self.record_value())

    def epoch_ops(self) -> Iterator[Tuple[str, ...]]:
        """One training epoch: every record once, shuffled."""
        order: List[str] = list(self.records)
        self.rng.shuffle(order)
        for rec in order:
            yield ("get", rec)

    def images_per_record(self) -> int:
        return self.batch
