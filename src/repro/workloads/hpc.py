"""HPC service workloads (paper §II, §VI, §VIII-A).

The paper derives two traces from typical HPC services:

* **job launch** — monitoring the messages between server and client
  during an MPI job launch; control messages from the distributed
  servers are Gets, results from compute nodes are Puts (≈50:50);
* **I/O forwarding** — a SeaweedFS metadata log: create 10 000 files,
  then 50/50 reads/writes per file; its Get:Put ratio comes out 62:38
  ("12% more reads than job launch").

Both traces carry the "time serialization property": operations arrive
in phases (launch barrier, compute, result collection), which the
generator reproduces with a phase schedule instead of an i.i.d. mix.

The §VI-A Lustre monitoring use case adds two more streams:

* **monitoring** — write-dominated time-series appends from MDS/OSS/
  OST/MDT probes;
* **analytics** — "completely read-intensive with uniform distribution".
"""

from __future__ import annotations

import random
from typing import Iterator, List, Optional, Tuple

from repro.errors import ConfigError
from repro.workloads.keys import KeySpace, UniformKeys
from repro.workloads.ycsb import OpMix, Workload

__all__ = [
    "JOB_LAUNCH_MIX",
    "IO_FORWARDING_MIX",
    "MONITORING_MIX",
    "ANALYTICS_MIX",
    "hpc_workload",
    "HPCPhaseTrace",
    "MonitoringTrace",
]

JOB_LAUNCH_MIX = OpMix(get=0.50, put=0.50)
IO_FORWARDING_MIX = OpMix(get=0.62, put=0.38)
MONITORING_MIX = OpMix(get=0.05, put=0.95)
ANALYTICS_MIX = OpMix(get=1.0)


def hpc_workload(
    name: str, keys: int = 10_000, seed: int = 0, value_size: int = 32
) -> Workload:
    """Steady-state closed-loop version of an HPC trace (for the
    scalability sweeps, where only the mix matters)."""
    mixes = {
        "job_launch": JOB_LAUNCH_MIX,
        "io_forwarding": IO_FORWARDING_MIX,
        "monitoring": MONITORING_MIX,
        "analytics": ANALYTICS_MIX,
    }
    if name not in mixes:
        raise ConfigError(f"unknown HPC workload {name!r}; choose from {sorted(mixes)}")
    space = KeySpace(keys, prefix=f"{name[:3]}_")
    rng = random.Random(seed)
    return Workload(mixes[name], UniformKeys(space, rng), value_size=value_size, rng=rng)


class HPCPhaseTrace:
    """Phase-structured trace reproducing time serialization.

    A job launch cycles through: *dispatch* (servers publish control
    state — Gets by compute agents), *compute* (sparse liveness
    traffic), *collect* (result Puts back to the servers).
    """

    PHASES: List[Tuple[str, OpMix]] = [
        ("dispatch", OpMix(get=0.9, put=0.1)),
        ("compute", OpMix(get=0.5, put=0.5)),
        ("collect", OpMix(get=0.1, put=0.9)),
    ]

    def __init__(
        self,
        jobs: int = 10,
        ops_per_phase: int = 300,
        keys: int = 5_000,
        seed: int = 0,
    ):
        self.jobs = jobs
        self.ops_per_phase = ops_per_phase
        self.space = KeySpace(keys, prefix="job_")
        self.rng = random.Random(seed)

    def ops(self) -> Iterator[Tuple[str, ...]]:
        pop = UniformKeys(self.space, self.rng)
        for _ in range(self.jobs):
            for _, mix in self.PHASES:
                w = Workload(mix, pop, rng=self.rng)
                for _ in range(self.ops_per_phase):
                    yield w.next_op()

    def ratio(self) -> Tuple[float, float]:
        """Aggregate Get:Put ratio across all phases (≈50:50)."""
        gets = puts = 0
        for op in self.ops():
            if op[0] == "get":
                gets += 1
            elif op[0] == "put":
                puts += 1
        total = gets + puts
        return gets / total, puts / total


class MonitoringTrace:
    """Lustre monitoring stream: per-component time-series Puts.

    Keys look like ``oss3.read_bytes.000042`` — component, metric,
    monotonically increasing sample index — so the write path is
    append-mostly, exactly the pattern that favors the LSM datalet in
    Fig 6.
    """

    COMPONENTS = ["mds0", "oss1", "oss2", "oss3", "ost4", "ost5", "mdt6"]
    METRICS = ["read_bytes", "write_bytes", "iops", "open_count", "stripe_count"]

    def __init__(self, samples: int = 1000, seed: int = 0):
        self.samples = samples
        self.rng = random.Random(seed)
        self._written: List[str] = []

    def ops(self) -> Iterator[Tuple[str, ...]]:
        for i in range(self.samples):
            comp = self.rng.choice(self.COMPONENTS)
            metric = self.rng.choice(self.METRICS)
            key = f"{comp}.{metric}.{i:06d}"
            self._written.append(key)
            yield ("put", key, str(self.rng.random()))

    def analytics_ops(self, reads: int, seed: Optional[int] = None) -> Iterator[Tuple[str, ...]]:
        """The downstream load-balancer model reading samples back,
        uniform over everything written so far."""
        if not self._written:
            raise ConfigError("no monitoring samples written yet")
        rng = random.Random(self.rng.random() if seed is None else seed)
        for _ in range(reads):
            yield ("get", rng.choice(self._written))
