"""Key popularity distributions.

The paper's YCSB runs use "a balanced uniform KV popularity distribution
and a skewed Zipfian distribution (Zipfian constant = 0.99)".  The Zipf
sampler precomputes the CDF with numpy and samples by binary search —
O(1) memory per draw and fast enough to generate tens of millions of
ops inside benchmarks.
"""

from __future__ import annotations

import random
from typing import List, Optional

import numpy as np

from repro.errors import ConfigError

__all__ = ["KeySpace", "UniformKeys", "ZipfKeys"]


class KeySpace:
    """Fixed universe of keys, formatted like YCSB's ``user########``.

    ``spread_alpha=True`` prefixes each key with a letter spread evenly
    over a-z so that range partitioning (which splits the namespace
    alphabetically, §IV-B) distributes the keyspace across shards; with
    the default ``user`` prefix every key would land on one shard.
    """

    _ALPHABET = "abcdefghijklmnopqrstuvwxyz"

    def __init__(self, n: int, prefix: str = "user", width: int = 8,
                 spread_alpha: bool = False):
        if n < 1:
            raise ConfigError(f"keyspace size must be >= 1, got {n}")
        self.n = n
        self.prefix = prefix
        self.width = width
        self.spread_alpha = spread_alpha

    def key(self, i: int) -> str:
        if not 0 <= i < self.n:
            raise ConfigError(f"key index {i} out of range [0, {self.n})")
        if self.spread_alpha:
            letter = self._ALPHABET[(i * 26) // self.n]
            return f"{letter}{self.prefix}{i:0{self.width}d}"
        return f"{self.prefix}{i:0{self.width}d}"

    def all_keys(self) -> List[str]:
        return [self.key(i) for i in range(self.n)]


class UniformKeys:
    """Every key equally likely."""

    def __init__(self, space: KeySpace, rng: Optional[random.Random] = None):
        self.space = space
        self.rng = rng or random.Random(0)

    def next_index(self) -> int:
        return self.rng.randrange(self.space.n)

    def next_key(self) -> str:
        return self.space.key(self.next_index())


class ZipfKeys:
    """Zipfian popularity: P(rank r) ∝ 1 / r^theta.

    Rank-to-key mapping is scrambled with a fixed permutation seed so
    hot keys spread across the hash ring instead of clustering — the
    same trick YCSB's scrambled-Zipfian uses.
    """

    def __init__(
        self,
        space: KeySpace,
        theta: float = 0.99,
        rng: Optional[random.Random] = None,
        scramble_seed: int = 12345,
    ):
        if not 0 < theta < 2:
            raise ConfigError(f"zipf theta out of range: {theta}")
        self.space = space
        self.theta = theta
        self.rng = rng or random.Random(0)
        weights = 1.0 / np.power(np.arange(1, space.n + 1, dtype=np.float64), theta)
        self._cdf = np.cumsum(weights)
        self._cdf /= self._cdf[-1]
        perm_rng = np.random.default_rng(scramble_seed)
        self._perm = perm_rng.permutation(space.n)

    def next_index(self) -> int:
        rank = int(np.searchsorted(self._cdf, self.rng.random(), side="right"))
        return int(self._perm[min(rank, self.space.n - 1)])

    def next_key(self) -> str:
        return self.space.key(self.next_index())

    def hot_fraction(self, top: int, samples: int = 10000) -> float:
        """Empirical share of draws landing in the ``top`` hottest ranks
        (used by tests to validate skew)."""
        hot_keys = set(self._perm[:top])
        hits = sum(1 for _ in range(samples) if self.next_index() in hot_keys)
        return hits / samples
