"""AA+SC controlet: Active-Active topology, Strong Consistency via the
distributed lock manager (paper App C-B, Fig 15b).

Any active controlet accepts any request.  A write takes an exclusive
DLM lock on the key, applies the value to **every** replica's datalet,
releases the lock and acks.  A read takes a shared lock, reads the
local datalet and releases.  The DLM round-trips and hot-key
serialization are the paper's explanation for AA+SC's flat scaling in
Fig 7 ("lock contention at the DLM caps the performance").
"""

from __future__ import annotations

from typing import Optional

from repro.core.controlet import Controlet
from repro.errors import BespoError
from repro.net.message import Message

__all__ = ["AAStrongControlet"]


class AAStrongControlet(Controlet):
    """DLM-locking controlet."""

    def __init__(self, *args, dlm: str = "dlm", **kwargs):
        super().__init__(*args, **kwargs)
        self.dlm = dlm
        self.lock_waits = 0

    # ------------------------------------------------------------------
    # locking helpers
    # ------------------------------------------------------------------
    def _with_lock(self, key: str, mode: str, body, msg: Message) -> None:
        """Acquire → body(release) → body calls release(reply...)."""

        def on_grant(resp: Optional[Message], err: Optional[BespoError]) -> None:
            if err is not None or resp is None or resp.type != "granted":
                self.stats["errors"] += 1
                self.respond(msg, "error", {"error": f"lock acquisition failed: {err}"})
                return
            body()

        self.lock_waits += 1
        self.call(
            self.dlm,
            "lock",
            {"key": key, "mode": mode},
            callback=on_grant,
            timeout=self.config.lock_lease * 4,
        )

    def _unlock(self, key: str) -> None:
        self.send(self.dlm, "unlock", {"key": key})

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------
    def handle_put(self, msg: Message) -> None:
        self._accept_write(msg, "put")

    def handle_del(self, msg: Message) -> None:
        self._accept_write(msg, "del")

    def _accept_write(self, msg: Message, op: str) -> None:
        key = msg.payload["key"]

        def body() -> None:
            payload = {"key": key}
            if op == "put":
                payload["val"] = msg.payload["val"]
            replicas = self.shard.ordered()
            remaining = {"n": len(replicas)}
            failed = {"err": None}

            def on_ack(resp: Optional[Message], err: Optional[BespoError]) -> None:
                if err is not None:
                    failed["err"] = err
                elif resp is not None and resp.type == "error" and op == "put":
                    failed["err"] = BespoError(str(resp.payload))
                remaining["n"] -= 1
                if remaining["n"] == 0:
                    self._unlock(key)
                    if failed["err"] is not None:
                        self.stats["errors"] += 1
                        self.respond(msg, "error", {"error": str(failed["err"])})
                    else:
                        self.respond(msg, "ok")

            # Write every replica's datalet directly while holding the
            # lock (paper Fig 15b steps 4-5).
            for replica in replicas:
                self.datalet_call(op, dict(payload), callback=on_ack, datalet=replica.datalet)

        self._with_lock(key, "w", body, msg)

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------
    def handle_get(self, msg: Message) -> None:
        key = msg.payload["key"]
        if msg.payload.get("consistency") == "eventual":
            # per-request relaxation skips the read lock entirely
            super().handle_get(msg)
            return

        def body() -> None:
            def on_value(resp: Optional[Message], err: Optional[BespoError]) -> None:
                self._unlock(key)
                self._relay(msg, resp, err)

            self.datalet_call("get", {"key": key}, callback=on_value)

        self._with_lock(key, "r", body, msg)
