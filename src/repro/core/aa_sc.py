"""AA+SC controlet: Active-Active topology, Strong Consistency via the
distributed lock manager (paper App C-B, Fig 15b).

Any active controlet accepts any request.  A write takes an exclusive
DLM lock on the key, applies the value to **every** replica's datalet,
releases the lock and acks.  A read takes a shared lock, reads the
local datalet and releases.  The DLM round-trips and hot-key
serialization are the paper's explanation for AA+SC's flat scaling in
Fig 7 ("lock contention at the DLM caps the performance").
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.controlet import Controlet
from repro.core.request import Request
from repro.errors import BespoError
from repro.net.message import Message

__all__ = ["AAStrongControlet"]


class AAStrongControlet(Controlet):
    """DLM-locking controlet."""

    def __init__(self, *args, dlm: str = "dlm", **kwargs):
        super().__init__(*args, **kwargs)
        self.dlm = dlm
        self.lock_waits = 0
        #: a recovering replacement every write we apply is relayed to
        #: (we are its recovery source) until it confirms its catch-up
        #: buffer is drained — closes the snapshot/join window for
        #: writers whose shard view predates the join.
        self._relay_to: Optional[str] = None
        self.register("peer_apply", self._on_peer_apply)
        self.register("aa_sync_pull", self._on_aa_sync_pull)
        self.register("aa_sync_complete", self._on_aa_sync_complete)

    # ------------------------------------------------------------------
    # hole-free recovery (replacement active)
    # ------------------------------------------------------------------
    def _recover(self) -> None:
        self.sync_recover("aa_sync_pull")

    def _on_aa_sync_pull(self, msg: Message) -> None:
        """We are the recovery source: start relaying every write we
        apply to the replacement *before* snapshotting, so snapshot ∪
        relayed writes covers everything committed here."""
        self._relay_to = msg.payload["controlet"]

        def with_snap(resp: Optional[Message], err: Optional[BespoError]) -> None:
            if err is not None or resp is None or resp.type != "snapshot":
                self._relay_to = None
                self.respond(msg, "error", {"error": f"snapshot failed: {err}"})
                return
            self.respond(msg, "sync_state", {"data": resp.payload["data"]})

        self.datalet_call("snapshot", {}, callback=with_snap)

    def _on_aa_sync_complete(self, msg: Message) -> None:
        if msg.payload.get("controlet") == self._relay_to:
            self._relay_to = None

    def on_catchup_drain(self, msgs) -> None:
        super().on_catchup_drain(msgs)
        src = self.source_controlet()
        if src is not None:
            self.send(src, "aa_sync_complete", {"controlet": self.node_id})

    # ------------------------------------------------------------------
    # replication (peer controlet applies one write to its datalet)
    # ------------------------------------------------------------------
    def _on_peer_apply(self, msg: Message) -> None:
        if not self.recovered:
            # Recovering replacement (visible in the shard view under
            # join-first): buffer and ack.  Safe because the writer's
            # DLM lock is released only after *all* replicas acked, so
            # a later same-key write cannot overtake this one.
            self.buffer_catchup(msg)
            # Not the client commit point: the writer settles only
            # after *all* replicas ack under the DLM lock, so the write
            # is durable on the live fan-out; the buffer replays after
            # restore (combo aa-sc).
            # lint: allow[ack-before-durable]
            self.respond(msg, "ok")
            return
        op = msg.payload["op"]
        payload = {"key": msg.payload["key"]}
        if op == "put":
            payload["val"] = msg.payload["val"]
        relay_to = self._relay_to
        # No dedup gate here: retries of an AA write may enter at a
        # *different* active, so a peer-level rid cache could answer for
        # a fan-out that never completed.  The Request only joins the
        # local apply with the optional recovery relay.
        req = Request(self, msg, op)
        req.arm(2 if relay_to else 1)

        def on_local(resp: Optional[Message], err: Optional[BespoError]) -> None:
            req.settle(err, resp)

        def on_relay(resp: Optional[Message], err: Optional[BespoError]) -> None:
            if err is not None and self._relay_to == relay_to:
                # the recovering replacement died; stop relaying (its
                # next pull retry re-snapshots, so nothing is lost) —
                # the relay leg never fails the peer_apply itself
                self._relay_to = None
            req.settle()

        self.datalet_call(op, payload, callback=on_local)
        if relay_to is not None:
            self.call(
                relay_to,
                "peer_apply",
                dict(msg.payload),
                callback=on_relay,
                timeout=self.config.replication_timeout,
            )

    # ------------------------------------------------------------------
    # locking helpers
    # ------------------------------------------------------------------
    def _with_lock(self, key: str, mode: str, body,
                   fail: Callable[[str], None]) -> None:
        """Acquire → body(); ``fail(error)`` if the grant never comes."""

        def on_grant(resp: Optional[Message], err: Optional[BespoError]) -> None:
            if err is not None or resp is None or resp.type != "granted":
                self.stats["errors"] += 1
                if (
                    resp is not None
                    and resp.type == "error"
                    and resp.payload.get("error") == "wrong_shard"
                ):
                    # DLM reshard backstop: our ring view is stale for
                    # this (moved) key — surface it so the client
                    # refreshes and re-routes.
                    fail("wrong_shard")
                    return
                fail(f"lock acquisition failed: {err}")
                return
            body()

        self.lock_waits += 1
        self.call(
            self.dlm,
            "lock",
            # the ring generation rides along so the DLM can fence
            # stale-routed writes during a reshard window
            {"key": key, "mode": mode, "gen": self._ring_gen},
            callback=on_grant,
            timeout=self.config.lock_lease * 4,
        )

    def _unlock(self, key: str) -> None:
        self.send(self.dlm, "unlock", {"key": key})

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------
    def handle_put(self, msg: Message) -> None:
        self._accept_write(msg, "put")

    def handle_del(self, msg: Message) -> None:
        self._accept_write(msg, "del")

    def _accept_write(self, msg: Message, op: str) -> None:
        key = msg.payload["key"]
        # The dedup gate only catches a retry re-entering at *this*
        # active (routing may send other attempts elsewhere — the oracle
        # keeps modeling those as potential duplicates, see chaos/oracle).
        req = self.begin_write(msg, op)
        if req is None:
            return

        def unlock_then_finish(error: Optional[str]) -> None:
            self._unlock(key)
            if error is not None:
                self.stats["errors"] += 1
                req.fail(error)
            else:
                req.ack()

        def body() -> None:
            payload = {"op": op, "key": key}
            if op == "put":
                payload["val"] = msg.payload["val"]
            # Fan out through every replica's *controlet* (not its
            # datalet) while holding the lock (paper Fig 15b steps
            # 4-5): the controlet is the point where a recovery relay
            # or a catch-up buffer can intercept the write, which a
            # datalet-direct write would bypass.
            targets = [r.controlet for r in self.shard.ordered()]
            req.arm(len(targets), then=unlock_then_finish)

            def on_ack(resp: Optional[Message], err: Optional[BespoError]) -> None:
                if err is not None:
                    req.settle(str(err))
                elif resp is not None and resp.type == "error" and op == "put":
                    req.settle(str(resp.payload))
                else:
                    req.settle()

            for target in targets:
                self.call(
                    target,
                    "peer_apply",
                    dict(payload),
                    callback=on_ack,
                    timeout=self.config.replication_timeout,
                )

        self._with_lock(key, "w", body, req.fail)

    # ------------------------------------------------------------------
    # resharding: lock-serialized migration
    # ------------------------------------------------------------------
    def _migrate_copy(self, key, complete) -> None:
        """Copy one moved key under the cluster-wide w-lock: the grant
        tells us (``dirty``) whether a client write beat us to the key
        during the window — then the copy would clobber a newer value
        and is skipped.  The DLM serializes us against every concurrent
        writer, so a clean grant means the local engine's value *is*
        the key's latest committed state (AA+SC applies acked writes at
        all replicas)."""
        desc = self._reshard
        if desc is None or self._ring is None:
            complete("skipped")
            return
        entries = desc.get("entries", {})
        dest = entries.get(self._ring.lookup(key))
        if dest is None:
            complete("skipped")
            return

        def done(outcome: str) -> None:
            self._unlock(key)
            complete(outcome)

        def on_grant(resp: Optional[Message], err: Optional[BespoError]) -> None:
            if err is not None or resp is None or resp.type != "granted":
                complete("retry")  # no lock held: retry from scratch
                return
            if resp.payload.get("dirty"):
                done("skipped")
                return

            def have(r2: Optional[Message], e2: Optional[BespoError]) -> None:
                if e2 is not None or r2 is None:
                    done("retry")
                    return
                if r2.type != "value":
                    done("skipped")  # deleted at the source
                    return
                self._ship_copy(key, r2.payload["val"], dest, done)

            self.datalet_call("get", {"key": key}, callback=have)

        self.lock_waits += 1
        self.call(
            self.dlm,
            "lock",
            {"key": key, "mode": "w", "gen": self._ring_gen, "mig": True},
            callback=on_grant,
            timeout=self.config.lock_lease * 4,
        )

    def _admit_migrate(self, msg: Message) -> None:
        """The migration driver already holds the cluster-wide w-lock on
        this key, so the destination fan-out must not re-acquire it (it
        would queue behind its own driver forever); replicate to every
        active directly, exactly like the locked body of a write."""
        req = self.begin_write(msg, "put", rid=msg.payload.get("rid"))
        if req is None:
            return
        payload = {"op": "put", "key": msg.payload["key"],
                   "val": msg.payload["val"]}
        targets = [r.controlet for r in self.shard.ordered()]

        def then(error: Optional[str]) -> None:
            if error is not None:
                self.stats["errors"] += 1
                req.fail(error)
            else:
                req.ack()

        req.arm(len(targets), then=then)

        def on_ack(resp: Optional[Message], err: Optional[BespoError]) -> None:
            if err is not None:
                req.settle(str(err))
            elif resp is not None and resp.type == "error":
                req.settle(str(resp.payload))
            else:
                req.settle()

        for target in targets:
            self.call(
                target,
                "peer_apply",
                dict(payload),
                callback=on_ack,
                timeout=self.config.replication_timeout,
            )

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------
    def handle_get(self, msg: Message) -> None:
        key = msg.payload["key"]
        if msg.payload.get("consistency") == "eventual":
            # per-request relaxation skips the read lock entirely
            super().handle_get(msg)
            return

        def body() -> None:
            def on_value(resp: Optional[Message], err: Optional[BespoError]) -> None:
                self._unlock(key)
                self._relay(msg, resp, err)

            self.datalet_call("get", {"key": key}, callback=on_value)

        def fail(error: str) -> None:
            self.respond(msg, "error", {"error": error})

        self._with_lock(key, "r", body, fail)

    # ------------------------------------------------------------------
    # model-checker introspection
    # ------------------------------------------------------------------
    def snapshot_state(self):
        s = super().snapshot_state()
        s["relay_to"] = self._relay_to
        return s
