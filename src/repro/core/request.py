"""Explicit in-flight write request owned by a controlet.

Before this abstraction each controlet hand-threaded ack/retry/fan-out
bookkeeping through nested closures (``remaining = {"n": ...}`` dicts,
``retries`` parameters re-passed down call chains).  A :class:`Request`
now owns that state explicitly:

* ``retries`` — replication retry budget (chain re-resolution etc.);
* ``arm``/``settle`` — fan-out join counting with first-error capture;
* ``ack``/``fail``/``finish`` — exactly-once completion that responds
  to the originating message and commits the request-id dedup tables
  via ``Controlet._complete_request``.

``rid`` is the client-stamped request id (``RequestContext.req_id``) —
the *operation* identity shared by every retry of one client mutation.
``dedup=True`` requests participate in the controlet's rid cache so a
duplicate attempt is answered from cache instead of re-executing.

The model-checker's handler summaries treat ``Request(self, ...)`` as a
known-safe escape of ``self`` (see ``analysis/summaries.py``): requests
only touch the rid tables (ignored there) and respond to messages,
both order-insensitive for partial-order reduction.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.net.message import Message

__all__ = ["Request"]


class Request:
    """One client (or replication) write moving through a controlet."""

    __slots__ = ("ctl", "msg", "op", "rid", "dedup", "retries", "done",
                 "_remaining", "_error", "_resp", "_then")

    def __init__(self, ctl, msg: Message, op: str,
                 rid: Optional[str] = None, dedup: bool = False) -> None:
        self.ctl = ctl
        self.msg = msg
        self.op = op
        self.rid = rid
        self.dedup = dedup
        #: replication retry budget consumed so far (owned here, not by
        #: closure arguments threaded through the retry chain)
        self.retries = 0
        self.done = False
        self._remaining = 0
        self._error: Optional[str] = None
        self._resp = None
        self._then: Optional[Callable[[Optional[str]], None]] = None

    @property
    def ctx(self):
        """The request envelope this write arrived under (may be None)."""
        return self.msg.ctx

    # -- completion ------------------------------------------------------
    def ack(self, payload: Optional[Dict] = None) -> None:
        self.finish("ok", payload)

    def fail(self, error: str) -> None:
        self.finish("error", {"error": str(error)})

    def finish(self, type: str, payload: Optional[Dict] = None) -> None:
        """Respond to the originating message exactly once."""
        if self.done:
            return
        self.done = True
        self.ctl._complete_request(self, type, payload if payload is not None else {})

    # -- fan-out join ----------------------------------------------------
    def arm(self, n: int,
            then: Optional[Callable[[Optional[str]], None]] = None) -> None:
        """Expect ``n`` legs; complete when all have settled.

        ``then(first_error)`` overrides the default completion (used
        e.g. to release a lock before responding).
        """
        self._remaining = n
        self._error = None
        self._resp = None
        self._then = then

    def settle(self, error: Optional[str] = None, resp=None) -> None:
        """One fan-out leg finished (``error`` records the first failure)."""
        if error is not None and self._error is None:
            self._error = str(error)
        if resp is not None and self._resp is None:
            self._resp = resp
        self._remaining -= 1
        if self._remaining != 0:
            return
        if self._then is not None:
            self._then(self._error)
        elif self._resp is not None and self._error is None:
            self.finish(self._resp.type, dict(self._resp.payload))
        else:
            self.fail(self._error if self._error is not None else "no response")
