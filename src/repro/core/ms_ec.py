"""MS+EC controlet: Master-Slave topology, Eventual Consistency via
asynchronous propagation (paper App C-A, Fig 15a).

The master commits to its local datalet and acks the client
immediately; mutations are buffered and propagated to slaves in
batches ("data is replicated asynchronously in batch mode from master
to slaves", §VI-A).  Any replica serves reads, so reads scale with the
replica count — the property that makes MS+EC match AA+EC on
read-heavy workloads in Fig 12.

**Anti-entropy** (App C-C mentions anti-entropy/reconciliation as the
standard companion of asynchronous replication): batches carry dense
per-master sequence numbers.  A slave that detects a gap — dropped
batches during a partition, a crashed-and-restarted link — requests a
resend from the master's retained-ops window; if the gap predates the
window, the master falls back to a full snapshot sync.  Slaves
therefore converge after arbitrary message loss, not just in the
fault-free case.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.core.controlet import Controlet, Pump
from repro.errors import BespoError
from repro.net.message import Message

__all__ = ["MSEventualControlet"]

#: retained-ops window for resends before snapshot fallback.
RETAIN_LIMIT = 8192


class MSEventualControlet(Controlet):
    """Async-propagation controlet with gap-repair anti-entropy."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        # -- master state ---------------------------------------------
        #: accepted client writes awaiting their local apply, in
        #: acceptance order; coalesced into one ``apply_batch`` at a
        #: time (:meth:`_pump_accepts`).
        self._accept_queue: List = []
        self._accept_busy = False
        #: buffered (op, key, val, rid) awaiting propagation.
        self._backlog: List[Tuple[str, str, Optional[str], Optional[str]]] = []
        self._flush_timer_armed = False
        #: next sequence number to assign to a propagated op.
        self._seq = 0
        #: stream identity slaves track sequence numbers against.
        #: Normally our node id; a durable *rejoin* of the master mints
        #: a fresh incarnation (see :meth:`on_start`) because the old
        #: counters died with the process — continuing as the same
        #: stream would make every new batch look like a stale
        #: duplicate to the slaves' cursors.
        self._stream_id = self.node_id
        #: recent ops window for resends: (seq, op_dict).
        self._retained: Deque[Tuple[int, Dict[str, Optional[str]]]] = deque(
            maxlen=RETAIN_LIMIT
        )
        self.propagated = 0
        self.resends_served = 0
        self.snapshot_syncs_served = 0
        #: per-peer coalescing buffers: ``peer -> [[start_seq, ops],...]``
        #: segments awaiting the link (contiguous segments merge), and
        #: the per-peer one-frame-in-flight flag (:meth:`_pump_replicate`).
        self._peer_pending: Dict[str, List[list]] = {}
        self._peer_busy: Dict[str, bool] = {}
        self.replicate_frames = 0
        self.replicate_frame_ops = 0
        # -- slave state --------------------------------------------------
        #: (stream identity, next expected sequence).
        self._stream: Tuple[Optional[str], int] = (None, 0)
        self._repair_pending = False
        self.applied_from_master = 0
        self.gaps_detected = 0
        #: replicated batches waiting for the datalet, in stream order;
        #: serialized for the same reason as AA+EC log replay (see
        #: :meth:`_issue_apply`).
        self._applies = Pump(self._issue_apply)
        if self.rejoining and self._view_says_head():
            # A rejoining EC *master* is the authority for acked data:
            # its WAL holds acked-but-never-propagated writes that no
            # slave can supply, so a peer pull (which reset-restores)
            # would silently drop durable acks.  Recover from local
            # state alone; slaves resync against the fresh incarnation.
            self.recovery_source = None
            self.recovered = True
            # seq 0 is never assigned/retained: a slave resyncing the
            # new incarnation from 0 misses the retained window and
            # falls through to the snapshot path — which is what
            # carries the recovered unpropagated writes back out.
            self._seq = 1
        self.register("replicate", self._on_replicate)
        self.register("resend_request", self._on_resend_request)
        # NB: "sync_snapshot" is deliberately NOT registered — it only
        # exists as a *response* to resend_request, consumed by the
        # _request_repair callback.  A response that misses its pending
        # callback (late, after timeout) is dropped by Actor.deliver
        # before handler dispatch, so a registration could never fire.
        self.register("ec_sync_pull", self._on_ec_sync_pull)
        self.register("seq_probe", self._on_seq_probe)

    # ------------------------------------------------------------------
    # periodic anti-entropy
    # ------------------------------------------------------------------
    def _view_says_head(self) -> bool:
        """Whether our spawn-time shard view names us as master."""
        try:
            return self.shard.head.controlet == self.node_id
        except Exception:  # noqa: BLE001 - empty view during transitions
            return False

    def on_start(self) -> None:
        if self.rejoining and self._view_says_head():
            # Mint the fresh incarnation for this boot.  Sim time is
            # deterministic and strictly increasing across rejoins of
            # the same node, so the identity is both unique and
            # reproducible run-to-run.
            self._stream_id = f"{self.node_id}@{self.now():.6f}"
        super().on_start()
        # An immediate first tick is useless (nothing replicated yet);
        # arm with a stable phase so this loop and the heartbeat — same
        # 1s period, both starting at boot — never fire at one timestamp.
        self.set_timer(
            self.loop_phase("anti-entropy", self.config.replication_timeout),
            self._anti_entropy_tick,
        )

    def _anti_entropy_tick(self) -> None:
        """Tail-of-stream repair: a gap is normally detected when the
        *next* batch arrives, but if the final batches of a burst are
        lost there is no next batch.  Slaves therefore periodically
        compare their cursor against the master's sequence counter."""
        self.set_timer(self.config.replication_timeout, self._anti_entropy_tick)
        if self.retired or not self.recovered or self.is_head:
            return
        try:
            master_id = self.shard.head.controlet
        except Exception:  # noqa: BLE001 - empty shard view mid-repair
            return
        if master_id == self.node_id:
            return

        def on_seq(resp: Optional[Message], err: Optional[BespoError]) -> None:
            if resp is None or resp.type != "seq_info":
                return
            probed_stream = resp.payload.get("stream", resp.payload["master"])
            master_seq = int(resp.payload["seq"])
            tracked, next_seq = self._stream
            if probed_stream != tracked:
                # unfamiliar numbering — a new master, or the old one
                # rebooted into a fresh incarnation: resync from its
                # first op (the replicate/adoption path would do the
                # same).  Repairs are addressed to the *actor* we
                # probed; the stream identity is not routable.
                if master_seq > 0:
                    self._request_repair(master_id, 0)
            elif master_seq > next_seq:
                self._request_repair(master_id, next_seq)

        # Timeout strictly inside the tick period: a full-period timeout
        # expires at the exact timestamp of the *next* tick whenever the
        # master is unreachable, tying the abandon-probe and new-probe
        # events on the heap (a schedule-sensitivity races.py flags).
        self.call(
            master_id,
            "seq_probe",
            {},
            callback=on_seq,
            timeout=self.config.replication_timeout / 2,
        )

    def _on_seq_probe(self, msg: Message) -> None:
        self.respond(msg, "seq_info", {
            "master": self.node_id, "stream": self._stream_id, "seq": self._seq,
        })

    # ------------------------------------------------------------------
    # hole-free recovery (replacement slave)
    # ------------------------------------------------------------------
    def _recover(self) -> None:
        self.sync_recover("ec_sync_pull")

    def on_sync_state(self, state) -> None:
        # Adopt the source's stream cursor, captured *before* its
        # snapshot: any op missing from the snapshot carries a sequence
        # number >= this cursor, so the gap-repair path fetches it.
        self._stream = (state.get("master"), int(state.get("seq", 0)))

    def _on_ec_sync_pull(self, msg: Message) -> None:
        """We are the recovery source: capture our stream position
        first, then snapshot.  Re-applying overlap is idempotent; a
        skipped op would be a lost write."""
        if self.is_head:
            master, seq = self._stream_id, self._seq
        else:
            master, seq = self._stream

        def with_snap(resp: Optional[Message], err: Optional[BespoError]) -> None:
            if err is not None or resp is None or resp.type != "snapshot":
                self.respond(msg, "error", {"error": f"snapshot failed: {err}"})
                return
            self.respond(msg, "sync_state", {
                "data": resp.payload["data"], "master": master, "seq": seq,
            })

        self.datalet_call("snapshot", {}, callback=with_snap)

    # ------------------------------------------------------------------
    # write path (master)
    # ------------------------------------------------------------------
    def handle_put(self, msg: Message) -> None:
        self._accept_write(msg, "put")

    def handle_del(self, msg: Message) -> None:
        self._accept_write(msg, "del")

    def _accept_write(self, msg: Message, op: str) -> None:
        if not self.is_head:
            self.redirect(msg, self.shard.head.controlet, "writes go to the master")
            return
        req = self.begin_write(msg, op)
        if req is None:
            return  # duplicate of a completed/in-flight rid
        self._accept_queue.append(req)
        self._pump_accepts()

    def _pump_accepts(self) -> None:
        """Serialize the master's local applies, one coalesced
        ``apply_batch`` in flight.

        Per-op datalet calls are not enough: response arrival order is
        jittered, so the order writes enter the propagation backlog
        (response order) could invert the order the master's datalet
        applied them — the master would then permanently disagree with
        its own slaves on racing same-key writes.  One batch in flight
        pins acceptance order = master apply order = stream order, and
        amortizes the master's WAL fsync (one commit group per frame)."""
        if self._accept_busy or not self._accept_queue:
            return
        self._accept_busy = True
        take = max(1, self.config.ec_batch_max)
        batch = self._accept_queue[:take]
        del self._accept_queue[:take]
        ops = [{"op": r.op, "key": r.msg.payload["key"],
                "val": r.msg.payload.get("val")} for r in batch]

        def after_local(resp: Optional[Message], err: Optional[BespoError]) -> None:
            self._accept_busy = False
            if err is not None or resp is None or resp.type == "error":
                self.stats["errors"] += len(batch)
                for req in batch:
                    req.fail(f"local datalet write failed: {err}")
                self._pump_accepts()
                return
            results = resp.payload.get("results") or ["ok"] * len(batch)
            for req, status in zip(batch, results):
                if status != "ok":
                    # e.g. delete of a missing key: nothing applied, so
                    # nothing propagates for this member.
                    req.finish("error", {"error": status,
                                         "key": req.msg.payload["key"]})
                    continue
                # EC: ack as soon as one replica (ours) has the write.
                req.ack()
                self._enqueue(req.op, req.msg.payload["key"],
                              req.msg.payload.get("val"), req.rid)
            self._pump_accepts()

        self.datalet_call("apply_batch", {"ops": ops, "want_results": True},
                          callback=after_local)

    def _migrate_barrier(self, then) -> None:
        """Reshard census barrier: pre-window writes may still sit in
        the accept queue ahead of the master's engine — wait for one
        observed drain so the census sees them.  The propagation
        backlog does not matter here: the census reads the master's
        engine, which is the shard's write authority."""

        def poll() -> None:
            if self._accept_busy or self._accept_queue:
                self.set_timer(0.05, poll)
                return
            then()

        poll()

    # ------------------------------------------------------------------
    # async propagation (master)
    # ------------------------------------------------------------------
    def _enqueue(self, op: str, key: str, val: Optional[str],
                 rid: Optional[str] = None) -> None:
        self._backlog.append((op, key, val, rid))
        if len(self._backlog) >= self.config.ec_batch_max:
            self._flush()
        elif not self._flush_timer_armed:
            self._flush_timer_armed = True
            self.set_timer(self.config.ec_batch_interval, self._flush_tick)

    def _flush_tick(self) -> None:
        self._flush_timer_armed = False
        self._flush()

    def _flush(self) -> None:
        if not self._backlog:
            return
        batch, self._backlog = self._backlog, []
        # rid rides the batch so slaves learn which client operations
        # are already committed — a promoted slave then answers a
        # client's retry from its rid cache instead of re-executing.
        ops = []
        for op, k, v, rid in batch:
            d: Dict[str, Optional[str]] = {"op": op, "key": k, "val": v}
            if rid is not None:
                d["rid"] = rid
            ops.append(d)
        start_seq = self._seq
        for op_dict in ops:
            # retain a private copy: the window is re-served by resend
            # requests and must never alias dicts already shipped to
            # peers — the fabric passes payloads by reference
            self._retained.append((self._seq, dict(op_dict)))
            self._seq += 1
        for peer in self.peers():
            self._queue_replicate(peer.controlet, start_seq, ops)
        self.propagated += len(batch)

    def _queue_replicate(self, peer_id: str, start_seq: int, ops: List[dict]) -> None:
        """Coalesce ``ops`` into the peer's pending frame.  While a
        frame to this peer is still in flight, subsequent flushes merge
        here instead of going out as separate messages — adjacent
        ``replicate`` sends to the same host collapse into one."""
        segs = self._peer_pending.setdefault(peer_id, [])
        copies = [dict(op) for op in ops]
        if segs and segs[-1][0] + len(segs[-1][1]) == start_seq:
            segs[-1][1].extend(copies)
        else:
            # non-contiguous with the buffered tail (the peer missed a
            # flush while absent from the view): keep it a separate
            # segment so the frame's start_seq stays truthful.
            segs.append([start_seq, copies])
        self._pump_replicate(peer_id)

    def _pump_replicate(self, peer_id: str) -> None:
        """At most one replicate frame in flight per peer link.

        The ack is pure flow control — a lost or timed-out frame is
        *not* retried here, because the slave's gap-repair anti-entropy
        path re-fetches anything a dropped frame carried.  What the
        one-in-flight rule buys is coalescing (everything flushed while
        the link is busy rides the next frame) and in-order frame
        arrival on the fabric."""
        if self._peer_busy.get(peer_id):
            return
        segs = self._peer_pending.get(peer_id)
        if not segs:
            return
        start_seq, ops = segs[0]
        cap = max(1, self.config.replicate_batch_max)
        if len(ops) > cap:
            send_ops = ops[:cap]
            segs[0] = [start_seq + cap, ops[cap:]]
        else:
            send_ops = ops
            segs.pop(0)
            if not segs:
                del self._peer_pending[peer_id]
        self._peer_busy[peer_id] = True
        self.replicate_frames += 1
        self.replicate_frame_ops += len(send_ops)
        if self._metrics is not None:
            self._metrics.histogram("batch.replicate_frame_size").observe(
                len(send_ops)
            )

        def on_ack(resp: Optional[Message], err: Optional[BespoError]) -> None:
            self._peer_busy[peer_id] = False
            self._pump_replicate(peer_id)

        self.call(peer_id, "replicate", {
            "master": self.node_id,
            "stream": self._stream_id,
            "start_seq": start_seq,
            "ops": send_ops,
        }, callback=on_ack, timeout=self.config.replication_timeout)

    def _on_resend_request(self, msg: Message) -> None:
        """A slave detected a gap.  Serve from the retained window, or
        fall back to a full snapshot if the window has rolled past."""
        from_seq = msg.payload["from_seq"]
        if self._retained and self._retained[0][0] <= from_seq:
            # copies again: the same window entry can be served to
            # several gap-detecting slaves
            ops = [dict(op) for seq, op in self._retained if seq >= from_seq]
            self.resends_served += 1
            self.respond(msg, "replicate", {
                "master": self.node_id,
                "stream": self._stream_id,
                "start_seq": from_seq if ops else self._seq,
                "ops": ops,
            })
            return

        def with_snapshot(resp: Optional[Message], err: Optional[BespoError]) -> None:
            if err is not None or resp is None or resp.type != "snapshot":
                self.respond(msg, "error", {"error": f"snapshot failed: {err}"})
                return
            self.snapshot_syncs_served += 1
            self.respond(msg, "sync_snapshot", {
                "master": self.node_id,
                "stream": self._stream_id,
                "data": resp.payload["data"],
                "seq": self._seq,
            })

        self.datalet_call("snapshot", {}, callback=with_snapshot)

    # ------------------------------------------------------------------
    # slave side
    # ------------------------------------------------------------------
    def _ack_frame(self, msg: Message) -> None:
        """Flow-control ack for a coalesced replicate frame.

        Only *request* messages are answered: ``_request_repair`` feeds
        resend *responses* (``reply_to`` set) through ``_on_replicate``
        too, and those must not spawn an unsolicited reply.  This ack is
        not a durability claim — the master treats it purely as
        link-ready; convergence is owned by the anti-entropy path."""
        if not msg.reply_to:
            # Not the client commit point: combo ms-ec acks at the
            # master's local apply, and a slave's frame ack is pure flow
            # control (the master never interprets it as replicated).
            # lint: allow[ack-before-durable]
            self.respond(msg, "ok")

    def _on_replicate(self, msg: Message) -> None:
        if not self.recovered:
            # mid-recovery: replay after the snapshot restore installs
            # our stream cursor (overlap re-applies are idempotent).
            self.buffer_catchup(msg)
            self._ack_frame(msg)
            return
        master = msg.payload["master"]
        stream = msg.payload.get("stream", master)
        start_seq = int(msg.payload["start_seq"])
        ops = msg.payload["ops"]
        tracked_stream, next_seq = self._stream
        if stream != tracked_stream:
            # New stream (failover, or the same master rebooted into a
            # fresh incarnation): we cannot assume our state covers its
            # history below start_seq — batches it flushed before we
            # started listening are simply gone from our perspective.
            # Conservatively resync from its first op; overlap
            # re-applies are idempotent and the master falls back to a
            # snapshot if its window rolled past.
            tracked_stream, next_seq = stream, 0
        if start_seq > next_seq:
            # gap: batches were lost (partition, drop).  Ask for a
            # resend and discard this batch — the resend covers it.
            self.gaps_detected += 1
            self._stream = (tracked_stream, next_seq)
            self._request_repair(master, next_seq)
            self._ack_frame(msg)
            return
        skip = next_seq - start_seq
        if skip >= len(ops) and ops:
            self._ack_frame(msg)
            return  # duplicate/overlapping resend, fully applied already
        fresh = ops[skip:]
        if fresh:
            # one ordered apply_batch per batch — per-op messages could
            # reorder in flight and apply a delete before its put — and
            # at most one batch in flight (see _issue_apply).
            self._applies.push(fresh)
            self.applied_from_master += len(fresh)
            # learn the rids this batch carries: if we are later promoted
            # to master, a client retrying one of these ops gets its
            # cached ack instead of a re-execution.
            for op_dict in fresh:
                rid = op_dict.get("rid")
                if rid is not None:
                    self._remember_rid(rid)
        self._stream = (tracked_stream, start_seq + len(ops))
        self._repair_pending = False
        self._ack_frame(msg)

    def _issue_apply(self, ops: list, done: Callable[[], None]) -> None:
        """At most one replicated apply_batch in flight to the datalet.

        The host CPU is a multi-slot server: a small batch chasing a
        large one (a repair resend followed by the fresh tail) could
        finish service first and apply stream ops out of order,
        permanently diverging this slave.  Same defect class the
        rolling-restart chaos schedule exposed in AA+EC log replay; the
        one-in-flight discipline lives in :class:`Pump`."""

        def applied(resp: Optional[Message], err: Optional[BespoError]) -> None:
            done()

        self.datalet_call("apply_batch", {"ops": ops}, callback=applied)

    def _request_repair(self, master: str, from_seq: int) -> None:
        if self._repair_pending:
            return
        self._repair_pending = True

        def on_reply(resp: Optional[Message], err: Optional[BespoError]) -> None:
            self._repair_pending = False
            if resp is None or err is not None:
                return  # master gone; failover will rewire the stream
            if resp.type == "replicate":
                self._on_replicate(resp)
            elif resp.type == "sync_snapshot":
                self._on_sync_snapshot(resp)

        self.call(
            master,
            "resend_request",
            {"from_seq": from_seq},
            callback=on_reply,
            timeout=self.config.replication_timeout * 4,
        )

    def _on_sync_snapshot(self, msg: Message) -> None:
        """Full-state fallback: adopt the master's snapshot wholesale
        and fast-forward the stream cursor.  ``reset`` matters: the
        snapshot is the master's *entire* state, so any local key it
        lacks was deleted there — keeping it would resurrect deletes."""
        self.send(self.datalet, "restore",
                  {"data": msg.payload["data"], "reset": True})
        self._stream = (
            msg.payload.get("stream", msg.payload["master"]),
            int(msg.payload["seq"]),
        )
        self._repair_pending = False

    # ------------------------------------------------------------------
    # transition support
    # ------------------------------------------------------------------
    def prepare_retirement(self, done) -> None:
        """Flush everything buffered before handing over (paper §V-A:
        "the old master keeps flushing out any pending propagation")."""
        self._flush()
        # allow the final batch one network round before declaring ready
        self.set_timer(self.config.replication_timeout, done)

    def _batch_metrics(self):
        ops = self.replicate_frame_ops
        return {
            "replicate_frames": float(self.replicate_frames),
            "replicate_frame_ops": float(ops),
            # >1.0 means per-peer replicate fan-out is coalescing
            "coalesce_ratio": (
                ops / self.replicate_frames if self.replicate_frames else 0.0
            ),
        }

    # ------------------------------------------------------------------
    # model-checker introspection
    # ------------------------------------------------------------------
    def snapshot_state(self):
        s = super().snapshot_state()
        s.update({
            "seq": self._seq,
            "accept_queue": len(self._accept_queue),
            "accept_busy": self._accept_busy,
            "backlog": [list(entry) for entry in self._backlog],
            "retained_window": [
                self._retained[0][0], self._retained[-1][0]
            ] if self._retained else None,
            "stream": list(self._stream),
            "repair_pending": self._repair_pending,
            "apply_queue": len(self._applies.queue),
            "apply_busy": self._applies.busy,
            "peer_pending": {
                p: sum(len(ops) for _seq, ops in segs)
                for p, segs in sorted(self._peer_pending.items())
            },
            "peer_busy": sorted(p for p, b in self._peer_busy.items() if b),
        })
        return s
