"""Controlet base class (paper §III-B).

A controlet is the control-plane proxy paired with one datalet.  It
terminates client requests, runs the replication protocol of its
topology/consistency combination, heartbeats the coordinator, follows
cluster-map updates, performs recovery when launched as a replacement
pair, and supports live retirement during topology/consistency
transitions (§V).

Subclasses implement four hooks — ``handle_put``/``handle_get``/
``handle_del``/``handle_scan`` — plus whatever replication message
handlers their protocol needs.  Everything else (heartbeats, config
updates, transition forwarding, recovery, stats) lives here, which is
exactly the reuse story the paper tells: the MS+SC template is ~150 LoC
on top of this framework.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.core.config import ControlConfig
from repro.core.request import Request
from repro.core.types import Replica, ShardInfo
from repro.errors import BespoError
from repro.hashing.ring import HashRing
from repro.net.actor import Actor
from repro.net.message import Message

__all__ = ["Controlet", "Pump"]

#: client-facing operation message types.
CLIENT_OPS = ("put", "get", "del", "scan")

#: request-id dedup memory per controlet (completed-write cache size).
RID_CACHE = 65536


class Pump:
    """One-in-flight drain loop: busy flag + FIFO queue + retry-requeue.

    Every hot path in the batched controlets serializes its async work
    through the same hand-rolled shape — a queue, a busy flag, and a
    completion callback that releases the flag and re-enters the drain.
    ``Pump`` is that shape as a reusable primitive, so there is exactly
    one canonical implementation for the flow-control static passes
    (:mod:`repro.analysis.flow`) to certify.

    ``issue(item, done)`` starts the asynchronous work for one queued
    item and MUST invoke ``done()`` on **every** completion path —
    success, error response, and RPC timeout alike.  A dropped ``done``
    freezes the pump permanently; the pump-liveness pass checks every
    issue callable wired into a ``Pump`` for exactly this obligation.
    """

    __slots__ = ("issue", "queue", "busy")

    def __init__(self, issue: Callable[[Any, Callable[[], None]], None]):
        self.issue = issue
        self.queue: List[Any] = []
        self.busy = False

    def __len__(self) -> int:
        return len(self.queue)

    def push(self, item: Any) -> None:
        """Queue one item and start draining if idle."""
        self.queue.append(item)
        self.kick()

    def requeue_front(self, items: List[Any]) -> None:
        """Put failed work back at the head of the line so a retry keeps
        its place — younger items must not overtake it (FIFO under
        retry is what keeps per-key ordering through link flaps)."""
        self.queue[:0] = list(items)

    def kick(self) -> None:
        """Issue the next item unless one is already in flight."""
        if self.busy or not self.queue:
            return
        self.busy = True
        item = self.queue.pop(0)

        def done() -> None:
            self.busy = False
            self.kick()

        self.issue(item, done)


class Controlet(Actor):
    """Common machinery for every topology/consistency controlet."""

    def __init__(
        self,
        node_id: str,
        shard: ShardInfo,
        datalet: str,
        coordinator: str,
        config: Optional[ControlConfig] = None,
        recovery_source: Optional[str] = None,
        datalet_colocated: bool = True,
        backup_coordinators: Optional[List[str]] = None,
        rejoin: bool = False,
    ):
        super().__init__(node_id)
        self.shard = shard
        self.datalet = datalet
        self.coordinator = coordinator
        #: standby coordinators also receive our heartbeats so a
        #: promoted follower owns fresh liveness data (§VII).
        self.backup_coordinators = backup_coordinators or []
        self.config = config or ControlConfig()
        #: False when the paper's N:1 controlet:datalet mapping places
        #: our datalet on a different host — its failure is then *ours*
        #: to detect and report (the host-level heartbeat cannot).
        self.datalet_colocated = datalet_colocated
        self._datalet_strikes = 0
        self._datalet_reported = False
        #: datalet to copy state from when launched as a standby
        #: replacement (paper: "recovers the data from one of the
        #: datalets").
        self.recovery_source = recovery_source
        self.recovered = recovery_source is None
        #: True when this controlet was re-spawned on its *old* host
        #: after a durable crash-restart (WAL recovery): it was a shard
        #: member once, so membership is *confirmed* rather than polled
        #: for — and if the coordinator already swept us, recovery is
        #: abandoned (a replacement pair owns the slot now).
        self.rejoining = rejoin
        self._recovery_abandoned = False
        #: replication messages that arrived while we were still copying
        #: state from the recovery source; drained (in arrival order)
        #: once the snapshot is restored.  See :meth:`sync_recover`.
        self._catchup: List[Message] = []
        #: set once a transition replaced this controlet; all client ops
        #: are rejected with a ``retired`` error that carries the new
        #: epoch hint so clients refresh their map.
        self.retired = False
        #: highest cluster-map epoch whose shard view we installed; two
        #: config_update broadcasts sent back-to-back can reorder in
        #: flight, and adopting the older one would silently shrink our
        #: replica view (fan-out writers would skip the newest member).
        self._config_epoch = 0
        #: during a transition, client *writes* are forwarded here.
        self.forward_writes_to: Optional[str] = None
        #: cluster-view routing state, mirrored from the coordinator's
        #: :class:`~repro.cluster.view.ClusterView` broadcasts.  The
        #: ring generation + member ids give every controlet the same
        #: key→shard function the clients route by, which is what makes
        #: *ownership fencing* possible: once the ring has re-versioned
        #: (gen > 0 under hash partitioning), ops for keys the new ring
        #: assigns elsewhere bounce with ``wrong_shard``.
        self._partitioner = "hash"
        self._ring_gen = 0
        self._ring_ids: List[str] = []
        self._ring: Optional[HashRing] = None
        #: open reshard window descriptor (+ the old ring) while writes
        #: dual-route; ``None`` when the topology is settled.
        self._reshard: Optional[Dict[str, Any]] = None
        self._old_ring: Optional[HashRing] = None
        #: highest window generation we acked a ``reshard_fence`` for:
        #: from then on the dual-routed old-ring leg of that window is
        #: rejected too, so no stale read survives the cutover.
        self._fenced_gen = 0
        #: keys written by clients — a migrated copy must never clobber
        #: them (cleared when the window commits).
        self._dirty_keys: set = set()
        #: in-flight source-side migration drive + last driven gen
        #: (duplicate ``reshard_migrate`` orders are dropped).
        self._migration: Optional[Any] = None
        self._migrated_gen = 0
        self.stats: Dict[str, int] = {
            "puts": 0, "gets": 0, "dels": 0, "scans": 0,
            "redirects": 0, "forwarded": 0, "errors": 0,
            "dup_writes": 0,
        }
        #: request-id dedup tables.  Clients stamp a per-operation
        #: ``req_id`` on mutations (RequestContext.req_id); a write that
        #: completed here is cached so a *client retry* of the same
        #: operation is answered from cache instead of re-executed —
        #: distinguishing retries from fabric duplicates.  These tables
        #: are excluded from model-checker handler summaries (see
        #: analysis/summaries.py IGNORED_ATTRS): checker clients never
        #: stamp rids, so the tables stay quiescent in explored runs.
        self._rid_done: Dict[str, Tuple[str, Dict[str, Any]]] = {}
        self._rid_order: Deque[str] = deque(maxlen=RID_CACHE)
        self._rid_pending: Dict[str, List[Message]] = {}
        self.register("put", self._client_op)
        self.register("get", self._client_op)
        self.register("del", self._client_op)
        self.register("scan", self._client_op)
        self.register("config_update", self._on_config_update)
        self.register("transition_start", self._on_transition_start)
        self.register("retire", self._on_retire)
        self.register("ctl_stats", self._on_stats)
        self.register("reshard_migrate", self._on_reshard_migrate)
        self.register("reshard_fence", self._on_reshard_fence)
        self.register("migrate_put", self._on_migrate_put)

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    def metrics_group(self) -> Dict[str, float]:
        """Live scrape source for the cluster metrics plane: the request
        counters plus whatever batching counters the combo maintains
        (:meth:`_batch_metrics`)."""
        out = {k: float(v) for k, v in self.stats.items()}
        out.update(self._batch_metrics())
        return out

    def _batch_metrics(self) -> Dict[str, float]:
        """Combo-specific batching/coalescing counters; subclasses that
        batch override this (group commit, chain frames, replicate
        frames) so effectiveness is observable without tracing."""
        return {}

    # ------------------------------------------------------------------
    # cost accounting
    # ------------------------------------------------------------------
    def service_demand(self, msg: Message, costs: Any) -> float:
        return costs.scaled("controlet_overhead")

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def on_start(self) -> None:
        if self.rejoining:
            # recovered-but-stale state: fence client ops until the
            # coordinator confirms we are still a shard member
            self.retired = True
            self._confirm_membership()
        self._heartbeat(stagger=True)
        if self.recovery_source is not None and not self.recovered:
            self._recover()

    def on_restart(self) -> None:
        """A crashed-and-revived controlet must *fence* itself: its role
        may have been repaired away while it was down (e.g. an ex-tail
        would serve stale strong reads).  Refuse client ops until the
        coordinator confirms we are still a shard member."""
        self.retired = True
        # In-flight executions (and their completion callbacks) died with
        # the crash: a rid left "pending" would absorb every retry of
        # that operation forever.  Drop the pending set — retries then
        # re-execute — but keep the completed-write cache, which is the
        # part that carries the exactly-once guarantee.
        self._rid_pending.clear()
        self._confirm_membership()
        self.on_start()

    def _confirm_membership(self, attempt: int = 0) -> None:
        coords = [self.coordinator] + list(self.backup_coordinators)
        target = coords[attempt % len(coords)]

        def on_info(resp: Optional[Message], err: Optional[BespoError]) -> None:
            if resp is None or resp.type != "shard_info":
                self.set_timer(
                    self.config.heartbeat_interval,
                    lambda: self._confirm_membership(attempt + 1),
                )
                return
            shard = ShardInfo.from_dict(resp.payload["shard"])
            if any(r.controlet == self.node_id for r in shard.replicas):
                self._install_shard(shard, resp.payload.get("epoch"))
                self.retired = False
                self.on_shard_changed()
            elif self.rejoining:
                # we came back from disk but the coordinator already
                # swept us — a replacement pair owns the slot.  Stop
                # recovering; this process stays a fenced zombie.
                self.abandon_recovery()
            elif not self.recovered:
                # mid-recovery replacement: not joined yet — keep
                # polling until the coordinator adds us.
                self.set_timer(
                    self.config.heartbeat_interval,
                    lambda: self._confirm_membership(attempt + 1),
                )
            # else: we were repaired out of the shard; stay fenced.

        self.call(
            target,
            "get_shard_info",
            {"shard": self.shard.shard_id},
            callback=on_info,
            timeout=self.config.replication_timeout,
        )

    def _heartbeat(self, stagger: bool = False) -> None:
        """LogHeartbeat(c, d) loop (paper Table III).

        The first beat fires immediately (the coordinator's failure
        clock starts at boot); ``stagger`` offsets the re-arm chain once
        so same-period loops on this node never share a timestamp.
        """
        payload = {"controlet": self.node_id, "datalet": self.datalet,
                   "shard": self.shard.shard_id}
        self.send(self.coordinator, "heartbeat", dict(payload))
        for backup in self.backup_coordinators:
            self.send(backup, "heartbeat", dict(payload))
        delay = self.config.heartbeat_interval
        if stagger:
            delay += self.loop_phase("heartbeat", delay)
        self.set_timer(delay, self._heartbeat)

    def abandon_recovery(self) -> None:
        """Give up on (re)joining: stay fenced forever.  Retry timers
        already armed re-check the flag and fizzle."""
        self._recovery_abandoned = True
        self.retired = True

    def _recover(self) -> None:
        """Copy a snapshot from a surviving datalet into our own, then
        report readiness to the coordinator.

        The restore carries ``reset=True``: a rejoining node holds
        recovered-but-stale state, and adopting the source's snapshot
        on top of it would resurrect keys deleted while we were down.
        """
        if self._recovery_abandoned:
            return

        def on_snapshot(resp: Optional[Message], err: Optional[BespoError]) -> None:
            if self._recovery_abandoned:
                return
            if err is not None or resp is None or resp.type != "snapshot":
                # source died mid-recovery: the coordinator will notice
                # our missing recovery_done and may relaunch; retry once
                # the map changes. Here we simply retry after a beat.
                self.set_timer(self.config.replication_timeout, self._recover)
                return
            self.call(
                self.datalet,
                "restore",
                {"data": resp.payload["data"], "reset": True},
                callback=lambda r, e: self._recovery_done(e),
                timeout=self.config.replication_timeout * 10,
            )

        self.call(
            self.recovery_source,
            "snapshot",
            {},
            callback=on_snapshot,
            timeout=self.config.replication_timeout * 10,
        )

    def _recovery_done(self, err: Optional[BespoError]) -> None:
        if self._recovery_abandoned:
            return
        if err is not None:
            self.set_timer(self.config.replication_timeout, self._recover)
            return
        self.recovered = True
        # Standby coordinators registered the same pending replica; tell
        # them too, so a follower promoted mid-failover can complete the
        # in-flight repair instead of stranding it.
        payload = {"controlet": self.node_id, "shard": self.shard.shard_id}
        self.send(self.coordinator, "recovery_done", dict(payload))
        for backup in self.backup_coordinators:
            self.send(backup, "recovery_done", dict(payload))

    # ------------------------------------------------------------------
    # hole-free recovery (controlet-to-controlet state transfer)
    # ------------------------------------------------------------------
    def source_controlet(self) -> Optional[str]:
        """Controlet owning our recovery-source datalet, per our spawn
        -time shard view (None if the view no longer lists it)."""
        if self.recovery_source is None:
            return None
        for r in self.shard.ordered():
            if r.datalet == self.recovery_source:
                return r.controlet
        return None

    def sync_recover(self, pull_type: str) -> None:
        """State transfer that closes the snapshot/join window.

        A plain datalet snapshot (:meth:`_recover`) loses every write
        committed between the snapshot and the moment the replacement
        joins the shard.  Protocols that cannot tolerate that hole send
        ``pull_type`` to the *source controlet* instead: the source
        captures its protocol cursor and starts relaying subsequent
        writes to us in the same handler invocation — before it asks its
        datalet for the snapshot — so snapshot ∪ relay covers every
        write.  Replication messages arriving while we restore are
        buffered via :meth:`buffer_catchup` and replayed after
        :meth:`on_sync_state` adopts the cursor.
        """
        if self._recovery_abandoned:
            return
        src = self.source_controlet()
        if src is None or src == self.node_id:
            # The source was repaired out of the shard (it died while we
            # were copying): fall back to the current head, which under
            # every topology here holds a superset of committed state.
            try:
                head = self.shard.head
            except Exception:  # noqa: BLE001 - empty shard view
                head = None
            if head is not None and head.controlet != self.node_id:
                self.recovery_source = head.datalet
                src = head.controlet
        if src is None or src == self.node_id:
            # No better option than a plain snapshot (subclasses
            # override _recover, so call the base version explicitly).
            Controlet._recover(self)
            return

        def retry() -> None:
            # refresh first: the source may have died and been repaired
            # away, in which case the re-pull needs the fallback above
            self.set_timer(
                self.config.replication_timeout,
                lambda: self.refresh_shard(
                    then=lambda: self.sync_recover(pull_type)
                ),
            )

        def on_state(resp: Optional[Message], err: Optional[BespoError]) -> None:
            if self._recovery_abandoned:
                return
            if err is not None or resp is None or resp.type != "sync_state":
                retry()
                return
            state = dict(resp.payload)

            def restored(r: Optional[Message], e: Optional[BespoError]) -> None:
                if self._recovery_abandoned:
                    return
                if e is not None:
                    retry()
                    return
                self.on_sync_state(state)
                self._recovery_done(None)
                self.on_catchup_drain(self.drain_catchup())

            self.datalet_call(
                "restore", {"data": state.get("data", {}), "reset": True},
                callback=restored,
            )

        self.call(
            src,
            pull_type,
            {"controlet": self.node_id, "datalet": self.datalet},
            callback=on_state,
            timeout=self.config.replication_timeout * 10,
        )

    def on_sync_state(self, state: Dict[str, Any]) -> None:
        """Hook: adopt protocol cursors carried by a ``sync_state``
        response (sequence numbers, stream identity, log cursor)."""

    def buffer_catchup(self, msg: Message) -> None:
        self._catchup.append(msg)

    def drain_catchup(self) -> List[Message]:
        buf, self._catchup = self._catchup, []
        return buf

    def on_catchup_drain(self, msgs: List[Message]) -> None:
        """Replay messages buffered during recovery through their
        registered handlers (now that ``recovered`` is True)."""
        for m in msgs:
            handler = self._handlers.get(m.type)
            if handler is not None:
                handler(m)

    # ------------------------------------------------------------------
    # shard-view helpers
    # ------------------------------------------------------------------
    @property
    def my_replica(self) -> Replica:
        return self.shard.replica_of(self.node_id)

    @property
    def is_head(self) -> bool:
        return self.shard.head.controlet == self.node_id

    @property
    def is_tail(self) -> bool:
        return self.shard.tail.controlet == self.node_id

    def peers(self) -> List[Replica]:
        """Every replica in the shard except this one, in chain order."""
        return [r for r in self.shard.ordered() if r.controlet != self.node_id]

    def datalet_call(
        self,
        type: str,
        payload: Dict[str, Any],
        callback: Optional[Callable] = None,
        datalet: Optional[str] = None,
    ) -> None:
        """RPC to a datalet (default: our own).

        Calls to a *colocated* own datalet skip the timeout timer: the
        pair shares a host, so the only way our datalet stops answering
        is the host dying — taking us with it.  Remote datalet calls
        (split placement, AA+SC fan-out writes, recovery snapshots) keep
        the timeout; repeated timeouts against our own remote datalet
        are reported to the coordinator as a ``datalet_failed`` event.
        """
        target = datalet or self.datalet
        own = target == self.datalet
        if callback is not None and own and self.datalet_colocated:
            self.call(target, type, payload, callback=callback, timeout=None)
            return
        if own and not self.datalet_colocated and callback is not None:
            inner = callback

            def watching(resp, err):
                self._note_datalet_result(err)
                inner(resp, err)

            callback = watching
        timeout = self.config.replication_timeout if callback is not None else None
        self.call(target, type, payload, callback=callback, timeout=timeout)

    def _note_datalet_result(self, err) -> None:
        if err is None:
            self._datalet_strikes = 0
            return
        self._datalet_strikes += 1
        if self._datalet_strikes >= 3 and not self._datalet_reported:
            self._datalet_reported = True
            self.send(
                self.coordinator,
                "datalet_failed",
                {"controlet": self.node_id, "datalet": self.datalet,
                 "shard": self.shard.shard_id},
            )

    def refresh_shard(self, then: Optional[Callable[[], None]] = None) -> None:
        """Re-fetch our shard's info from the coordinator (used when a
        chain peer stops responding mid-request)."""

        def on_info(resp: Optional[Message], err: Optional[BespoError]) -> None:
            if resp is not None and resp.type == "shard_info":
                if self._install_shard(
                    ShardInfo.from_dict(resp.payload["shard"]),
                    resp.payload.get("epoch"),
                ):
                    self._install_ring(
                        resp.payload.get("ring"), resp.payload.get("partitioner")
                    )
            if then is not None:
                then()

        self.call(
            self.coordinator,
            "get_shard_info",
            {"shard": self.shard.shard_id},
            callback=on_info,
            timeout=self.config.replication_timeout,
        )

    # ------------------------------------------------------------------
    # client-op entry: retirement / transition forwarding, then dispatch
    # ------------------------------------------------------------------
    def _client_op(self, msg: Message) -> None:
        if self.retired or not self.recovered:
            # not-yet-recovered replacements (visible to clients under
            # AA join-first) bounce ops the same way retired controlets
            # do: the client refreshes its map and retries elsewhere.
            self.stats["errors"] += 1
            self.respond(msg, "error", {"error": "retired"})
            return
        if (
            msg.type != "scan"
            and self._partitioner == "hash"
            and self._ring_gen > 0
            and self._ring is not None
        ):
            # ownership fence: the ring has re-versioned at least once,
            # so routing is no longer derivable from the static shard
            # list — ops for keys the current ring assigns elsewhere are
            # bounced.  The one sanctioned exception is the dual-routed
            # *old-ring* leg of an open, not-yet-fenced reshard window,
            # and only from clients that stamped that window's gen.
            key = msg.payload["key"]
            if self._ring.lookup(key) != self.shard.shard_id:
                desc = self._reshard
                dual_leg = (
                    desc is not None
                    and int(desc["gen"]) > self._fenced_gen
                    and msg.payload.get("gen") == desc["gen"]
                    and self._old_ring is not None
                    and self._old_ring.lookup(key) == self.shard.shard_id
                )
                if not dual_leg:
                    self.stats["errors"] += 1
                    self.respond(msg, "error", {"error": "wrong_shard"})
                    return
        if msg.type in ("put", "del"):
            # dirty-track every admitted client mutation so an in-window
            # migrated copy (an older value by construction) can never
            # clobber it; see :meth:`_on_migrate_put`.
            self._dirty_keys.add(msg.payload["key"])
        if self.forward_writes_to is not None and msg.type in ("put", "del"):
            self._forward_write(msg)
            return
        if msg.type == "put":
            self.stats["puts"] += 1
            self.handle_put(msg)
        elif msg.type == "get":
            self.stats["gets"] += 1
            self.handle_get(msg)
        elif msg.type == "del":
            self.stats["dels"] += 1
            self.handle_del(msg)
        else:
            self.stats["scans"] += 1
            self.handle_scan(msg)

    def _forward_write(self, msg: Message) -> None:
        """Transition mode: relay the write to the new controlet and ack
        the client only once the new service has committed it
        (paper Fig 4)."""
        self.stats["forwarded"] += 1
        self.call(
            self.forward_writes_to,
            msg.type,
            dict(msg.payload),
            callback=lambda resp, err: self.respond(
                msg,
                resp.type if resp is not None else "error",
                dict(resp.payload) if resp is not None else {"error": str(err)},
            ),
            timeout=self.config.replication_timeout * 4,
        )

    # ------------------------------------------------------------------
    # request lifecycle: dedup gate + completion
    # ------------------------------------------------------------------
    def begin_write(self, msg: Message, op: str,
                    rid: Optional[str] = None) -> Optional[Request]:
        """Admit a write behind the request-id dedup gate.

        Returns a :class:`~repro.core.request.Request` to execute, or
        ``None`` when the operation was already handled here: a
        completed rid is answered from cache, an in-flight rid parks the
        duplicate message until the first execution completes.  Call
        *after* routing checks (redirect/retired) — a bounced attempt
        must not consume the rid.
        """
        if rid is None:
            ctx = msg.ctx
            if ctx is not None:
                rid = ctx.req_id
        if rid is None and msg.payload.get("mig"):
            # migration copies travel controlet→controlet without a
            # client request context; their rid rides in the payload so
            # FIFO retries of the same copy stay idempotent.
            rid = msg.payload.get("rid")
        if rid is None:
            return Request(self, msg, op)
        cached = self._rid_done.get(rid)
        if cached is not None:
            self.stats["dup_writes"] += 1
            self.respond(msg, cached[0], dict(cached[1]))
            return None
        waiters = self._rid_pending.get(rid)
        if waiters is not None:
            self.stats["dup_writes"] += 1
            waiters.append(msg)
            return None
        self._rid_pending[rid] = []
        return Request(self, msg, op, rid=rid, dedup=True)

    def _complete_request(self, req: Request, type: str,
                          payload: Dict[str, Any]) -> None:
        """Respond to the request's originator and settle dedup state.

        Successful completions are cached (client retries replay the
        answer) and parked duplicate attempts receive the same response.
        Errors clear the pending entry and *re-drive* any parked
        duplicates through dispatch: a retry must stay an independent
        execution, not inherit the first attempt's failure.  Re-driving
        cannot double-apply — every downstream receiver (chain members,
        EC slaves, the shared-log sequencer) gates on the same rid.
        """
        self.respond(req.msg, type, payload)
        if not req.dedup or req.rid is None:
            return
        waiters = self._rid_pending.pop(req.rid, ())
        if type != "error":
            self._remember_rid(req.rid, type, payload)
            for dup in waiters:
                self.respond(dup, type, dict(payload))
        else:
            for dup in waiters:
                self._redrive(dup)

    def _redrive(self, msg: Message) -> None:
        """Re-enter a parked duplicate through normal dispatch (under
        its own request context), as if it had just arrived."""
        handler = self._handlers.get(msg.type)
        if handler is None:
            self.on_unhandled(msg)
            return
        if msg.ctx is not None:
            prev = self._ctx_current
            self._ctx_current = msg.ctx
            try:
                handler(msg)
            finally:
                self._ctx_current = prev
        else:
            handler(msg)

    def _remember_rid(self, rid: str, type: str = "ok",
                      payload: Optional[Dict[str, Any]] = None) -> None:
        """Record a completed write's rid (bounded FIFO cache).

        Also used by replication receivers (chain members, EC slaves)
        that learn a rid from the protocol stream rather than from a
        client-facing completion.
        """
        if rid in self._rid_done:
            return
        if len(self._rid_order) == self._rid_order.maxlen:
            self._rid_done.pop(self._rid_order[0], None)
        self._rid_order.append(rid)
        self._rid_done[rid] = (type, payload if payload is not None else {})

    # -- subclass protocol hooks -------------------------------------------
    def handle_put(self, msg: Message) -> None:
        raise NotImplementedError

    def handle_get(self, msg: Message) -> None:
        """Default read path: serve from the local datalet."""
        self.datalet_call(
            "get",
            {"key": msg.payload["key"]},
            callback=lambda resp, err: self._relay(msg, resp, err),
        )

    def handle_del(self, msg: Message) -> None:
        raise NotImplementedError

    def handle_scan(self, msg: Message) -> None:
        """Default scan path: local datalet (ordered engines only)."""
        self.datalet_call(
            "scan",
            {
                "start": msg.payload["start"],
                "end": msg.payload["end"],
                "limit": msg.payload.get("limit"),
            },
            callback=lambda resp, err: self._relay(msg, resp, err),
        )

    def _relay(self, client_msg: Message, resp: Optional[Message], err: Optional[BespoError]) -> None:
        """Forward a datalet response (or error) back to the client."""
        if err is not None or resp is None:
            self.stats["errors"] += 1
            self.respond(client_msg, "error", {"error": str(err) if err else "no response"})
            return
        self.respond(client_msg, resp.type, dict(resp.payload))

    def redirect(self, msg: Message, to: str, why: str) -> None:
        """Tell a (stale) client to retry against the right replica."""
        self.stats["redirects"] += 1
        self.respond(msg, "error", {"error": "redirect", "to": to, "why": why})

    # ------------------------------------------------------------------
    # reconfiguration & transitions
    # ------------------------------------------------------------------
    def _install_shard(self, shard: ShardInfo, epoch: Optional[int]) -> bool:
        """Adopt a shard view unless we already hold a newer one."""
        if epoch is not None:
            if epoch < self._config_epoch:
                return False
            self._config_epoch = epoch
        self.shard = shard
        return True

    def _on_config_update(self, msg: Message) -> None:
        new_shard = ShardInfo.from_dict(msg.payload["shard"])
        if new_shard.shard_id != self.shard.shard_id:
            return  # not ours; stale broadcast
        if not self._install_shard(new_shard, msg.payload.get("epoch")):
            return  # reordered broadcast older than our current view
        self._install_ring(msg.payload.get("ring"), msg.payload.get("partitioner"))
        self.on_shard_changed()

    def on_shard_changed(self) -> None:
        """Hook: the shard view changed (failover, replica added)."""

    def _on_transition_start(self, msg: Message) -> None:
        """An incoming transition: forward writes to the new service and
        start draining; report readiness when drained."""
        self.forward_writes_to = msg.payload["forward_to"]

        def ready() -> None:
            self.send(
                self.coordinator,
                "transition_ready",
                {"controlet": self.node_id, "shard": self.shard.shard_id},
            )

        self.prepare_retirement(ready)

    def prepare_retirement(self, done: Callable[[], None]) -> None:
        """Drain protocol state built up before the transition; call
        ``done`` when the new controlets can take over.  Default: ready
        immediately (nothing buffered)."""
        done()

    def _on_retire(self, msg: Message) -> None:
        self.retired = True
        self.respond(msg, "ok")

    def _on_stats(self, msg: Message) -> None:
        self.respond(msg, "ctl_stats", {k: float(v) for k, v in self.stats.items()})

    # ------------------------------------------------------------------
    # online resharding: ring install, ownership fence, key migration
    # ------------------------------------------------------------------
    def _install_ring(
        self,
        ring: Optional[Dict[str, Any]],
        partitioner: Optional[str],
    ) -> None:
        """Adopt the routing block of an (epoch-fenced) config payload:
        ring generation + member ids, plus the reshard window when one
        is open.  Callers must only reach here through the epoch fence
        in :meth:`_install_shard` — installing a stale ring would
        re-open a committed window."""
        if partitioner:
            self._partitioner = partitioner
        if not ring:
            return
        gen = int(ring.get("gen", 0))
        ids = list(ring.get("ids", []))
        if gen != self._ring_gen or ids != self._ring_ids:
            self._ring_gen = gen
            self._ring_ids = ids
            self._ring = HashRing(ids) if ids else None
        desc = ring.get("reshard")
        if desc is not None:
            desc = dict(desc)
            if self._reshard is None or self._reshard.get("gen") != desc.get("gen"):
                self._reshard = desc
                self._old_ring = HashRing(list(desc["old"]))
        elif self._reshard is not None:
            # window committed: the new ring is the only ring now, and
            # the in-window dirty marks have served their purpose
            self._reshard = None
            self._old_ring = None
            self._dirty_keys.clear()

    def _adopt_window(self, gen: int, ids: List[str], desc: Dict[str, Any]) -> None:
        """Install a reshard window directly from its descriptor (the
        ``reshard_migrate`` order can outrun the config broadcast)."""
        self._ring_gen = gen
        self._ring_ids = list(ids)
        self._ring = HashRing(self._ring_ids)
        self._reshard = desc
        self._old_ring = HashRing(list(desc["old"]))

    # -- source side: drive the per-key copy pump ----------------------
    def _on_reshard_migrate(self, msg: Message) -> None:
        """Coordinator order: this shard's owned range shrinks under the
        new ring — copy every moved key to its new owner, then report
        ``migrate_done``."""
        desc = dict(msg.payload["reshard"])
        gen = int(desc["gen"])
        if self._migration is not None or gen <= self._migrated_gen:
            return  # duplicate order (fabric dup or coordinator retry)
        epoch = msg.payload.get("epoch")
        if epoch is not None and int(epoch) > self._config_epoch:
            self._config_epoch = int(epoch)
        if self._reshard is None or self._reshard.get("gen") != gen:
            self._adopt_window(gen, list(desc["new"]), desc)
        self._migrated_gen = gen
        # local import: cluster.migrate builds on Pump from this module
        from repro.cluster.migrate import MigrationPump

        pump = MigrationPump(self._migrate_copy, on_done=self._migration_done)
        self._migration = pump

        def census_ready(keys: List[str]) -> None:
            pump.feed(keys)
            pump.seal()

        self._migrate_barrier(lambda: self._migration_census(census_ready))

    def _migrate_barrier(self, then: Callable[[], None]) -> None:
        """Hook: wait until every write admitted *before* the window
        opened is applied to the local engine, so the census read sees
        it.  Default: nothing buffers ahead of the engine — proceed
        immediately.  Combos with an accept queue / replication backlog
        override this (writes admitted *during* the window are covered
        by the destination's dirty marks instead)."""
        then()

    def _migration_census(self, then: Callable[[List[str]], None]) -> None:
        """Snapshot the local engine and keep only keys this shard owns
        under the *old* ring whose *new*-ring owner is another shard
        (sorted: deterministic copy order).

        The old-ring clause is load-bearing: a source shard may hold
        stale leftovers of keys that migrated *away* in an earlier
        reshard (copies are not purged at commit).  Those keys are not
        ours to ship — the current owner's value is newer, and none of
        the dirty gates protect a key the open window does not move —
        so re-migrating them would clobber live data at the owner."""

        def have(resp: Optional[Message], err: Optional[BespoError]) -> None:
            if err is not None or resp is None or resp.type != "snapshot":
                # datalet briefly unreachable: the census must land
                self.set_timer(0.05, lambda: self._migration_census(then))
                return
            data = resp.payload["data"]
            assert self._ring is not None and self._old_ring is not None
            me = self.shard.shard_id
            then([
                k for k in sorted(data)
                if self._old_ring.lookup(k) == me
                and self._ring.lookup(k) != me
            ])

        self.datalet_call("snapshot", {}, callback=have)

    def _migrate_copy(self, key: str, complete: Callable[[str], None]) -> None:
        """Copy one key to its new-ring owner: read the local engine,
        ship a rid-stamped idempotent ``migrate_put`` to the destination
        shard's entry controlet.  Combos with an external ordering
        authority override this (AA+SC locks the key first; AA+EC
        appends to the destination's shared log instead)."""
        desc = self._reshard
        if desc is None or self._ring is None:
            complete("skipped")
            return
        entries: Dict[str, str] = desc.get("entries", {})  # type: ignore[assignment]
        dest = entries.get(self._ring.lookup(key))
        if dest is None:
            complete("skipped")
            return

        def have(resp: Optional[Message], err: Optional[BespoError]) -> None:
            if err is not None or resp is None:
                complete("retry")
                return
            if resp.type != "value":
                complete("skipped")  # vanished at the source (deleted)
                return
            self._ship_copy(key, resp.payload["val"], dest, complete)

        self.datalet_call("get", {"key": key}, callback=have)

    def _ship_copy(
        self,
        key: str,
        val: str,
        dest: str,
        complete: Callable[[str], None],
    ) -> None:
        """Send one ``migrate_put`` copy; retries reuse the same rid so
        the destination's dedup gate keeps them exactly-once."""
        desc = self._reshard
        if desc is None:
            complete("skipped")
            return
        rid = f"mig.g{desc['gen']}.{key}"

        def acked(resp: Optional[Message], err: Optional[BespoError]) -> None:
            if err is not None or resp is None or resp.type == "error":
                complete("retry")
                return
            complete("skipped" if resp.payload.get("skipped") else "moved")

        self.call(
            dest,
            "migrate_put",
            {"key": key, "val": val, "gen": desc["gen"], "rid": rid, "mig": True},
            callback=acked,
            timeout=self.config.replication_timeout,
        )

    def _migration_done(self) -> None:
        pump, self._migration = self._migration, None
        stats = pump.stats() if pump is not None else {}
        self.send(
            self.coordinator,
            "migrate_done",
            {"shard": self.shard.shard_id, **stats},
        )

    # -- destination side: dirty-checked idempotent apply ---------------
    def _on_migrate_put(self, msg: Message) -> None:
        key = msg.payload["key"]
        if key in self._dirty_keys:
            # a client wrote this key during the window — the source's
            # copy is older by construction and must not clobber it
            self.respond(msg, "ok", {"skipped": True})
            return
        self._admit_migrate(msg)

    def _admit_migrate(self, msg: Message) -> None:
        """Protocol hook: run a migrated copy through the combo's write
        path (idempotent under the in-band rid; see
        :meth:`begin_write`).  AA+SC overrides — the source already
        holds the cluster-wide lock, so its fan-out must not try to
        re-acquire it."""
        self.handle_put(msg)

    # -- fence: close the old-ring leg before the view flips ------------
    def _on_reshard_fence(self, msg: Message) -> None:
        self._fenced_gen = max(self._fenced_gen, int(msg.payload.get("gen", 0)))
        self.send(self.coordinator, "reshard_fenced", {"controlet": self.node_id})

    # ------------------------------------------------------------------
    # model-checker introspection
    # ------------------------------------------------------------------
    def snapshot_state(self) -> Dict[str, Any]:
        """Protocol-relevant state for model-checker fingerprints.

        Deliberately excludes ``stats`` (accounting, not behavior) and
        anything clock-valued; see :meth:`Actor.snapshot_state`.
        """
        s = super().snapshot_state()
        s.update({
            "shard_view": [r.controlet for r in self.shard.ordered()],
            "epoch": self._config_epoch,
            "recovered": self.recovered,
            "retired": self.retired,
            "catchup": len(self._catchup),
            "forward_writes_to": self.forward_writes_to,
            "ring_gen": self._ring_gen,
            "reshard_window": self._reshard is not None,
            "fenced_gen": self._fenced_gen,
        })
        return s
