"""MS+SC controlet: Master-Slave topology, Strong Consistency via chain
replication (paper §IV-A, Fig 3).

Writes enter at the chain **head**, flow node-by-node to the **tail**
(each node persisting to its local datalet before forwarding), and the
ack travels back up the chain; the head answers the client only after
the tail has committed — CRAQ-style head acknowledgment, which the
paper adopts because the head already holds the client connection.
Reads are served **only by the tail**, which is what makes the
guarantee strong: a read can never observe a write that is not yet
fully replicated.

If a downstream peer stops answering mid-request, the sender refreshes
its shard view from the coordinator and resumes the chain from its new
successor — the paper's in-flight request resolution during chain
repair.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.core.controlet import Controlet
from repro.core.request import Request
from repro.errors import BespoError
from repro.net.message import Message

__all__ = ["MSStrongControlet"]

#: bounded retries while the coordinator repairs the chain under us.
MAX_CHAIN_RETRIES = 3

#: one coalesced chain entry + its completion continuation
#: (``done(err)`` — err None means the suffix of the chain committed).
_DownEntry = Tuple[Dict[str, object], Callable[[Optional[str]], None]]


class MSStrongControlet(Controlet):
    """Chain-replication controlet."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        #: a recovering replacement we relay chain writes to while it is
        #: not yet officially our successor (closes the snapshot/join
        #: window — writes committed during the copy would otherwise be
        #: missing from the new tail, i.e. stale strong reads).
        self._sync_successor: Optional[str] = None
        #: chain writes awaiting the downstream link, in apply order;
        #: drained in coalesced ``chain_put_batch`` frames with at most
        #: one frame in flight per link (:meth:`_pump_down`).
        self._down_queue: List[_DownEntry] = []
        self._down_busy = False
        self._down_retries = 0
        #: inbound frames serialized FIFO (:meth:`_pump_frames`): a
        #: frame's members finish before the next frame is examined, so
        #: a duplicate frame only ever observes completed originals.
        self._frame_queue: List[Message] = []
        self._frame_busy = False
        #: head-accepted client writes awaiting their local apply, in
        #: acceptance order; coalesced into one ``apply_batch`` at a
        #: time (:meth:`_pump_accepts`).
        self._accept_queue: List[Request] = []
        self._accept_busy = False
        self.chain_frames = 0
        self.chain_frame_ops = 0
        self.register("chain_put", self._on_chain_put)
        self.register("chain_put_batch", self._on_chain_put_batch)
        self.register("tail_sync_pull", self._on_tail_sync_pull)

    # ------------------------------------------------------------------
    # hole-free recovery (replacement tail)
    # ------------------------------------------------------------------
    def _recover(self) -> None:
        self.sync_recover("tail_sync_pull")

    def _on_tail_sync_pull(self, msg: Message) -> None:
        """We are the recovery source: start relaying every subsequent
        chain write to the replacement *before* snapshotting.  Datalet
        message ordering then guarantees snapshot ∪ relayed writes
        covers everything committed here.

        The relay is armed only when the puller sits *downstream* of us
        (a replacement tail — the invariant ``on_shard_changed`` later
        discharges).  A node power-cycling back into its old upstream
        slot before the coordinator noticed the crash (head restart:
        found by the recovery-aware model checker) must not be relayed
        to: chain writes already flow through it to us, so the relay
        would bounce every write back up the chain forever."""
        puller = msg.payload["controlet"]
        upstream = False
        try:
            order = [r.controlet for r in self.shard.ordered()]
            upstream = (
                puller in order
                and order.index(puller) <= order.index(self.node_id)
            )
        except Exception:  # noqa: BLE001 - sparse or stale view
            upstream = False
        if not upstream:
            self._sync_successor = puller

        def with_snap(resp: Optional[Message], err: Optional[BespoError]) -> None:
            if err is not None or resp is None or resp.type != "snapshot":
                self._sync_successor = None
                self.respond(msg, "error", {"error": f"snapshot failed: {err}"})
                return
            self.respond(msg, "sync_state", {"data": resp.payload["data"]})

        self.datalet_call("snapshot", {}, callback=with_snap)

    def on_shard_changed(self) -> None:
        if self._sync_successor is None:
            return
        try:
            succ = self.shard.successor(self.node_id)
        except Exception:  # noqa: BLE001 - we may have been repaired out
            return
        if succ is not None and succ.controlet == self._sync_successor:
            # the replacement joined: the ordinary chain now covers it
            self._sync_successor = None

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------
    def handle_put(self, msg: Message) -> None:
        self._accept_write(msg, "put")

    def handle_del(self, msg: Message) -> None:
        self._accept_write(msg, "del")

    def _accept_write(self, msg: Message, op: str) -> None:
        if not self.is_head:
            self.redirect(msg, self.shard.head.controlet, "writes enter at the chain head")
            return
        req = self.begin_write(msg, op)
        if req is None:
            return  # duplicate of a completed/in-flight rid
        self._accept_queue.append(req)
        self._pump_accepts()

    def _pump_accepts(self) -> None:
        """Serialize the head's own local applies, one coalesced
        ``apply_batch`` in flight.

        Per-op datalet calls are not enough: response arrival order is
        jittered, so the order writes entered the chain (response order)
        could invert the order the head's datalet applied them — the
        head would then permanently disagree with its own chain suffix
        on racing same-key writes, visible to any relaxed read it
        serves.  One batch in flight pins acceptance order = head apply
        order = chain order, and amortizes the head's WAL fsync as a
        bonus (the frame shares one commit group)."""
        if self._accept_busy or not self._accept_queue:
            return
        self._accept_busy = True
        take = max(1, self.config.chain_batch_max)
        batch = self._accept_queue[:take]
        del self._accept_queue[:take]
        ops = [{"op": r.op, "key": r.msg.payload["key"],
                "val": r.msg.payload.get("val")} for r in batch]

        def after_local(resp: Optional[Message], err: Optional[BespoError]) -> None:
            self._accept_busy = False
            if err is not None or resp is None or resp.type == "error":
                self.stats["errors"] += len(batch)
                for req in batch:
                    req.fail(f"local datalet write failed: {err}")
                self._pump_accepts()
                return
            results = resp.payload.get("results") or ["ok"] * len(batch)
            for req, status in zip(batch, results):
                if status != "ok":
                    # e.g. delete of a missing key: surface without
                    # touching the chain suffix for this member.
                    req.finish("error", {"error": status,
                                         "key": req.msg.payload["key"]})
                else:
                    self._forward_down(req)
            self._pump_accepts()

        self.datalet_call("apply_batch", {"ops": ops, "want_results": True},
                          callback=after_local)

    def _migrate_barrier(self, then) -> None:
        """Reshard census barrier: writes admitted before the window
        opened may still sit in the accept queue ahead of the head's
        engine — wait for one observed drain so the census sees them.
        (Writes admitted *during* the window are dual-routed, so the
        destination's dirty marks cover them instead.)"""

        def poll() -> None:
            if self._accept_busy or self._accept_queue:
                self.set_timer(0.05, poll)
                return
            then()

        poll()

    def _on_chain_put(self, msg: Message) -> None:
        """A chain write arriving from our predecessor."""
        if not self.recovered:
            # Recovering replacement: buffer and ack.  Ack-on-buffer is
            # safe because our predecessor applied before forwarding, so
            # the write survives in the chain even if we die; we replay
            # the buffer right after the snapshot restore.
            self.buffer_catchup(msg)
            # Not the client commit point: the predecessor already
            # applied-and-logged before forwarding, so the write is
            # durable upstream; the buffer replays after the snapshot
            # restore (combo ms-sc).
            # lint: allow[ack-before-durable]
            self.respond(msg, "ok")
            return
        # Every chain member runs the same dedup gate: rid rides the
        # chain_put payload, so a duplicate resumed by a *new* head
        # stops re-executing at the first member that already holds it.
        req = self.begin_write(msg, msg.payload["op"], rid=msg.payload.get("rid"))
        if req is None:
            return
        self._apply_and_forward(req)

    def _on_chain_put_batch(self, msg: Message) -> None:
        """A coalesced frame of chain writes from our predecessor."""
        if not self.recovered:
            # Recovering replacement: buffer and ack (same argument as
            # the single-op path: the predecessor applied every member
            # before the frame left, so the writes are durable upstream
            # and the buffer replays after the snapshot restore).
            self.buffer_catchup(msg)
            # lint: allow[ack-before-durable]
            self.respond(msg, "ok")
            return
        self._frame_queue.append(msg)
        self._pump_frames()

    def _pump_frames(self) -> None:
        """Process inbound frames strictly FIFO, one at a time.

        Serialization does double duty: it keeps the local datalet's
        apply order identical to the predecessor's frame order (no
        multi-slot CPU inversion between two in-flight frames), and it
        guarantees a duplicate frame — the upstream one-in-flight rule
        means a dup can only be a retry of a frame that already finished
        — observes its members in ``_rid_done`` rather than racing the
        originals."""
        if self._frame_busy or not self._frame_queue:
            return
        self._frame_busy = True
        msg = self._frame_queue.pop(0)
        fresh: List[Dict[str, object]] = []
        for d in msg.payload["entries"]:
            rid = d.get("rid")
            if rid is not None and rid in self._rid_done:
                # retried frame: this member already committed here
                self.stats["dup_writes"] += 1
                continue
            fresh.append(d)

        def frame_done() -> None:
            self._frame_busy = False
            self._pump_frames()

        if not fresh:
            # Every member was a duplicate: rids enter _rid_done only
            # after the original committed through the whole suffix, so
            # this frame's writes are already durable and replicated
            # below us (combo ms-sc) — nothing left to wait for.
            # lint: allow[ack-before-durable]
            self.respond(msg, "ok")
            frame_done()
            return
        ops = [{"op": d["op"], "key": d["key"], "val": d.get("val")} for d in fresh]

        def after_local(resp: Optional[Message], err: Optional[BespoError]) -> None:
            if err is not None or resp is None or resp.type == "error":
                self.stats["errors"] += len(fresh)
                self.respond(msg, "error",
                             {"error": f"local datalet write failed: {err}"})
                frame_done()
                return
            # Members persisted locally in frame order; continue each
            # down the chain and answer upstream once the whole frame
            # has committed below us.
            state = {"left": len(fresh), "err": None}

            def member_done(err2: Optional[str]) -> None:
                if err2 is not None and state["err"] is None:
                    state["err"] = err2
                state["left"] -= 1
                if state["left"]:
                    return
                if state["err"] is None:
                    for d in fresh:
                        rid = d.get("rid")
                        if rid is not None:
                            self._remember_rid(rid)
                    self.respond(msg, "ok")
                else:
                    self.respond(msg, "error", {"error": state["err"]})
                frame_done()

            for d in fresh:
                self._enqueue_down(dict(d), member_done)

        self.datalet_call("apply_batch", {"ops": ops}, callback=after_local)

    def _apply_and_forward(self, req: Request) -> None:
        """Persist locally, then continue down the chain; ack upstream
        (or to the client, at the head) once downstream has committed."""
        payload = {"key": req.msg.payload["key"]}
        if req.op == "put":
            payload["val"] = req.msg.payload["val"]

        def after_local(resp: Optional[Message], err: Optional[BespoError]) -> None:
            if err is not None or resp is None:
                self.stats["errors"] += 1
                req.fail(f"local datalet write failed: {err}")
                return
            if resp.type == "error":
                # e.g. delete of a missing key: surface without touching
                # the rest of the chain beyond what already applied.
                req.finish("error", dict(resp.payload))
                return
            self._forward_down(req)

        self.datalet_call(req.op, payload, callback=after_local)

    def _forward_down(self, req: Request) -> None:
        """Continue ``req`` down the chain; ack upstream once the whole
        suffix has committed.  The actual transmission is coalesced: the
        entry joins the per-link frame queue and rides the next
        ``chain_put_batch`` (:meth:`_pump_down`)."""
        entry: Dict[str, object] = {"op": req.op, "key": req.msg.payload["key"],
                                    "val": req.msg.payload.get("val")}
        if req.rid is not None:
            entry["rid"] = req.rid

        def done(err: Optional[str]) -> None:
            if err is None:
                req.ack()
            else:
                req.fail(err)

        self._enqueue_down(entry, done)

    def _enqueue_down(self, entry: Dict[str, object],
                      done: Callable[[Optional[str]], None]) -> None:
        self._down_queue.append((entry, done))
        self._pump_down()

    def _pump_down(self) -> None:
        """Drain the downstream queue, one coalesced frame in flight.

        One-in-flight per link is the ordering argument: frame N is
        fully committed by the chain suffix (or abandoned) before frame
        N+1 leaves, so two same-key writes can never overtake each other
        between adjacent chain members, and a duplicate frame is only
        ever a retry of one that already ran to completion downstream."""
        if self._down_busy or not self._down_queue:
            return
        try:
            succ = self.shard.successor(self.node_id)
        except Exception:  # noqa: BLE001 - not in our own view yet
            # A replacement replaying its catch-up buffer before the
            # config update that adds it: it is the tail-elect.
            succ = None
        relaying = succ is None and self._sync_successor is not None
        succ_id = succ.controlet if succ is not None else self._sync_successor
        if succ_id is None:  # we are the tail: commit point reached
            batch, self._down_queue = self._down_queue, []
            for _entry, done in batch:
                done(None)
            return
        self._down_busy = True
        take = max(1, self.config.chain_batch_max)
        batch = self._down_queue[:take]
        del self._down_queue[:take]
        self.chain_frames += 1
        self.chain_frame_ops += len(batch)
        if self._metrics is not None:
            self._metrics.histogram("batch.chain_frame_size").observe(len(batch))

        def on_ack(resp: Optional[Message], err: Optional[BespoError]) -> None:
            if err is not None or resp is None:
                # Successor unresponsive: likely mid-failover.
                if self._down_retries >= MAX_CHAIN_RETRIES:
                    self._down_retries = 0
                    self._down_busy = False
                    if relaying and self._sync_successor == succ_id:
                        # the recovering replacement died: stop relaying
                        # and resume committing as the tail
                        self._sync_successor = None
                        for _entry, done in batch:
                            done(None)
                    else:
                        self.stats["errors"] += len(batch)
                        for _entry, done in batch:
                            done("chain replication failed")
                    self._pump_down()
                    return
                # Refresh the chain view and resend the same frame to
                # the (possibly new) successor; the link stays busy so
                # no younger frame can overtake the retry.
                self._down_retries += 1
                self._down_queue[:0] = batch

                def resume() -> None:
                    self._down_busy = False
                    self._pump_down()

                self.refresh_shard(then=resume)
                return
            self._down_retries = 0
            self._down_busy = False
            if resp.type == "error":
                self.stats["errors"] += len(batch)
                for _entry, done in batch:
                    done(str(resp.payload.get("error", "chain replication failed")))
            else:
                for _entry, done in batch:
                    done(None)
            self._pump_down()

        self.call(
            succ_id,
            "chain_put_batch",
            {"entries": [dict(e) for e, _done in batch]},
            callback=on_ack,
            timeout=self.config.replication_timeout,
        )

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------
    def handle_get(self, msg: Message) -> None:
        # Per-request consistency (§IV-C): a client may explicitly relax
        # this GET to eventual, in which case any replica serves it.
        relaxed = msg.payload.get("consistency") == "eventual"
        if not self.is_tail and not relaxed:
            self.redirect(msg, self.shard.tail.controlet, "strong reads go to the tail")
            return
        super().handle_get(msg)

    def handle_scan(self, msg: Message) -> None:
        if not self.is_tail and msg.payload.get("consistency") != "eventual":
            self.redirect(msg, self.shard.tail.controlet, "strong scans go to the tail")
            return
        super().handle_scan(msg)

    def _batch_metrics(self):
        ops = self.chain_frame_ops
        return {
            "chain_frames": float(self.chain_frames),
            "chain_frame_ops": float(ops),
            # >1.0 means adjacent chain_puts are coalescing per link
            "coalesce_ratio": (
                ops / self.chain_frames if self.chain_frames else 0.0
            ),
        }

    # ------------------------------------------------------------------
    # model-checker introspection
    # ------------------------------------------------------------------
    def snapshot_state(self):
        s = super().snapshot_state()
        s["sync_successor"] = self._sync_successor
        s["accept_queue"] = len(self._accept_queue)
        s["accept_busy"] = self._accept_busy
        s["down_queue"] = len(self._down_queue)
        s["down_busy"] = self._down_busy
        s["frame_queue"] = len(self._frame_queue)
        s["frame_busy"] = self._frame_busy
        return s
