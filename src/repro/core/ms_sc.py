"""MS+SC controlet: Master-Slave topology, Strong Consistency via chain
replication (paper §IV-A, Fig 3).

Writes enter at the chain **head**, flow node-by-node to the **tail**
(each node persisting to its local datalet before forwarding), and the
ack travels back up the chain; the head answers the client only after
the tail has committed — CRAQ-style head acknowledgment, which the
paper adopts because the head already holds the client connection.
Reads are served **only by the tail**, which is what makes the
guarantee strong: a read can never observe a write that is not yet
fully replicated.

If a downstream peer stops answering mid-request, the sender refreshes
its shard view from the coordinator and resumes the chain from its new
successor — the paper's in-flight request resolution during chain
repair.
"""

from __future__ import annotations

from typing import Optional

from repro.core.controlet import Controlet
from repro.core.request import Request
from repro.errors import BespoError
from repro.net.message import Message

__all__ = ["MSStrongControlet"]

#: bounded retries while the coordinator repairs the chain under us.
MAX_CHAIN_RETRIES = 3


class MSStrongControlet(Controlet):
    """Chain-replication controlet."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        #: a recovering replacement we relay chain writes to while it is
        #: not yet officially our successor (closes the snapshot/join
        #: window — writes committed during the copy would otherwise be
        #: missing from the new tail, i.e. stale strong reads).
        self._sync_successor: Optional[str] = None
        self.register("chain_put", self._on_chain_put)
        self.register("tail_sync_pull", self._on_tail_sync_pull)

    # ------------------------------------------------------------------
    # hole-free recovery (replacement tail)
    # ------------------------------------------------------------------
    def _recover(self) -> None:
        self.sync_recover("tail_sync_pull")

    def _on_tail_sync_pull(self, msg: Message) -> None:
        """We are the recovery source: start relaying every subsequent
        chain write to the replacement *before* snapshotting.  Datalet
        message ordering then guarantees snapshot ∪ relayed writes
        covers everything committed here.

        The relay is armed only when the puller sits *downstream* of us
        (a replacement tail — the invariant ``on_shard_changed`` later
        discharges).  A node power-cycling back into its old upstream
        slot before the coordinator noticed the crash (head restart:
        found by the recovery-aware model checker) must not be relayed
        to: chain writes already flow through it to us, so the relay
        would bounce every write back up the chain forever."""
        puller = msg.payload["controlet"]
        upstream = False
        try:
            order = [r.controlet for r in self.shard.ordered()]
            upstream = (
                puller in order
                and order.index(puller) <= order.index(self.node_id)
            )
        except Exception:  # noqa: BLE001 - sparse or stale view
            upstream = False
        if not upstream:
            self._sync_successor = puller

        def with_snap(resp: Optional[Message], err: Optional[BespoError]) -> None:
            if err is not None or resp is None or resp.type != "snapshot":
                self._sync_successor = None
                self.respond(msg, "error", {"error": f"snapshot failed: {err}"})
                return
            self.respond(msg, "sync_state", {"data": resp.payload["data"]})

        self.datalet_call("snapshot", {}, callback=with_snap)

    def on_shard_changed(self) -> None:
        if self._sync_successor is None:
            return
        try:
            succ = self.shard.successor(self.node_id)
        except Exception:  # noqa: BLE001 - we may have been repaired out
            return
        if succ is not None and succ.controlet == self._sync_successor:
            # the replacement joined: the ordinary chain now covers it
            self._sync_successor = None

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------
    def handle_put(self, msg: Message) -> None:
        self._accept_write(msg, "put")

    def handle_del(self, msg: Message) -> None:
        self._accept_write(msg, "del")

    def _accept_write(self, msg: Message, op: str) -> None:
        if not self.is_head:
            self.redirect(msg, self.shard.head.controlet, "writes enter at the chain head")
            return
        req = self.begin_write(msg, op)
        if req is None:
            return  # duplicate of a completed/in-flight rid
        self._apply_and_forward(req)

    def _on_chain_put(self, msg: Message) -> None:
        """A chain write arriving from our predecessor."""
        if not self.recovered:
            # Recovering replacement: buffer and ack.  Ack-on-buffer is
            # safe because our predecessor applied before forwarding, so
            # the write survives in the chain even if we die; we replay
            # the buffer right after the snapshot restore.
            self.buffer_catchup(msg)
            # Not the client commit point: the predecessor already
            # applied-and-logged before forwarding, so the write is
            # durable upstream; the buffer replays after the snapshot
            # restore (combo ms-sc).
            # lint: allow[ack-before-durable]
            self.respond(msg, "ok")
            return
        # Every chain member runs the same dedup gate: rid rides the
        # chain_put payload, so a duplicate resumed by a *new* head
        # stops re-executing at the first member that already holds it.
        req = self.begin_write(msg, msg.payload["op"], rid=msg.payload.get("rid"))
        if req is None:
            return
        self._apply_and_forward(req)

    def _apply_and_forward(self, req: Request) -> None:
        """Persist locally, then continue down the chain; ack upstream
        (or to the client, at the head) once downstream has committed."""
        payload = {"key": req.msg.payload["key"]}
        if req.op == "put":
            payload["val"] = req.msg.payload["val"]

        def after_local(resp: Optional[Message], err: Optional[BespoError]) -> None:
            if err is not None or resp is None:
                self.stats["errors"] += 1
                req.fail(f"local datalet write failed: {err}")
                return
            if resp.type == "error":
                # e.g. delete of a missing key: surface without touching
                # the rest of the chain beyond what already applied.
                req.finish("error", dict(resp.payload))
                return
            self._forward_down(req)

        self.datalet_call(req.op, payload, callback=after_local)

    def _forward_down(self, req: Request) -> None:
        try:
            succ = self.shard.successor(self.node_id)
        except Exception:  # noqa: BLE001 - not in our own view yet
            # A replacement replaying its catch-up buffer before the
            # config update that adds it: it is the tail-elect.
            succ = None
        relaying = succ is None and self._sync_successor is not None
        succ_id = succ.controlet if succ is not None else self._sync_successor
        if succ_id is None:  # we are the tail: commit point reached
            req.ack()
            return

        def on_ack(resp: Optional[Message], err: Optional[BespoError]) -> None:
            if err is not None or resp is None:
                # Successor unresponsive: likely mid-failover. Refresh the
                # chain view and resume from the (possibly new) successor.
                if req.retries >= MAX_CHAIN_RETRIES:
                    if relaying and self._sync_successor == succ_id:
                        # the recovering replacement died: stop relaying
                        # and resume committing as the tail
                        self._sync_successor = None
                        req.ack()
                        return
                    self.stats["errors"] += 1
                    req.fail("chain replication failed")
                    return
                req.retries += 1
                self.refresh_shard(then=lambda: self._forward_down(req))
                return
            req.finish(resp.type, dict(resp.payload))

        payload = {"op": req.op, "key": req.msg.payload["key"],
                   "val": req.msg.payload.get("val")}
        if req.rid is not None:
            payload["rid"] = req.rid
        self.call(
            succ_id,
            "chain_put",
            payload,
            callback=on_ack,
            timeout=self.config.replication_timeout,
        )

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------
    def handle_get(self, msg: Message) -> None:
        # Per-request consistency (§IV-C): a client may explicitly relax
        # this GET to eventual, in which case any replica serves it.
        relaxed = msg.payload.get("consistency") == "eventual"
        if not self.is_tail and not relaxed:
            self.redirect(msg, self.shard.tail.controlet, "strong reads go to the tail")
            return
        super().handle_get(msg)

    def handle_scan(self, msg: Message) -> None:
        if not self.is_tail and msg.payload.get("consistency") != "eventual":
            self.redirect(msg, self.shard.tail.controlet, "strong scans go to the tail")
            return
        super().handle_scan(msg)

    # ------------------------------------------------------------------
    # model-checker introspection
    # ------------------------------------------------------------------
    def snapshot_state(self):
        s = super().snapshot_state()
        s["sync_successor"] = self._sync_successor
        return s
