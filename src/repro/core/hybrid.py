"""Extended topologies (paper §IV-E) — synthesized from the pre-built
controlets, demonstrating the framework's extensibility claim.

* **AA-MS hybrid** — "an MS topology for each shard on top of the
  logical AA overlay": several *masters* accept writes and order them
  through the shared log (AA+EC machinery), and each master owns a set
  of *slaves* it propagates to asynchronously (MS+EC machinery).
  :class:`AAMSHybridControlet` is literally the AA+EC controlet with
  the MS+EC propagation mixin bolted on — ~40 lines.

* **P2P** — "clients send a request to any controlet, which then routes
  the request to the actual controlet that manages the requested data.
  In this case, a controlet needs to maintain a routing map similar to
  a finger table": :class:`P2PNode` implements Chord-style routing —
  each node keeps ``log2(ring)`` fingers and greedily forwards to the
  closest preceding finger, reaching the owner in O(log n) hops.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.core.aa_ec import AAEventualControlet
from repro.core.controlet import Pump
from repro.datalet import Engine, HashTableEngine
from repro.errors import BespoError, KeyNotFound
from repro.hashing import stable_hash
from repro.net.actor import Actor
from repro.net.message import Message

__all__ = ["AAMSHybridControlet", "P2PNode", "chord_distance"]


class AAMSHybridControlet(AAEventualControlet):
    """Active master with its own asynchronously-replicated slaves.

    ``slaves`` are controlet ids that understand ``replicate`` batches
    (plain :class:`~repro.core.ms_ec.MSEventualControlet` instances work
    as-is — reuse, per the paper's §IV pitch)."""

    def __init__(self, *args, slaves: Optional[List[str]] = None, **kwargs):
        super().__init__(*args, **kwargs)
        self.slaves = slaves or []
        self._backlog: List[Dict[str, Optional[str]]] = []
        self._flush_armed = False
        #: one replicate frame in flight per slave link (lazily built in
        #: :meth:`_slave_pump`); frames queued behind a slow slave stay
        #: here instead of flooding the fabric.
        self._slave_pumps: Dict[str, Pump] = {}
        #: sequence stream for our slaves (MS+EC replicate protocol)
        self._slave_seq = 0
        self.propagated = 0

    def _apply_entries(self, entries) -> None:
        fresh = [d for d in entries if int(d["pos"]) >= self.cursor]
        super()._apply_entries(entries)
        # Slaves are fed exclusively from the replay path — *including*
        # our own writes — so they observe mutations in log order; the
        # accept path's order differs from the log's under concurrent
        # masters and would leave slaves divergent.  The log entry's rid
        # rides along so slaves inherit the request identity too.
        for d in fresh:
            self._enqueue(d["op"], d["key"], d["value"], d.get("rid"))

    def _enqueue(self, op: str, key: str, val: Optional[str],
                 rid: Optional[str] = None) -> None:
        if not self.slaves:
            return
        entry: Dict[str, Optional[str]] = {"op": op, "key": key, "val": val}
        if rid is not None:
            entry["rid"] = rid
        self._backlog.append(entry)
        if len(self._backlog) >= self.config.ec_batch_max:
            self._flush()
        elif not self._flush_armed:
            self._flush_armed = True
            self.set_timer(self.config.ec_batch_interval, self._flush_tick)

    def _flush_tick(self) -> None:
        self._flush_armed = False
        self._flush()

    def _slave_pump(self, slave: str) -> Pump:
        pump = self._slave_pumps.get(slave)
        if pump is None:

            def issue(frame: Dict[str, object], done: Callable[[], None],
                      _slave: str = slave) -> None:
                # The ack is pure flow control, same discipline as
                # ms_ec._pump_replicate: a dropped or timed-out frame is
                # not retried here — the slave's gap-repair anti-entropy
                # re-fetches anything it carried.  One-in-flight per
                # link is what bounds the fan-out: a slow slave queues
                # frames at its pump instead of flooding the fabric.
                def acked(resp: Optional[Message],
                          err: Optional[BespoError]) -> None:
                    done()

                self.call(_slave, "replicate", frame, callback=acked,
                          timeout=self.config.replication_timeout)

            pump = Pump(issue)
            self._slave_pumps[slave] = pump
        return pump

    def _flush(self) -> None:
        if not self._backlog:
            return
        batch, self._backlog = self._backlog, []
        start_seq = self._slave_seq
        self._slave_seq += len(batch)
        for slave in self.slaves:
            # per-slave copies, op dicts included: the fabric passes
            # payloads by reference and a serializing network would
            # never hand two receivers the same ops list
            self._slave_pump(slave).push({
                "master": self.node_id,
                "start_seq": start_seq,
                "ops": [dict(op) for op in batch],
            })
        self.propagated += len(batch)


# ---------------------------------------------------------------------------
# Chord-style P2P routing
# ---------------------------------------------------------------------------
RING_BITS = 64
RING = 1 << RING_BITS


def chord_distance(a: int, b: int) -> int:
    """Clockwise distance from ``a`` to ``b`` on the ring."""
    return (b - a) % RING


class P2PNode(Actor):
    """One peer: local storage + finger-table request routing.

    The node owning a key is the first node clockwise of the key's hash
    (its *successor*).  Any node accepts any request; non-owners forward
    to the closest preceding finger, halving the remaining ring distance
    each hop.  ``hops`` is carried in the payload so tests can assert
    the O(log n) bound.
    """

    def __init__(self, node_id: str, members: List[str], engine: Optional[Engine] = None):
        super().__init__(node_id)
        self.engine = engine or HashTableEngine()
        self.members = sorted(members, key=stable_hash)
        self.position = stable_hash(node_id)
        self.fingers = self._build_fingers()
        self.forwards = 0
        for op in ("put", "get", "del"):
            self.register(op, self._route)

    def service_demand(self, msg: Message, costs) -> float:
        return costs.scaled("controlet_overhead")

    # -- routing table ---------------------------------------------------
    def _successor_of(self, point: int) -> str:
        """First member clockwise of ``point``."""
        best, best_d = None, RING
        for m in self.members:
            d = chord_distance(point, stable_hash(m))
            if d < best_d:
                best, best_d = m, d
        assert best is not None
        return best

    def _build_fingers(self) -> List[Tuple[int, str]]:
        """finger[i] = successor(self.position + 2^i), deduplicated."""
        fingers: List[Tuple[int, str]] = []
        seen = set()
        for i in range(RING_BITS):
            point = (self.position + (1 << i)) % RING
            owner = self._successor_of(point)
            if owner not in seen and owner != self.node_id:
                seen.add(owner)
                fingers.append((stable_hash(owner), owner))
        return fingers

    def owner_of(self, key: str) -> str:
        return self._successor_of(stable_hash(key))

    def _closest_preceding(self, point: int) -> str:
        """Classic Chord greedy step: among fingers strictly between us
        and ``point`` (clockwise), pick the one closest to ``point``.
        The progress constraint (finger ahead of us but before the
        target) guarantees termination; if no finger qualifies we are
        one hop away and forward straight to the owner."""
        self_to_point = chord_distance(self.position, point)
        best: Optional[str] = None
        best_ahead = 0
        for pos, owner in self.fingers:
            ahead = chord_distance(self.position, pos)
            if 0 < ahead < self_to_point and ahead > best_ahead:
                best, best_ahead = owner, ahead
        return best if best is not None else self._successor_of(point)

    # -- request handling -------------------------------------------------
    def _route(self, msg: Message) -> None:
        key = msg.payload["key"]
        owner = self.owner_of(key)
        if owner == self.node_id:
            self._serve(msg)
            return
        self.forwards += 1
        fwd_payload = dict(msg.payload)
        fwd_payload["hops"] = fwd_payload.get("hops", 0) + 1
        fwd = Message(type=msg.type, payload=fwd_payload, src=msg.src,
                      dst=self._closest_preceding(stable_hash(key)),
                      msg_id=msg.msg_id, reply_to=msg.reply_to, ctx=msg.ctx)
        self._transmit(fwd)

    def _serve(self, msg: Message) -> None:
        hops = msg.payload.get("hops", 0)
        try:
            if msg.type == "put":
                self.engine.put(msg.payload["key"], msg.payload["val"])
                self.respond(msg, "ok", {"hops": hops})
            elif msg.type == "get":
                val = self.engine.get(msg.payload["key"])
                self.respond(msg, "value", {"val": val, "hops": hops})
            else:
                self.engine.delete(msg.payload["key"])
                self.respond(msg, "ok", {"hops": hops})
        except KeyNotFound:
            self.respond(msg, "error", {"error": "not_found", "key": msg.payload["key"],
                                        "hops": hops})
