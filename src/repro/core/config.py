"""Control-plane configuration.

Two layers, mirroring the paper's artifact:

* :class:`ControlConfig` — runtime knobs every controlet takes
  (heartbeat cadence, replication timeouts, EC batching, shared-log
  polling), the tunables §III-B says each controlet loads at startup;
* :func:`load_deployment_config` — parser for the JSON deployment file
  shown in the artifact appendix (``topology``, ``consistency_model``,
  ``consistency_tech``, ``num_replicas``, ...), plus the datalet host
  file format (``ip:port:role`` lines).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Tuple, Union

from repro.core.types import Consistency, Topology
from repro.errors import ConfigError

__all__ = ["ControlConfig", "DeploymentConfig", "load_deployment_config", "parse_datalet_hosts"]


@dataclass(frozen=True)
class ControlConfig:
    """Per-controlet runtime knobs (all times in seconds)."""

    #: heartbeat cadence to the coordinator (paper uses 5 s in tests;
    #: benchmarks here shrink it to make failover windows visible).
    heartbeat_interval: float = 1.0
    #: missed-heartbeat window after which the coordinator declares a
    #: node dead.
    failure_timeout: float = 3.0
    #: timeout for intra-chain / replica RPCs.
    replication_timeout: float = 1.0
    #: MS+EC: max delay before a propagation batch is flushed.
    ec_batch_interval: float = 0.01
    #: MS+EC: flush immediately once this many ops are buffered.
    ec_batch_max: int = 64
    #: AA+EC: shared-log polling cadence.
    log_fetch_interval: float = 0.01
    #: AA+EC: max entries pulled per poll.
    log_fetch_max: int = 256
    #: AA+SC: DLM lease duration.
    lock_lease: float = 1.0
    #: AA+EC: group-commit window at the shared-log sequencer — writes
    #: accepted while a sequenced batch is in flight accumulate and go
    #: out as one ``log_append_batch`` (1 = a batch per write, i.e. the
    #: pre-batching behavior modulo the one-in-flight ordering).
    group_commit_max: int = 16
    #: MS+SC: max chain writes coalesced into one ``chain_put_batch``
    #: frame per downstream link (at most one frame in flight per link).
    chain_batch_max: int = 16
    #: MS+EC: max ops merged into one coalesced ``replicate`` frame
    #: while the previous frame to that peer is still in flight.
    replicate_batch_max: int = 256

    def __post_init__(self) -> None:
        for name in (
            "heartbeat_interval",
            "failure_timeout",
            "replication_timeout",
            "ec_batch_interval",
            "log_fetch_interval",
            "lock_lease",
        ):
            if getattr(self, name) <= 0:
                raise ConfigError(f"{name} must be positive")
        if self.ec_batch_max < 1 or self.log_fetch_max < 1:
            raise ConfigError("batch sizes must be >= 1")
        if (self.group_commit_max < 1 or self.chain_batch_max < 1
                or self.replicate_batch_max < 1):
            raise ConfigError("batch sizes must be >= 1")


@dataclass
class DeploymentConfig:
    """Parsed deployment file (artifact appendix A-E)."""

    topology: Topology
    consistency: Consistency
    num_replicas: int
    consistency_tech: str = "cr"  # cr | locking | sharedlog | async
    coordinator: str = "coordinator"
    datalet_kinds: List[str] = field(default_factory=lambda: ["ht"])
    extras: Dict[str, object] = field(default_factory=dict)


def load_deployment_config(source: Union[str, Path, Dict[str, object]]) -> DeploymentConfig:
    """Parse a JSON deployment config (path, JSON string, or dict).

    Accepts the artifact's field names::

        {"topology": "ms", "consistency_model": "strong",
         "consistency_tech": "cr", "num_replicas": "2", ...}

    ``num_replicas`` counts replicas *excluding* the master, as the
    artifact documents ("how many replicas excluding the master
    replica"); the returned config stores the total.
    """
    if isinstance(source, dict):
        raw: Dict[str, object] = dict(source)
    else:
        text = Path(source).read_text() if Path(str(source)).exists() else str(source)
        try:
            raw = json.loads(text)
        except json.JSONDecodeError as e:
            raise ConfigError(f"invalid deployment JSON: {e}") from None

    try:
        topology = Topology(str(raw.pop("topology")))
    except (KeyError, ValueError):
        raise ConfigError("deployment config needs topology 'ms' or 'aa'") from None

    model = str(raw.pop("consistency_model", "eventual"))
    try:
        consistency = Consistency(model)
    except ValueError:
        raise ConfigError(f"unknown consistency_model {model!r}") from None

    try:
        extra_replicas = int(str(raw.pop("num_replicas", "2")))
    except ValueError:
        raise ConfigError("num_replicas must be an integer") from None
    if extra_replicas < 0:
        raise ConfigError("num_replicas must be >= 0")

    kinds = raw.pop("datalet_kinds", ["ht"])
    if not isinstance(kinds, list) or not kinds:
        raise ConfigError("datalet_kinds must be a non-empty list")

    return DeploymentConfig(
        topology=topology,
        consistency=consistency,
        num_replicas=extra_replicas + 1,
        consistency_tech=str(raw.pop("consistency_tech", "cr")),
        coordinator=str(raw.pop("zk", raw.pop("coordinator", "coordinator"))),
        datalet_kinds=[str(k) for k in kinds],
        extras=raw,
    )


def parse_datalet_hosts(text: str) -> List[Tuple[str, int, str]]:
    """Parse the artifact's datalet host file: ``ip:port:role`` lines,
    role 0 = master, 1 = slave; ``#`` comments ignored."""
    out: List[Tuple[str, int, str]] = []
    for lineno, line in enumerate(text.splitlines(), 1):
        line = line.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split(":")
        if len(parts) != 3:
            raise ConfigError(f"host file line {lineno}: expected ip:port:role, got {line!r}")
        ip, port_s, role_s = parts
        try:
            port = int(port_s)
        except ValueError:
            raise ConfigError(f"host file line {lineno}: bad port {port_s!r}") from None
        if role_s not in ("0", "1"):
            raise ConfigError(f"host file line {lineno}: role must be 0 or 1, got {role_s!r}")
        out.append((ip, port, "master" if role_s == "0" else "slave"))
    return out
