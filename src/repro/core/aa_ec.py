"""AA+EC controlet: Active-Active topology, Eventual Consistency via a
shared log (paper App C-C, Fig 15c).

Any active accepts any request.  A write is first appended to the
shared log — whose sequencer imposes the global order that plain
gossip (Dynomite) cannot guarantee under conflicting concurrent Puts —
then applied to the local datalet and acked.  Every active polls the
log (``AsyncFetch``) and applies entries written by its peers, skipping
its own.  Reads are local.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.core.controlet import Controlet, Pump
from repro.core.request import Request
from repro.errors import BespoError
from repro.net.message import Message

__all__ = ["AAEventualControlet"]


class AAEventualControlet(Controlet):
    """Shared-log controlet."""

    def __init__(
        self,
        *args,
        sharedlog: str = "sharedlog",
        start_cursor_at_tail: bool = False,
        **kwargs,
    ):
        super().__init__(*args, **kwargs)
        self.sharedlog = sharedlog
        #: next log position to fetch.
        self.cursor = 0
        #: joiners (transition/recovery launches) start replaying at the
        #: current tail: everything older is already in their datalet
        #: (via snapshot) or belongs to the previous service generation.
        self._start_at_tail = start_cursor_at_tail
        self.applied_from_log = 0
        #: replayed batches waiting for the datalet, in log order; see
        #: :meth:`_issue_apply` for why they must be serialized.
        self._applies = Pump(self._issue_apply)
        #: accepted writes waiting for the sequencer, in arrival order;
        #: drained in group-commit batches by :meth:`_pump_orders` with
        #: at most one sequenced batch in flight per controlet.
        self._order_queue: List[Tuple[Request, str, str, Optional[str]]] = []
        self._order_busy = False
        self.group_commits = 0
        self.group_commit_ops = 0
        self._draining: Optional[Dict[str, object]] = None
        self._fetch_armed = False
        self.register("log_sync_pull", self._on_log_sync_pull)

    def on_start(self) -> None:
        super().on_start()
        if self.recovery_source is not None and not self.recovered:
            return  # log_sync_pull installs the cursor, then replay starts
        if self._start_at_tail:
            self._fetch_initial_tail()
        else:
            self._arm_fetch()

    # ------------------------------------------------------------------
    # hole-free recovery (replacement active)
    # ------------------------------------------------------------------
    def _recover(self) -> None:
        self.sync_recover("log_sync_pull")

    def on_sync_state(self, state) -> None:
        # Resume replay from the *source's* cursor (not the log tail):
        # anything its snapshot misses sits at or after that position.
        self.cursor = int(state.get("cursor", 0))
        self._start_at_tail = False
        self._arm_fetch()

    def _on_log_sync_pull(self, msg: Message) -> None:
        """We are the recovery source.  Hand out our replay cursor with
        the snapshot, rewound by one fetch window: an apply_batch we
        fired just before the snapshot request may still be in flight to
        our datalet, and replaying from an earlier position is always
        safe (log order is the authority) while skipping is not."""
        cursor = max(0, self.cursor - self.config.log_fetch_max)

        def with_snap(resp: Optional[Message], err: Optional[BespoError]) -> None:
            if err is not None or resp is None or resp.type != "snapshot":
                self.respond(msg, "error", {"error": f"snapshot failed: {err}"})
                return
            self.respond(msg, "sync_state", {
                "data": resp.payload["data"], "cursor": cursor,
            })

        self.datalet_call("snapshot", {}, callback=with_snap)

    def _fetch_initial_tail(self) -> None:
        self.call(
            self.sharedlog,
            "log_fetch",
            {"pos": 1 << 62, "max": 1},
            callback=self._on_initial_tail,
            timeout=self.config.replication_timeout,
        )

    def _on_initial_tail(self, resp: Optional[Message], err: Optional[BespoError]) -> None:
        if resp is not None and resp.type == "entries":
            self.cursor = resp.payload["tail"]
            self._start_at_tail = False
            self._arm_fetch()
        else:  # log unreachable; retry shortly
            self.set_timer(self.config.replication_timeout, self._fetch_initial_tail)

    def _arm_fetch(self) -> None:
        if self._fetch_armed:
            return
        self._fetch_armed = True
        self.set_timer(self.config.log_fetch_interval, self._fetch_tick)

    def on_shard_changed(self) -> None:
        # A restarted node unfences through here: make sure the replay
        # loop (which stops while retired) is running again.
        if not self.retired and self.recovered and not self._start_at_tail:
            self._arm_fetch()

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------
    def handle_put(self, msg: Message) -> None:
        self._accept_write(msg, "put")

    def handle_del(self, msg: Message) -> None:
        self._accept_write(msg, "del")

    def _accept_write(self, msg: Message, op: str) -> None:
        key = msg.payload["key"]
        val = msg.payload.get("val")
        # Local gate catches a retry re-entering at this active; the
        # sequencer's own rid→pos dedup catches retries that were routed
        # to a *different* active (sharedlog/log.py).
        req = self.begin_write(msg, op)
        if req is None:
            return
        # Group commit: writes arriving while a sequenced batch is in
        # flight accumulate here and go out together, amortizing the
        # sequencer round-trip (one ``log_append_batch`` instead of N
        # ``log_append``s) without changing arrival order.
        self._order_queue.append((req, op, key, val))
        self._pump_orders()

    def _pump_orders(self) -> None:
        """At most one sequenced batch in flight per controlet.

        One-in-flight is what preserves per-key FIFO for writes accepted
        at the same active: batch N is fully sequenced before batch N+1
        leaves, so the log order of two same-key writes matches their
        arrival order here (the PR 7 pump pattern, applied to ordering
        round-trips instead of datalet applies)."""
        if self._order_busy or not self._order_queue:
            return
        self._order_busy = True
        take = max(1, self.config.group_commit_max)
        batch = self._order_queue[:take]
        del self._order_queue[:take]
        entries = []
        for req, op, key, val in batch:
            entry = {"op": op, "key": key, "val": val}
            if req.rid is not None:
                entry["rid"] = req.rid
            entries.append(entry)
        self.group_commits += 1
        self.group_commit_ops += len(batch)
        if self._metrics is not None:
            self._metrics.histogram("batch.group_commit_size").observe(len(batch))

        def on_appended(resp: Optional[Message], err: Optional[BespoError]) -> None:
            self._order_busy = False
            if err is not None or resp is None or resp.type != "appended_batch":
                self.stats["errors"] += len(batch)
                for req, _op, _key, _val in batch:
                    req.fail(f"shared log append failed: {err}")
                self._pump_orders()
                return
            results = resp.payload["results"]
            fresh: List[Tuple[Request, str]] = []
            ops = []
            for (req, op, key, val), r in zip(batch, results):
                if r.get("dup"):
                    # The sequencer has this rid already: the original
                    # attempt owns the log slot and replay delivers the
                    # value.  Do NOT apply locally — a late second apply
                    # here could overwrite newer replayed state on this
                    # replica only, diverging it from its peers.
                    req.ack()
                    continue
                if r.get("wrong_shard"):
                    # Sequencer reshard backstop: our ring view is stale
                    # for this (moved) key — the entry was *not*
                    # sequenced.  Surface it so the client refreshes and
                    # re-routes; nothing to apply locally.
                    self.stats["errors"] += 1
                    req.fail("wrong_shard")
                    continue
                fresh.append((req, op))
                ops.append({"op": op, "key": key, "val": val})
            if not fresh:
                self._pump_orders()
                return

            def after_local(dresp: Optional[Message], derr: Optional[BespoError]) -> None:
                if derr is not None or dresp is None or dresp.type == "error":
                    self.stats["errors"] += len(fresh)
                    for req, _op in fresh:
                        req.fail(f"local apply failed: {derr}")
                else:
                    # apply_batch tolerates deletes of absent keys (our
                    # replica may simply not have replayed the put yet;
                    # the log entry *is* the delete), so every member is
                    # applied-or-moot here: ack them all.
                    for req, _op in fresh:
                        req.ack()
                self._pump_orders()

            # One ordered apply_batch for the whole group: same
            # serialization the replay path uses, so accept-time applies
            # cannot interleave out of log order on a multi-slot CPU.
            self.datalet_call("apply_batch", {"ops": ops}, callback=after_local)

        self.call(
            self.sharedlog,
            "log_append_batch",
            # the ring generation rides along so the sequencer can fence
            # stale-routed writes during a reshard window
            {"entries": entries, "gen": self._ring_gen},
            callback=on_appended,
            timeout=self.config.replication_timeout,
        )

    # ------------------------------------------------------------------
    # resharding: log-ordered migration
    # ------------------------------------------------------------------
    def _migrate_barrier(self, then) -> None:
        """Reshard census barrier: drain our accepted-but-unsequenced
        writes, then replay our own log up to its current tail — after
        that the local engine holds every write sequenced before the
        window opened, so the census (and the per-key copies) read
        authoritative values.  Writes sequenced *during* the window are
        covered by the destination sequencer's dirty marks instead."""

        def orders_drained() -> None:
            def on_tail(resp: Optional[Message], err: Optional[BespoError]) -> None:
                if resp is None or resp.type != "entries":
                    # log briefly unreachable: the barrier must land
                    self.set_timer(self.config.replication_timeout, orders_drained)
                    return
                target = int(resp.payload["tail"])

                def wait_replay() -> None:
                    if self.cursor >= target:
                        then()
                    else:
                        self.set_timer(0.05, wait_replay)

                wait_replay()

            self.call(
                self.sharedlog,
                "log_fetch",
                {"pos": self.cursor, "max": 1},
                callback=on_tail,
                timeout=self.config.replication_timeout,
            )

        def poll_orders() -> None:
            if self._order_busy or self._order_queue:
                self.set_timer(0.05, poll_orders)
                return
            orders_drained()

        poll_orders()

    def _migrate_copy(self, key, complete) -> None:
        """Copy one moved key by appending it to the *destination*
        shard's log (deployment naming convention: one sequencer per
        shard).  The destination's sequencer is the ordering authority:
        it refuses the copy (``skipped``) when a client write for the
        key was sequenced during the window, and a clean copy enters the
        log as a plain put entry — replaying replicas (and the hybrid's
        slaves) need no special casing."""
        desc = self._reshard
        if desc is None or self._ring is None:
            complete("skipped")
            return
        dest_log = f"sharedlog.{self._ring.lookup(key)}"

        def have(r2: Optional[Message], e2: Optional[BespoError]) -> None:
            if e2 is not None or r2 is None:
                complete("retry")
                return
            if r2.type != "value":
                complete("skipped")  # deleted at the source
                return

            def acked(r3: Optional[Message], e3: Optional[BespoError]) -> None:
                if e3 is not None or r3 is None or r3.type != "appended":
                    complete("retry")
                    return
                complete("skipped" if r3.payload.get("skipped") else "moved")

            self.call(
                dest_log,
                "log_append",
                {
                    "op": "put",
                    "key": key,
                    "val": r2.payload["val"],
                    "rid": f"mig.g{desc['gen']}.{key}",
                    "mig": True,
                    "gen": desc["gen"],
                },
                callback=acked,
                timeout=self.config.replication_timeout,
            )

        self.datalet_call("get", {"key": key}, callback=have)

    # ------------------------------------------------------------------
    # log replay
    # ------------------------------------------------------------------
    def _fetch_tick(self) -> None:
        self._fetch_armed = False
        if self.retired:
            return

        def on_entries(resp: Optional[Message], err: Optional[BespoError]) -> None:
            if resp is not None and resp.type == "entries":
                self._apply_entries(resp.payload["entries"])
                tail = resp.payload["tail"]
                drain = self._draining
                if drain is not None and self.cursor >= drain["target"]:
                    self._draining = None
                    drain["done"]()  # type: ignore[operator]
                # keep pulling immediately if we are behind
                if self.cursor < tail:
                    self._fetch_tick()
                    return
            self._arm_fetch()

        self.call(
            self.sharedlog,
            "log_fetch",
            {"pos": self.cursor, "max": self.config.log_fetch_max},
            callback=on_entries,
            timeout=self.config.replication_timeout,
        )

    def _apply_entries(self, entries) -> None:
        # Replay *everything* in log order — including our own writes,
        # which we already applied once at accept time.  The log's total
        # order is the authority: skipping own entries would let a
        # peer's older write overwrite our newer one during replay and
        # the replicas would never converge.  One ordered apply_batch
        # per fetch so network jitter cannot reorder entries.
        ops = []
        for d in entries:
            pos = int(d["pos"])
            if pos < self.cursor:
                continue
            self.cursor = pos + 1
            ops.append({"op": d["op"], "key": d["key"], "val": d["value"]})
        if ops:
            self.applied_from_log += len(ops)
            self._applies.push(ops)

    def _issue_apply(self, ops: list, done: Callable[[], None]) -> None:
        """At most one replay apply_batch in flight to the datalet.

        Fire-and-forget sends are not enough: the host CPU is a
        multi-slot server, so a small batch chasing a large one (exactly
        the shape a recovering node's catch-up produces — one big
        backlog batch, then the fresh tail) can finish service first and
        apply log entries out of order, permanently diverging this
        replica.  Found by the rolling-restart chaos schedule; the
        one-in-flight discipline lives in :class:`Pump`."""

        def applied(resp: Optional[Message], err: Optional[BespoError]) -> None:
            done()

        self.datalet_call("apply_batch", {"ops": ops}, callback=applied)

    # ------------------------------------------------------------------
    # transition support
    # ------------------------------------------------------------------
    def prepare_retirement(self, done) -> None:
        """Drain: hand over only after we have replayed the log up to
        its tail as of the transition start (paper §V-B: the new master
        takes the in-flight Puts from the Shared Log)."""

        def on_tail(resp: Optional[Message], err: Optional[BespoError]) -> None:
            if resp is None or resp.type != "entries":
                done()  # log unreachable; nothing more we can replay
                return
            target = resp.payload["tail"]
            if self.cursor >= target:
                done()
            else:
                self._draining = {"target": target, "done": done}

        self.call(
            self.sharedlog,
            "log_fetch",
            {"pos": self.cursor, "max": 1},
            callback=on_tail,
            timeout=self.config.replication_timeout,
        )

    def _batch_metrics(self):
        ops = self.group_commit_ops
        return {
            "group_commits": float(self.group_commits),
            "group_commit_ops": float(ops),
            # >1.0 means the sequencer round-trip is being amortized
            "coalesce_ratio": (
                ops / self.group_commits if self.group_commits else 0.0
            ),
        }

    # ------------------------------------------------------------------
    # model-checker introspection
    # ------------------------------------------------------------------
    def snapshot_state(self):
        s = super().snapshot_state()
        s.update({
            "cursor": self.cursor,
            "start_at_tail": self._start_at_tail,
            "fetch_armed": self._fetch_armed,
            "draining": self._draining is not None,
            "apply_queue": len(self._applies.queue),
            "apply_busy": self._applies.busy,
            "order_queue": len(self._order_queue),
            "order_busy": self._order_busy,
        })
        return s
