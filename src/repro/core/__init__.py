"""BESPOKV control plane: controlets, cluster types, configuration.

The four pre-built controlets cover the topology x consistency matrix
of paper §IV; new combinations are subclasses of
:class:`~repro.core.controlet.Controlet` (see the hybrid topologies in
:mod:`repro.core.hybrid`).
"""

from repro.core.aa_ec import AAEventualControlet
from repro.core.aa_sc import AAStrongControlet
from repro.core.config import ControlConfig, DeploymentConfig, load_deployment_config
from repro.core.controlet import Controlet
from repro.core.ms_ec import MSEventualControlet
from repro.core.ms_sc import MSStrongControlet
from repro.core.range_query import RangeQueryControlet
from repro.core.types import ClusterMap, Consistency, Replica, ShardInfo, Topology

__all__ = [
    "Controlet",
    "MSStrongControlet",
    "MSEventualControlet",
    "AAStrongControlet",
    "AAEventualControlet",
    "RangeQueryControlet",
    "ControlConfig",
    "DeploymentConfig",
    "load_deployment_config",
    "ClusterMap",
    "ShardInfo",
    "Replica",
    "Topology",
    "Consistency",
]
