"""Range-query service controlet (paper §IV-B).

"The controlet divides a client request into sub-requests and forwards
the sub-range query requests to corresponding datalets that store the
specified range."

:class:`RangeQueryControlet` extends MS+EC with a ``get_range`` API:
any controlet accepts a full-keyspace range query, consults its cached
cluster map (range-partitioned, refreshed from the coordinator), fans
clipped sub-scans out to the covering shards, merges the sorted
results and answers — so clients need no partitioning knowledge at all
for scans (the client-side alternative lives in
:meth:`repro.client.kv.KVClient.scan`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.ms_ec import MSEventualControlet
from repro.core.types import ClusterMap
from repro.errors import BespoError
from repro.hashing import RangePartitioner
from repro.net.message import Message

__all__ = ["RangeQueryControlet"]


class RangeQueryControlet(MSEventualControlet):
    """MS+EC controlet + cross-shard ``get_range``."""

    #: cluster-map refresh cadence (epoch changes invalidate routing).
    MAP_REFRESH = 1.0

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._cluster_map: Optional[ClusterMap] = None
        self._partitioner: Optional[RangePartitioner] = None
        self.range_queries = 0
        self.register("get_range", self._on_get_range)

    def on_start(self) -> None:
        super().on_start()
        self._refresh_map()

    # ------------------------------------------------------------------
    def _refresh_map(self) -> None:
        def on_map(resp: Optional[Message], err: Optional[BespoError]) -> None:
            if resp is not None and resp.type == "cluster_map":
                cmap = ClusterMap.from_dict(resp.payload["map"])
                if self._cluster_map is None or cmap.epoch != self._cluster_map.epoch:
                    self._cluster_map = cmap
                    self._partitioner = RangePartitioner.uniform_alpha(cmap.shard_ids())
            self.set_timer(self.MAP_REFRESH, self._refresh_map)

        self.call(self.coordinator, "get_cluster_map", {}, callback=on_map,
                  timeout=self.config.replication_timeout)

    # ------------------------------------------------------------------
    def _on_get_range(self, msg: Message) -> None:
        if self.retired:
            self.respond(msg, "error", {"error": "retired"})
            return
        if self._cluster_map is None or self._partitioner is None:
            self.respond(msg, "error", {"error": "cluster map not yet available"})
            return
        self.range_queries += 1
        start = msg.payload["start"]
        end = msg.payload["end"]
        limit = msg.payload.get("limit")
        covering = self._partitioner.covering(start, end)
        if not covering:
            self.respond(msg, "range", {"items": []})
            return

        chunks: Dict[str, List[Tuple[str, str]]] = {}
        remaining = {"n": len(covering)}
        failed = {"err": None}

        def finish() -> None:
            if failed["err"] is not None:
                self.respond(msg, "error", {"error": str(failed["err"])})
                return
            merged = sorted(
                (tuple(item) for chunk in chunks.values() for item in chunk)
            )
            if limit is not None:
                merged = merged[:limit]
            self.respond(msg, "range", {"items": merged})

        for sid, (lo, hi) in covering.items():
            shard = self._cluster_map.shard(sid)
            # sub-scan served by the covering shard's tail controlet
            # (any replica under EC; the tail is always valid)
            target = shard.tail.controlet

            def on_chunk(resp: Optional[Message], err: Optional[BespoError],
                         sid=sid) -> None:
                if err is not None or resp is None or resp.type == "error":
                    failed["err"] = err or BespoError(str(resp.payload if resp else "?"))
                else:
                    chunks[sid] = resp.payload["items"]
                remaining["n"] -= 1
                if remaining["n"] == 0:
                    finish()

            self.call(
                target,
                "scan",
                {"start": lo, "end": hi, "limit": limit},
                callback=on_chunk,
                timeout=self.config.replication_timeout * 2,
            )
