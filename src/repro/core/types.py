"""Cluster metadata types shared by coordinator, controlets and clients.

A deployment is a set of **shards**; each shard is a chain/group of
**replicas**; each replica is a (controlet, datalet, host) triple.  The
whole map carries an **epoch** bumped on every reconfiguration so that
stale clients can detect and refresh their cached topology — the paper's
"clients ... periodically retrieve configuration updates".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ConfigError

__all__ = ["Topology", "Consistency", "Replica", "ShardInfo", "ClusterMap"]


class Topology(str, enum.Enum):
    """Cluster topology (paper Fig 1, §IV)."""

    MS = "ms"  # Master-Slave
    AA = "aa"  # Active-Active (multi-master)


class Consistency(str, enum.Enum):
    """Consistency model (paper §IV)."""

    STRONG = "strong"
    EVENTUAL = "eventual"


@dataclass
class Replica:
    """One controlet-datalet pair within a shard.

    ``chain_pos`` orders the chain for MS (0 = head/master); AA replicas
    are all position-less peers but keep their index for determinism.
    """

    controlet: str
    datalet: str
    host: str
    chain_pos: int = 0
    #: engine kind backing the datalet — lets clients doing polyglot
    #: persistence (§IV-D) pick the replica best suited to a workload.
    datalet_kind: str = "ht"

    def to_dict(self) -> Dict[str, object]:
        return {
            "controlet": self.controlet,
            "datalet": self.datalet,
            "host": self.host,
            "chain_pos": self.chain_pos,
            "datalet_kind": self.datalet_kind,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "Replica":
        return cls(
            str(d["controlet"]),
            str(d["datalet"]),
            str(d["host"]),
            int(d["chain_pos"]),  # type: ignore[arg-type]
            str(d.get("datalet_kind", "ht")),
        )


@dataclass
class ShardInfo:
    """Replica group serving one partition of the keyspace."""

    shard_id: str
    topology: Topology
    consistency: Consistency
    replicas: List[Replica] = field(default_factory=list)

    def __post_init__(self) -> None:
        if isinstance(self.topology, str):
            self.topology = Topology(self.topology)
        if isinstance(self.consistency, str):
            self.consistency = Consistency(self.consistency)

    # -- role helpers ------------------------------------------------------
    def ordered(self) -> List[Replica]:
        return sorted(self.replicas, key=lambda r: r.chain_pos)

    @property
    def head(self) -> Replica:
        """Master (MS) / chain head (MS+SC)."""
        if not self.replicas:
            raise ConfigError(f"shard {self.shard_id} has no replicas")
        return self.ordered()[0]

    @property
    def tail(self) -> Replica:
        if not self.replicas:
            raise ConfigError(f"shard {self.shard_id} has no replicas")
        return self.ordered()[-1]

    def successor(self, controlet: str) -> Optional[Replica]:
        """Next replica in chain order after ``controlet`` (None at tail)."""
        chain = self.ordered()
        for i, r in enumerate(chain):
            if r.controlet == controlet:
                return chain[i + 1] if i + 1 < len(chain) else None
        raise ConfigError(f"controlet {controlet!r} not in shard {self.shard_id}")

    def replica_of(self, controlet: str) -> Replica:
        for r in self.replicas:
            if r.controlet == controlet:
                return r
        raise ConfigError(f"controlet {controlet!r} not in shard {self.shard_id}")

    def remove_replica(self, controlet: str) -> Replica:
        r = self.replica_of(controlet)
        self.replicas.remove(r)
        return r

    def controlets(self) -> List[str]:
        return [r.controlet for r in self.ordered()]

    def to_dict(self) -> Dict[str, object]:
        return {
            "shard_id": self.shard_id,
            "topology": self.topology.value,
            "consistency": self.consistency.value,
            "replicas": [r.to_dict() for r in self.ordered()],
        }

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "ShardInfo":
        return cls(
            shard_id=str(d["shard_id"]),
            topology=Topology(d["topology"]),
            consistency=Consistency(d["consistency"]),
            replicas=[Replica.from_dict(r) for r in d["replicas"]],  # type: ignore[union-attr]
        )


@dataclass
class ClusterMap:
    """Full routing state, versioned by ``epoch``."""

    shards: Dict[str, ShardInfo] = field(default_factory=dict)
    epoch: int = 0
    #: shards running below their target replica count because no
    #: standby host was available to spawn a replacement.  They keep
    #: serving (possibly with reduced fault tolerance); the flag lets
    #: operators and the harness see the exposure.
    degraded: set = field(default_factory=set)

    def bump(self) -> None:
        self.epoch += 1

    def shard(self, shard_id: str) -> ShardInfo:
        try:
            return self.shards[shard_id]
        except KeyError:
            raise ConfigError(f"unknown shard {shard_id!r}") from None

    def shard_ids(self) -> List[str]:
        return sorted(self.shards)

    def to_dict(self) -> Dict[str, object]:
        return {
            "epoch": self.epoch,
            "shards": {sid: s.to_dict() for sid, s in self.shards.items()},
            "degraded": sorted(self.degraded),
        }

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "ClusterMap":
        return cls(
            epoch=int(d["epoch"]),  # type: ignore[arg-type]
            shards={
                sid: ShardInfo.from_dict(s)  # type: ignore[arg-type]
                for sid, s in d["shards"].items()  # type: ignore[union-attr]
            },
            degraded=set(d.get("degraded", [])),  # type: ignore[arg-type]
        )
