"""Deterministic discrete-event simulation kernel.

The kernel is the substrate every scale-out experiment in this repo runs
on.  It provides:

* a virtual clock (:attr:`Simulator.now`) that advances only when events
  fire — simulating a 48-node cluster for 30 virtual seconds takes
  milliseconds of wall time and is bit-for-bit reproducible for a fixed
  seed;
* a priority event queue with stable FIFO ordering for simultaneous
  events (ties broken by insertion sequence, never by callback identity,
  which would be nondeterministic);
* lightweight *processes*: plain Python generators that ``yield`` either
  a float (sleep for that many virtual seconds) or a :class:`SimFuture`
  (park until the future resolves).

Design notes
------------
Protocol code (controlets, datalets, coordinator) is written in the
paper's event-handler style and therefore runs as plain callbacks; the
generator-process facility exists mainly for closed-loop load clients
and test drivers, which read much more naturally as sequential code.

The kernel deliberately has **no global state**: every experiment builds
its own :class:`Simulator`, so pytest can run hundreds of simulations in
one process without cross-talk.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, Optional

from repro.errors import SimulationError

__all__ = ["Simulator", "SimFuture", "TimerHandle", "Process"]


class _TracerChain:
    """Fan-out wrapper so several tracers (race detector, sanitizer,
    model-checker bookkeeping) can observe the same kernel."""

    __slots__ = ("tracers",)

    def __init__(self, *tracers: Any):
        self.tracers = list(tracers)

    def begin_event(self, time: float, seq: int) -> None:
        for t in self.tracers:
            t.begin_event(time, seq)

    def end_event(self) -> None:
        for t in self.tracers:
            t.end_event()


class _Event:
    """Payload of one heap entry.

    The heap itself stores ``(time, seq, event)`` tuples so ordering is
    decided by C-level tuple comparison — ``seq`` is unique, so the
    comparison never falls through to the event object.  (An earlier
    design gave ``_Event`` a Python ``__lt__`` and heaped the objects
    directly; at saturation that one method dominated kernel profiles.)
    """

    __slots__ = ("time", "seq", "fn", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable[[], None]):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.cancelled = False


class TimerHandle:
    """Cancellable handle returned by :meth:`Simulator.call_later`."""

    __slots__ = ("_event",)

    def __init__(self, event: _Event):
        self._event = event

    def cancel(self) -> None:
        """Prevent the timer from firing.  Idempotent."""
        self._event.cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def when(self) -> float:
        return self._event.time


class SimFuture:
    """A single-assignment cell that processes can wait on.

    Mirrors the small subset of ``asyncio.Future`` the codebase needs:
    ``set_result``/``set_exception`` fire registered callbacks exactly
    once; late ``add_done_callback`` registrations fire immediately.
    """

    __slots__ = ("_sim", "_done", "_result", "_exception", "_callbacks")

    def __init__(self, sim: "Simulator"):
        self._sim = sim
        self._done = False
        self._result: Any = None
        self._exception: Optional[BaseException] = None
        self._callbacks: list[Callable[["SimFuture"], None]] = []

    @property
    def done(self) -> bool:
        return self._done

    def result(self) -> Any:
        if not self._done:
            raise SimulationError("SimFuture.result() called before completion")
        if self._exception is not None:
            raise self._exception
        return self._result

    def exception(self) -> Optional[BaseException]:
        if not self._done:
            raise SimulationError("SimFuture.exception() called before completion")
        return self._exception

    def set_result(self, value: Any = None) -> None:
        self._finish(result=value)

    def set_exception(self, exc: BaseException) -> None:
        self._finish(exception=exc)

    def _finish(self, result: Any = None, exception: Optional[BaseException] = None) -> None:
        if self._done:
            raise SimulationError("SimFuture completed twice")
        self._done = True
        self._result = result
        self._exception = exception
        callbacks, self._callbacks = self._callbacks, []
        # Callbacks run inline: every protocol chain in this codebase is
        # broken up by network/timer events (call_later), so recursion
        # depth stays shallow, and skipping a heap round-trip per
        # completion roughly halves saturated-simulation wall time.
        for cb in callbacks:
            cb(self)

    def add_done_callback(self, cb: Callable[["SimFuture"], None]) -> None:
        if self._done:
            cb(self)
        else:
            self._callbacks.append(cb)


#: A simulation process: a generator that yields sleeps (float) or futures.
Process = Generator[Any, Any, Any]


class Simulator:
    """Event loop with a virtual clock.

    Typical driver::

        sim = Simulator()
        sim.spawn(client_loop(...))          # generator process
        sim.call_later(20.0, inject_failure)
        sim.run_until(40.0)
    """

    def __init__(self, tie_break: str = "fifo") -> None:
        if tie_break not in ("fifo", "lifo"):
            raise SimulationError(f"tie_break must be 'fifo' or 'lifo', got {tie_break!r}")
        self._now = 0.0
        self._heap: list[tuple[float, int, _Event]] = []
        self._seq = itertools.count(1)
        # "lifo" negates the insertion sequence so simultaneous events
        # pop in reverse order — a legal-but-different schedule used by
        # the race detector's perturbation re-runs.  Event *times* are
        # untouched; only ties flip.
        self._tie_sign = 1 if tie_break == "fifo" else -1
        self._stopped = False
        #: number of events executed — useful for kernel regression tests
        self.events_processed = 0
        #: optional event tracer (e.g. ``repro.analysis.races.RaceDetector``):
        #: an object with ``begin_event(time, seq)`` / ``end_event()``
        #: called around every event callback.  ``None`` costs one branch
        #: per event.
        self.tracer: Optional[Any] = None

    # ------------------------------------------------------------------
    # clock & scheduling
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def add_tracer(self, tracer: Any) -> None:
        """Attach an event tracer without displacing an existing one.

        Multiple observers (race detector + sanitizer + model checker)
        are fanned out through a :class:`_TracerChain`; assigning
        :attr:`tracer` directly stays supported for single-observer use.
        """
        if self.tracer is None:
            self.tracer = tracer
        elif isinstance(self.tracer, _TracerChain):
            self.tracer.tracers.append(tracer)
        else:
            self.tracer = _TracerChain(self.tracer, tracer)

    def call_later(self, delay: float, fn: Callable[..., None], *args: Any) -> TimerHandle:
        """Schedule ``fn(*args)`` after ``delay`` virtual seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        if args:
            inner = fn
            fn = lambda: inner(*args)  # noqa: E731 - hot path, no functools
            label = getattr(inner, "timer_label", None)
            if label is not None:
                fn.timer_label = label  # type: ignore[attr-defined]
        ev = _Event(self._now + delay, self._tie_sign * next(self._seq), fn)
        heapq.heappush(self._heap, (ev.time, ev.seq, ev))
        return TimerHandle(ev)

    def call_at(self, when: float, fn: Callable[..., None], *args: Any) -> TimerHandle:
        """Schedule ``fn(*args)`` at absolute virtual time ``when``."""
        if when < self._now:
            raise SimulationError(f"call_at in the past: {when} < {self._now}")
        return self.call_later(when - self._now, fn, *args)

    def call_soon(self, fn: Callable[..., None], *args: Any) -> TimerHandle:
        """Schedule ``fn(*args)`` at the current time (after pending events)."""
        return self.call_later(0.0, fn, *args)

    # ------------------------------------------------------------------
    # futures & processes
    # ------------------------------------------------------------------
    def create_future(self) -> SimFuture:
        return SimFuture(self)

    def spawn(self, gen: Process) -> SimFuture:
        """Run a generator as a process; returns a future for its result.

        The generator may yield:

        * ``float``/``int`` — sleep that many virtual seconds;
        * :class:`SimFuture` — park until it resolves; the future's result
          is sent back into the generator (exceptions are thrown in).
        """
        done = self.create_future()
        self.call_soon(self._step, gen, None, None, done)
        return done

    def _step(
        self,
        gen: Process,
        value: Any,
        exc: Optional[BaseException],
        done: SimFuture,
    ) -> None:
        try:
            if exc is not None:
                yielded = gen.throw(exc)
            else:
                yielded = gen.send(value)
        except StopIteration as stop:
            done.set_result(stop.value)
            return
        except BaseException as e:  # propagate process crash to awaiter
            done.set_exception(e)
            return

        if isinstance(yielded, SimFuture):
            def resume(fut: SimFuture, _gen=gen, _done=done) -> None:
                err = fut.exception()
                if err is not None:
                    self._step(_gen, None, err, _done)
                else:
                    self._step(_gen, fut._result, None, _done)

            if yielded.done:
                # Yielding an already-resolved future must not resume
                # inline: a process looping over completed futures would
                # otherwise recurse one stack frame per iteration.
                self.call_soon(resume, yielded)
            else:
                yielded.add_done_callback(resume)
        elif isinstance(yielded, (int, float)):
            self.call_later(float(yielded), self._step, gen, None, None, done)
        else:
            self._step(
                gen, None, SimulationError(f"process yielded {type(yielded).__name__}"), done
            )

    def gather(self, futures: Iterable[SimFuture]) -> SimFuture:
        """Future that resolves with a list of results once all inputs do."""
        futures = list(futures)
        out = self.create_future()
        if not futures:
            out.set_result([])
            return out
        remaining = {"n": len(futures)}
        results: list[Any] = [None] * len(futures)

        def on_done(idx: int, fut: SimFuture) -> None:
            if out.done:
                return
            err = fut.exception()
            if err is not None:
                out.set_exception(err)
                return
            results[idx] = fut._result
            remaining["n"] -= 1
            if remaining["n"] == 0:
                out.set_result(results)

        for i, f in enumerate(futures):
            f.add_done_callback(lambda fut, i=i: on_done(i, fut))
        return out

    def sleep(self, delay: float) -> SimFuture:
        """Future that resolves after ``delay`` seconds (for process code)."""
        fut = self.create_future()
        self.call_later(delay, fut.set_result, None)
        return fut

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _execute(self, ev: _Event) -> None:
        tracer = self.tracer
        if tracer is None:
            ev.fn()
        else:
            tracer.begin_event(ev.time, ev.seq)
            try:
                ev.fn()
            finally:
                tracer.end_event()
        self.events_processed += 1

    def stop(self) -> None:
        """Make the current :meth:`run`/:meth:`run_until` return."""
        self._stopped = True

    def step_one(self) -> Optional[float]:
        """Execute exactly the earliest pending event (skipping cancelled
        entries) and return its firing time, or ``None`` if the heap is
        empty.  This is the model checker's "advance time" transition:
        timers fire one at a time, in deterministic deadline order, so
        the explorer controls how far the clock moves between message
        deliveries."""
        while self._heap:
            ev = heapq.heappop(self._heap)[2]
            if ev.cancelled:
                continue
            self._now = ev.time
            self._execute(ev)
            return ev.time
        return None

    def armed_events(self) -> list[tuple[float, str]]:
        """Live heap entries as ``(time, label)`` in firing order —
        introspection for model-checker state fingerprints.  Labels come
        from ``timer_label``/``__qualname__`` of the callbacks, which is
        what makes two runs' timer sets comparable."""
        out = []
        for _t, _s, ev in sorted(self._heap):
            if ev.cancelled:
                continue
            label = getattr(ev.fn, "timer_label", None) or getattr(
                ev.fn, "__qualname__", type(ev.fn).__name__
            )
            out.append((ev.time, str(label)))
        return out

    def run_until(self, deadline: float) -> None:
        """Execute events until the clock would pass ``deadline``.

        The clock is left exactly at ``deadline`` so that back-to-back
        ``run_until`` calls tile the timeline without gaps.
        """
        self._stopped = False
        heap = self._heap
        pop = heapq.heappop
        execute = self._execute
        while heap and not self._stopped:
            if heap[0][0] > deadline:
                break
            ev = pop(heap)[2]
            if ev.cancelled:
                continue
            self._now = ev.time
            execute(ev)
        if not self._stopped:
            self._now = max(self._now, deadline)

    def run(self, until: Optional[float] = None) -> None:
        """Run to quiescence, or to ``until`` if given."""
        if until is not None:
            self.run_until(until)
            return
        self._stopped = False
        heap = self._heap
        pop = heapq.heappop
        execute = self._execute
        while heap and not self._stopped:
            ev = pop(heap)[2]
            if ev.cancelled:
                continue
            self._now = ev.time
            execute(ev)

    def run_future(self, fut: SimFuture, timeout: Optional[float] = None) -> Any:
        """Drive the simulation until ``fut`` resolves and return its result.

        Convenience for tests: ``sim.run_future(sim.spawn(proc()))``.
        """
        deadline = None if timeout is None else self._now + timeout
        heap = self._heap
        pop = heapq.heappop
        execute = self._execute
        while not fut.done:
            if not heap:
                raise SimulationError("simulation quiesced before future resolved")
            entry = pop(heap)
            ev = entry[2]
            if ev.cancelled:
                continue
            if deadline is not None and ev.time > deadline:
                heapq.heappush(heap, entry)
                raise SimulationError(f"future unresolved after {timeout}s of sim time")
            self._now = ev.time
            execute(ev)
        return fut.result()
