"""Network model for the simulated cluster.

Message delivery time between two nodes is::

    one_way_latency + nbytes / bandwidth + jitter

with jitter drawn from a named RNG stream so runs are reproducible.
The model also supports *failing* nodes (all traffic to/from a dead node
is silently dropped, exactly what a crashed process looks like to the
rest of the cluster) and *partitions* (pairwise drop sets), which the
failover experiments (Fig 16) and tests use.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Set, Tuple

from repro.sim.kernel import Simulator
from repro.sim.rng import RngRegistry

__all__ = ["Network", "NetworkParams"]


class NetworkParams:
    """Tunable constants for one network fabric.

    Defaults approximate the paper's GCE setup (1 Gbps, ~100 us one-way
    in-zone latency).  The DPDK experiment swaps in a low-latency
    parameter set (see :mod:`repro.net.dpdk`).
    """

    def __init__(
        self,
        one_way_latency: float = 100e-6,
        bandwidth: float = 125e6,  # 1 Gbps in bytes/sec
        jitter_frac: float = 0.1,
        loopback_latency: float = 5e-6,
        loss_rate: float = 0.0,
        duplicate_rate: float = 0.0,
        reorder_rate: float = 0.0,
        reorder_delay: float = 20e-3,
        latency_spike_factor: float = 10.0,
    ):
        for rate_name, rate in (
            ("loss_rate", loss_rate),
            ("duplicate_rate", duplicate_rate),
            ("reorder_rate", reorder_rate),
        ):
            if not 0.0 <= rate < 1.0:
                raise ValueError(f"{rate_name} must be in [0, 1), got {rate}")
        if reorder_delay <= 0.0:
            raise ValueError(f"reorder_delay must be positive, got {reorder_delay}")
        if latency_spike_factor < 1.0:
            raise ValueError(
                f"latency_spike_factor must be >= 1, got {latency_spike_factor}"
            )
        self.one_way_latency = one_way_latency
        self.bandwidth = bandwidth
        self.jitter_frac = jitter_frac
        self.loopback_latency = loopback_latency
        #: fraction of non-loopback messages silently dropped — chaos
        #: injection for robustness tests (timeouts, retries and
        #: anti-entropy must absorb it).
        self.loss_rate = loss_rate
        #: fraction of non-loopback messages delivered *twice* (the
        #: second copy after an extra reorder_delay) — receivers dedup
        #: by message id, as a TCP stack would, but still pay the CPU.
        self.duplicate_rate = duplicate_rate
        #: fraction of non-loopback messages held back by up to
        #: ``reorder_delay`` so they overtake each other in flight.
        self.reorder_rate = reorder_rate
        self.reorder_delay = reorder_delay
        #: default multiplier a ``latency_spike`` fault applies to a
        #: link's base latency (must dwarf jitter, stay below timeouts).
        self.latency_spike_factor = latency_spike_factor


class Network:
    """Delivers payloads between named nodes with modeled delay."""

    def __init__(
        self,
        sim: Simulator,
        params: Optional[NetworkParams] = None,
        rng: Optional[RngRegistry] = None,
    ):
        self.sim = sim
        self.params = params or NetworkParams()
        self._rng = (rng or RngRegistry(0)).stream("network.jitter")
        self._dead: Set[str] = set()
        self._cut: Set[Tuple[str, str]] = set()
        #: per-directed-link latency multipliers (latency_spike faults).
        self._link_factor: Dict[Tuple[str, str], float] = {}
        #: per-node latency multipliers (applied to all its traffic).
        self._node_factor: Dict[str, float] = {}
        # stats
        self.messages_sent = 0
        self.messages_dropped = 0
        self.messages_duplicated = 0
        self.messages_reordered = 0
        self.bytes_sent = 0

    # -- failure control -------------------------------------------------
    def kill(self, node: str) -> None:
        """Drop all future traffic to and from ``node``."""
        self._dead.add(node)

    def revive(self, node: str) -> None:
        self._dead.discard(node)

    def is_dead(self, node: str) -> bool:
        return node in self._dead

    def cut_oneway(self, src: str, dst: str) -> None:
        """Drop traffic from ``src`` to ``dst`` only — an asymmetric
        partition (src's packets vanish, dst's still arrive)."""
        self._cut.add((src, dst))

    def heal_oneway(self, src: str, dst: str) -> None:
        self._cut.discard((src, dst))

    def partition(self, a: str, b: str) -> None:
        """Cut the (bidirectional) link between ``a`` and ``b``."""
        self._cut.add((a, b))
        self._cut.add((b, a))

    def heal(self, a: str, b: str) -> None:
        self._cut.discard((a, b))
        self._cut.discard((b, a))

    def is_cut(self, src: str, dst: str) -> bool:
        return (src, dst) in self._cut

    def heal_all(self) -> None:
        """Restore every cut link (chaos teardown)."""
        self._cut.clear()

    # -- latency degradation ---------------------------------------------
    def set_link_factor(self, src: str, dst: str, factor: float) -> None:
        """Multiply the base latency of the directed ``src -> dst`` link
        (a latency spike on one path); ``factor`` of 1 clears it."""
        if factor < 1.0:
            raise ValueError(f"link factor must be >= 1, got {factor}")
        if factor == 1.0:
            self._link_factor.pop((src, dst), None)
        else:
            self._link_factor[(src, dst)] = factor

    def set_node_factor(self, node: str, factor: float) -> None:
        """Multiply the latency of every message to/from ``node``."""
        if factor < 1.0:
            raise ValueError(f"node factor must be >= 1, got {factor}")
        if factor == 1.0:
            self._node_factor.pop(node, None)
        else:
            self._node_factor[node] = factor

    def clear_degradations(self) -> None:
        self._link_factor.clear()
        self._node_factor.clear()

    # -- delivery --------------------------------------------------------
    def delay(self, src: str, dst: str, nbytes: int) -> float:
        """Sample the delivery delay for one message."""
        p = self.params
        if src == dst:
            base = p.loopback_latency
        else:
            base = p.one_way_latency + nbytes / p.bandwidth
            factor = self._link_factor.get((src, dst), 1.0)
            factor = max(factor, self._node_factor.get(src, 1.0))
            factor = max(factor, self._node_factor.get(dst, 1.0))
            base *= factor
        jitter = base * p.jitter_frac * self._rng.random()
        return base + jitter

    def send(
        self,
        src: str,
        dst: str,
        nbytes: int,
        deliver: Callable[[], None],
    ) -> bool:
        """Schedule ``deliver()`` after the modeled delay.

        Returns False (and drops the message) if either endpoint is dead
        or the link is partitioned — the caller is *not* told, matching
        UDP/crashed-TCP-peer semantics; request timeouts are the
        responsibility of the sender.
        """
        self.messages_sent += 1
        if src in self._dead or dst in self._dead or (src, dst) in self._cut:
            self.messages_dropped += 1
            return False
        if (
            self.params.loss_rate > 0.0
            and src != dst
            and self._rng.random() < self.params.loss_rate
        ):
            self.messages_dropped += 1
            return False
        self.bytes_sent += nbytes
        delay = self.delay(src, dst, nbytes)
        p = self.params
        if src != dst:
            if p.reorder_rate > 0.0 and self._rng.random() < p.reorder_rate:
                # hold the message back so later traffic overtakes it
                self.messages_reordered += 1
                delay += p.reorder_delay * self._rng.random()
            if p.duplicate_rate > 0.0 and self._rng.random() < p.duplicate_rate:
                self.messages_duplicated += 1
                self.sim.call_later(
                    delay + p.reorder_delay * self._rng.random(), deliver
                )
        self.sim.call_later(delay, deliver)
        return True
