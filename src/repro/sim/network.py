"""Network model for the simulated cluster.

Message delivery time between two nodes is::

    one_way_latency + nbytes / bandwidth + jitter

with jitter drawn from a named RNG stream so runs are reproducible.
The model also supports *failing* nodes (all traffic to/from a dead node
is silently dropped, exactly what a crashed process looks like to the
rest of the cluster) and *partitions* (pairwise drop sets), which the
failover experiments (Fig 16) and tests use.
"""

from __future__ import annotations

from typing import Callable, Optional, Set, Tuple

from repro.sim.kernel import Simulator
from repro.sim.rng import RngRegistry

__all__ = ["Network", "NetworkParams"]


class NetworkParams:
    """Tunable constants for one network fabric.

    Defaults approximate the paper's GCE setup (1 Gbps, ~100 us one-way
    in-zone latency).  The DPDK experiment swaps in a low-latency
    parameter set (see :mod:`repro.net.dpdk`).
    """

    def __init__(
        self,
        one_way_latency: float = 100e-6,
        bandwidth: float = 125e6,  # 1 Gbps in bytes/sec
        jitter_frac: float = 0.1,
        loopback_latency: float = 5e-6,
        loss_rate: float = 0.0,
    ):
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1), got {loss_rate}")
        self.one_way_latency = one_way_latency
        self.bandwidth = bandwidth
        self.jitter_frac = jitter_frac
        self.loopback_latency = loopback_latency
        #: fraction of non-loopback messages silently dropped — chaos
        #: injection for robustness tests (timeouts, retries and
        #: anti-entropy must absorb it).
        self.loss_rate = loss_rate


class Network:
    """Delivers payloads between named nodes with modeled delay."""

    def __init__(
        self,
        sim: Simulator,
        params: Optional[NetworkParams] = None,
        rng: Optional[RngRegistry] = None,
    ):
        self.sim = sim
        self.params = params or NetworkParams()
        self._rng = (rng or RngRegistry(0)).stream("network.jitter")
        self._dead: Set[str] = set()
        self._cut: Set[Tuple[str, str]] = set()
        # stats
        self.messages_sent = 0
        self.messages_dropped = 0
        self.bytes_sent = 0

    # -- failure control -------------------------------------------------
    def kill(self, node: str) -> None:
        """Drop all future traffic to and from ``node``."""
        self._dead.add(node)

    def revive(self, node: str) -> None:
        self._dead.discard(node)

    def is_dead(self, node: str) -> bool:
        return node in self._dead

    def partition(self, a: str, b: str) -> None:
        """Cut the (bidirectional) link between ``a`` and ``b``."""
        self._cut.add((a, b))
        self._cut.add((b, a))

    def heal(self, a: str, b: str) -> None:
        self._cut.discard((a, b))
        self._cut.discard((b, a))

    # -- delivery --------------------------------------------------------
    def delay(self, src: str, dst: str, nbytes: int) -> float:
        """Sample the delivery delay for one message."""
        p = self.params
        if src == dst:
            base = p.loopback_latency
        else:
            base = p.one_way_latency + nbytes / p.bandwidth
        jitter = base * p.jitter_frac * self._rng.random()
        return base + jitter

    def send(
        self,
        src: str,
        dst: str,
        nbytes: int,
        deliver: Callable[[], None],
    ) -> bool:
        """Schedule ``deliver()`` after the modeled delay.

        Returns False (and drops the message) if either endpoint is dead
        or the link is partitioned — the caller is *not* told, matching
        UDP/crashed-TCP-peer semantics; request timeouts are the
        responsibility of the sender.
        """
        self.messages_sent += 1
        if src in self._dead or dst in self._dead or (src, dst) in self._cut:
            self.messages_dropped += 1
            return False
        if (
            self.params.loss_rate > 0.0
            and src != dst
            and self._rng.random() < self.params.loss_rate
        ):
            self.messages_dropped += 1
            return False
        self.bytes_sent += nbytes
        self.sim.call_later(self.delay(src, dst, nbytes), deliver)
        return True
