"""Queueing resources for the simulation kernel.

:class:`Server` models a node's CPU (or any rate-limited stage) as an
``c``-server FIFO queue: jobs arrive with a service demand in seconds,
wait for a free slot, occupy it for the demand, then complete.  Queueing
delay under load is what bends the latency/throughput curves in
Fig 12-style experiments — it is emergent, not scripted.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Tuple

from repro.errors import SimulationError
from repro.sim.kernel import SimFuture, Simulator

__all__ = ["Server", "Pipe"]


class Server:
    """FIFO queue with ``capacity`` parallel service slots.

    Statistics (:attr:`busy_time`, :attr:`completions`, :attr:`max_queue`)
    are tracked so harness probes can report utilization.
    """

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = "server"):
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        #: service-time multiplier (>= 1): a degraded node (thermal
        #: throttling, noisy neighbor) serves every job this much slower.
        #: Chaos ``slow_node`` faults set it; 1.0 restores full speed.
        self.slowdown = 1.0
        self._in_service = 0
        self._queue: Deque[Tuple[float, SimFuture]] = deque()
        # stats
        self.busy_time = 0.0
        self.completions = 0
        self.max_queue = 0

    def set_slowdown(self, factor: float) -> None:
        if factor < 1.0:
            raise SimulationError(f"slowdown must be >= 1, got {factor}")
        self.slowdown = factor

    @property
    def queue_len(self) -> int:
        return len(self._queue)

    @property
    def in_service(self) -> int:
        return self._in_service

    def utilization(self, elapsed: float) -> float:
        """Fraction of total slot-seconds spent busy over ``elapsed``."""
        if elapsed <= 0:
            return 0.0
        return self.busy_time / (elapsed * self.capacity)

    def submit(self, demand: float) -> SimFuture:
        """Enqueue a job needing ``demand`` seconds of service.

        Returns a future resolved when service completes.  Zero-demand
        jobs still traverse the queue, preserving FIFO order.
        """
        if demand < 0:
            raise SimulationError(f"negative service demand: {demand}")
        demand *= self.slowdown
        fut = self.sim.create_future()
        if self._in_service < self.capacity:
            self._start(demand, fut)
        else:
            self._queue.append((demand, fut))
            self.max_queue = max(self.max_queue, len(self._queue))
        return fut

    def _start(self, demand: float, fut: SimFuture) -> None:
        self._in_service += 1
        self.busy_time += demand
        self.sim.call_later(demand, self._finish, fut)

    def _finish(self, fut: SimFuture) -> None:
        self._in_service -= 1
        self.completions += 1
        if self._queue and self._in_service < self.capacity:
            demand, nxt = self._queue.popleft()
            self._start(demand, nxt)
        fut.set_result(None)

    def drain_stats(self) -> dict:
        """Snapshot and reset counters (used between measurement windows)."""
        stats = {
            "busy_time": self.busy_time,
            "completions": self.completions,
            "max_queue": self.max_queue,
        }
        self.busy_time = 0.0
        self.completions = 0
        self.max_queue = 0
        return stats


class Pipe:
    """A serial link with fixed bandwidth (bytes/sec).

    Models NIC serialization delay: transfers queue behind each other.
    Used by the network model for bulk recovery traffic where bandwidth,
    not latency, dominates (Fig 16 recovery windows).
    """

    def __init__(self, sim: Simulator, bandwidth: float, name: str = "pipe"):
        if bandwidth <= 0:
            raise SimulationError(f"bandwidth must be positive, got {bandwidth}")
        self.sim = sim
        self.bandwidth = bandwidth
        self.name = name
        self._server = Server(sim, capacity=1, name=name)
        self.bytes_sent = 0

    def transfer(self, nbytes: int) -> SimFuture:
        """Occupy the link for ``nbytes / bandwidth`` seconds."""
        if nbytes < 0:
            raise SimulationError(f"negative transfer size: {nbytes}")
        self.bytes_sent += nbytes
        return self._server.submit(nbytes / self.bandwidth)
