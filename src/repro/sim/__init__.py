"""Deterministic discrete-event simulation substrate.

Public surface:

* :class:`~repro.sim.kernel.Simulator` — virtual clock + event queue
* :class:`~repro.sim.kernel.SimFuture` — awaitable cell for processes
* :class:`~repro.sim.resources.Server` / :class:`~repro.sim.resources.Pipe`
  — queueing resources (node CPU, links)
* :class:`~repro.sim.network.Network` — latency/bandwidth/failure model
* :class:`~repro.sim.costs.CostModel` — every tunable cost constant
* :class:`~repro.sim.rng.RngRegistry` — named reproducible RNG streams
"""

from repro.sim.costs import DEFAULT_COSTS, CostModel
from repro.sim.durable import DurableFile, DurableStore
from repro.sim.kernel import Process, SimFuture, Simulator, TimerHandle
from repro.sim.network import Network, NetworkParams
from repro.sim.resources import Pipe, Server
from repro.sim.rng import RngRegistry

__all__ = [
    "Simulator",
    "SimFuture",
    "TimerHandle",
    "Process",
    "Server",
    "Pipe",
    "Network",
    "NetworkParams",
    "CostModel",
    "DEFAULT_COSTS",
    "DurableFile",
    "DurableStore",
    "RngRegistry",
]
