"""Central cost model: CPU service demands for every operation class.

All absolute throughput in this repo is *modeled*; what the benchmarks
claim to reproduce is relative shape (who wins, roughly by how much,
where crossovers fall — see DESIGN.md §5).  Keeping every constant in
one dataclass makes the model auditable and lets ablation benches tweak
a single knob.

The relative values encode the structural asymmetries the paper leans
on:

* LSM writes are cheap (memtable append) but carry amortized compaction
  cost, and reads may touch several levels → LSM beats B+-tree on
  write-heavy workloads by ~25% and loses on read-heavy by ~35% (Fig 6);
* the B+-tree (Masstree stand-in, in-memory) has the fastest reads and
  supports range scans (Fig 9);
* log-structured-with-index (tLog) and LevelDB-style (tSSDB) stores pay
  a persistence penalty on every op (Fig 9);
* kernel socket processing costs ~6x a DPDK poll-mode receive (Fig 17).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

__all__ = ["CostModel", "DEFAULT_COSTS"]

US = 1e-6  # one microsecond, the natural unit for per-op costs


@dataclass
class CostModel:
    """Service demands in seconds of CPU per operation."""

    #: multiplies every datalet op cost; calibrates per-node saturation
    #: throughput to the order of magnitude of the paper's 4-vCPU VMs.
    cpu_scale: float = 6.0

    #: default CPU service-time multiplier a chaos ``slow_node`` fault
    #: applies to a host (schedules may override per event).
    slow_node_factor: float = 4.0

    #: per-message cost of the kernel network stack (recv+send halves).
    socket_msg_cost: float = 8 * US
    #: per-message cost with DPDK poll-mode driver (kernel bypass).
    dpdk_msg_cost: float = 1.5 * US

    #: controlet request routing / event dispatch per message.
    controlet_overhead: float = 3 * US
    #: coordinator metadata query handling.
    coordinator_overhead: float = 8 * US
    #: DLM lock/unlock transaction (Redlock SET-NX + expiry handling);
    #: deliberately heavy — the remote lock service is the serialization
    #: point that flattens AA+SC scaling in Figs 7/12.
    dlm_overhead: float = 25 * US
    #: shared-log append handling at the sequencer/segment.
    sharedlog_append_cost: float = 10 * US
    sharedlog_fetch_cost: float = 6 * US
    #: marginal sequencer cost per *additional* entry in a group-commit
    #: batch (``log_append_batch``): the first entry pays the full
    #: append handling, the rest only the per-record sequencing work —
    #: this amortization is what group commit buys at the sequencer.
    sharedlog_append_entry_cost: float = 1.5 * US

    #: WAL durability costs (charged per mutating datalet op when the
    #: deployment enables write-ahead logging).  The append is a
    #: serialize + page-cache write; the fsync is the flush that makes
    #: an acked write crash-proof and is what the durability-tax
    #: benchmark measures.  With group commit (``wal_sync_every`` > 1)
    #: the fsync cost is amortized across the group — see
    #: ``DataletActor.service_demand``.
    wal_append_cost: float = 4 * US
    wal_fsync_cost: float = 80 * US

    #: (datalet_kind, op) -> (base_cost, per_item_cost_for_scans).
    #: In-memory structures (ht/mt/redis) cost ~10-45 us; persistent
    #: engines (lsm/log/ssdb) include media costs, which is what spreads
    #: the Fig 6/9 curves apart.
    datalet_ops: Dict[Tuple[str, str], Tuple[float, float]] = field(
        default_factory=lambda: {
            # tHT — in-memory hash table: fastest point ops, no scans.
            ("ht", "put"): (10 * US, 0.0),
            ("ht", "get"): (9 * US, 0.0),
            ("ht", "del"): (9 * US, 0.0),
            # tMT — in-memory B+-tree (Masstree stand-in): fast ordered
            # reads + native scans; writes pay tree maintenance.
            ("mt", "put"): (45 * US, 0.0),
            ("mt", "get"): (25 * US, 0.0),
            ("mt", "del"): (35 * US, 0.0),
            ("mt", "scan"): (60 * US, 3 * US),
            # tLSM — memtable + SSTables; cheap writes (append +
            # amortized compaction), reads probe multiple levels.
            ("lsm", "put"): (30 * US, 0.0),
            ("lsm", "get"): (45 * US, 0.0),
            ("lsm", "del"): (30 * US, 0.0),
            ("lsm", "scan"): (80 * US, 4 * US),
            # tLog — HDD-backed append log + in-memory hash index.
            ("log", "put"): (50 * US, 0.0),
            ("log", "get"): (75 * US, 0.0),
            ("log", "del"): (50 * US, 0.0),
            # tSSDB — LevelDB-style persistent store behind SSDB's
            # protocol layer.
            ("ssdb", "put"): (55 * US, 0.0),
            ("ssdb", "get"): (80 * US, 0.0),
            ("ssdb", "del"): (55 * US, 0.0),
            ("ssdb", "scan"): (100 * US, 5 * US),
            # tRedis — single-threaded in-memory store behind a RESP
            # parser; slightly above tHT due to protocol handling.
            ("redis", "put"): (11 * US, 0.0),
            ("redis", "get"): (10 * US, 0.0),
            ("redis", "del"): (10 * US, 0.0),
        }
    )

    #: extra per-op cost for comparator systems whose storage engines the
    #: paper identifies as heavier (compaction + wide-row bookkeeping +
    #: JVM path for the Cassandra-alike, BDB-style storage for the
    #: Voldemort-alike).
    cassandra_engine_overhead: float = 120 * US
    voldemort_engine_overhead: float = 40 * US

    def datalet_cost(self, kind: str, op: str, items: int = 1) -> float:
        """CPU seconds for one datalet operation.

        ``items`` scales the per-item component of scans; point ops
        ignore it.
        """
        try:
            base, per_item = self.datalet_ops[(kind, op)]
        except KeyError:
            raise KeyError(f"no cost entry for datalet kind {kind!r} op {op!r}") from None
        return (base + per_item * max(0, items - 1)) * self.cpu_scale

    def msg_cost(self, dpdk: bool = False) -> float:
        """Per-message network-stack CPU cost charged to the receiving node."""
        return (self.dpdk_msg_cost if dpdk else self.socket_msg_cost) * self.cpu_scale

    def scaled(self, name: str) -> float:
        """A named overhead constant scaled by ``cpu_scale`` — the form
        every ``service_demand`` implementation must charge, so that
        changing ``cpu_scale`` rescales the whole system uniformly."""
        return getattr(self, name) * self.cpu_scale


#: Shared immutable default instance.  Experiments that tweak costs must
#: construct their own CostModel rather than mutating this one.
DEFAULT_COSTS = CostModel()
