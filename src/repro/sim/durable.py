"""Simulated per-host durable storage (the disk under the WAL).

A :class:`DurableStore` models the stable storage of one host.  It is
owned by the cluster, **not** by any actor, so its contents survive
actor teardown — that is the whole point: a crash-*restart* fault kills
the actors on a host and later re-spawns fresh ones that recover their
state from this store (see ``Deployment.recover_host``).

The model is deliberately byte-level:

* :meth:`DurableFile.append` extends an append-only file; the bytes are
  *unsynced* (page cache) until :meth:`DurableFile.sync` (fsync) moves
  the synced watermark to the end of file.
* :meth:`DurableFile.replace` stages a full-content replacement that
  commits atomically at the next ``sync`` — the write-temp-then-rename
  idiom; a crash before the sync leaves the *old* content intact.
* On a host crash (:meth:`DurableStore.on_crash`) any staged
  replacement is discarded and the unsynced suffix of every file is
  truncated to a seeded random prefix — so a torn (partially written)
  tail record is a scenario recovery code *will* face, not a
  hypothetical.  Everything up to the synced watermark always survives.

Loss policy is configurable per store (``unsynced_loss``):

``"partial"`` (default)
    keep a seeded random prefix of the unsynced suffix (torn tail);
``"all"``
    drop the entire unsynced suffix (fail-stop page cache);
``"none"``
    lose nothing (battery-backed cache) — useful to isolate replay
    logic from loss modeling in tests.

All randomness comes from a named :class:`~repro.sim.rng.RngRegistry`
stream, so crash damage is a pure function of the run seed.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import ConfigError

__all__ = ["DurableFile", "DurableStore"]

LOSS_POLICIES = ("partial", "all", "none")


class DurableFile:
    """One append-only file on a host's simulated disk."""

    __slots__ = ("name", "_data", "_synced", "_staged")

    def __init__(self, name: str):
        self.name = name
        self._data = bytearray()
        #: byte offset up to which content is fsynced (crash-proof).
        self._synced = 0
        #: staged full-content replacement; commits on the next sync.
        self._staged: Optional[bytes] = None

    # -- writes --------------------------------------------------------
    def append(self, data: bytes) -> None:
        if self._staged is not None:
            raise ConfigError(
                f"durable file {self.name!r}: append while a replace is staged"
            )
        self._data.extend(data)

    def replace(self, content: bytes) -> None:
        """Stage an atomic full replacement (write temp + rename)."""
        self._staged = bytes(content)

    def sync(self) -> None:
        """fsync: commit staged replacement (if any) and harden all bytes."""
        if self._staged is not None:
            self._data = bytearray(self._staged)
            self._staged = None
        self._synced = len(self._data)

    # -- reads ---------------------------------------------------------
    def read(self) -> bytes:
        """Current on-disk content (what a reopening process sees)."""
        return bytes(self._data)

    @property
    def size(self) -> int:
        return len(self._data)

    @property
    def synced_size(self) -> int:
        return self._synced

    # -- crash damage --------------------------------------------------
    def crash(self, rng, policy: str) -> int:
        """Apply power-loss damage; returns bytes lost past the sync point."""
        self._staged = None  # un-renamed temp file: gone
        unsynced = len(self._data) - self._synced
        if unsynced <= 0 or policy == "none":
            return 0
        if policy == "all":
            keep = 0
        else:  # partial: a torn tail — some prefix of the dirty pages hit disk
            keep = rng.randrange(unsynced + 1)
        del self._data[self._synced + keep:]
        return unsynced - keep


class DurableStore:
    """The durable files of one host; survives every actor on it."""

    def __init__(self, host: str, rng, unsynced_loss: str = "partial"):
        if unsynced_loss not in LOSS_POLICIES:
            raise ConfigError(
                f"unknown unsynced_loss policy {unsynced_loss!r} "
                f"(expected one of {LOSS_POLICIES})"
            )
        self.host = host
        self._rng = rng
        self.unsynced_loss = unsynced_loss
        self._files: Dict[str, DurableFile] = {}
        #: sim time of the most recent crash (-1.0 = never crashed).
        self.last_crash_at = -1.0
        self.crashes = 0

    def file(self, name: str) -> DurableFile:
        f = self._files.get(name)
        if f is None:
            f = self._files[name] = DurableFile(name)
        return f

    def files(self) -> List[str]:
        """File names in deterministic (sorted) order — never expose
        dict insertion order to replay code."""
        return sorted(self._files)

    def on_crash(self, now: float) -> int:
        """Power loss: damage every file per the loss policy.

        Iterates files in sorted order so the per-file RNG draws are
        independent of creation order.  Returns total bytes lost.
        """
        self.crashes += 1
        self.last_crash_at = now
        lost = 0
        for name in sorted(self._files):
            lost += self._files[name].crash(self._rng, self.unsynced_loss)
        return lost
