"""Named, reproducible random streams.

Every stochastic component (network jitter, workload keys, failure
injection) draws from its **own** stream derived from a root seed and a
component name, so adding a new consumer never perturbs the draws seen
by existing components — a requirement for regression-stable benchmark
output.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

__all__ = ["RngRegistry"]


class RngRegistry:
    """Factory of independent :class:`random.Random` streams."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it deterministically."""
        rng = self._streams.get(name)
        if rng is None:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            rng = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = rng
        return rng
