"""Write-ahead log + snapshot persistence for datalet engines.

The durability layer under a :class:`~repro.datalet.base.DataletActor`:
every mutation is appended to a per-datalet record log *before* it is
acknowledged, the log is periodically compacted into a snapshot, and
after a crash-restart the engine is rebuilt by replaying snapshot +
surviving log records (``Deployment.recover_host``).

Storage model
-------------

The WAL writes through two files of a host's
:class:`~repro.sim.durable.DurableStore` (which survives actor
teardown and applies seeded power-loss damage on crash):

``<name>.log``
    append-only records, one per line::

        {"k": <key>, "o": "put"|"del", "s": <seq>, "v": <value|null>}|<crc8>

    JSON is dumped with sorted keys and no whitespace, so the byte
    encoding — and therefore every digest over it — is deterministic.
    The checksum is the crc32 of the JSON body, hex, zero-padded.

``<name>.snap``
    one snapshot record ``{"data": {...}, "s": <seq>}|<crc8>`` holding
    the full engine state as of sequence ``s``.  Written with the
    durable store's atomic-replace (commit-on-sync), so a crash mid
    -snapshot keeps the previous snapshot intact.

Replay is **torn-tail tolerant**: a parse/checksum failure on the last
line of the log is an interrupted append — the tail is dropped and
counted.  The same failure *followed by valid records* is media
corruption and raises :class:`~repro.errors.WalCorruption`: replaying
past a hole would silently reorder history.

Sequence numbers are absolute and monotonic across snapshots, so a log
that survived a crash between "snapshot committed" and "log truncated"
replays correctly: records with ``seq <= snapshot.seq`` are skipped
(idempotent replay), the rest apply in order.

Determinism: snapshots restore keys in sorted order and log records
apply in file order; no wall clock, no unseeded randomness, no dict
-order dependence — the lint rules for ``datalet/`` enforce this.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import WalCorruption
from repro.sim.durable import DurableStore

__all__ = ["WriteAheadLog", "ReplayResult"]

#: compact a log into a snapshot after this many appends (default).
DEFAULT_SNAPSHOT_EVERY = 256


def _encode(obj: dict) -> bytes:
    body = json.dumps(obj, sort_keys=True, separators=(",", ":"))
    crc = zlib.crc32(body.encode()) & 0xFFFFFFFF
    return f"{body}|{crc:08x}\n".encode()


def _decode(line: bytes) -> Optional[dict]:
    """Parse one checksummed line; None = damaged (torn or corrupt)."""
    try:
        text = line.decode()
        body, crc_hex = text.rsplit("|", 1)
        if zlib.crc32(body.encode()) & 0xFFFFFFFF != int(crc_hex, 16):
            return None
        obj = json.loads(body)
    except (ValueError, UnicodeDecodeError):
        return None
    return obj if isinstance(obj, dict) else None


@dataclass
class ReplayResult:
    """What one :meth:`WriteAheadLog.replay` recovered."""

    snapshot_seq: int       # seq the snapshot covered (0 = no snapshot)
    applied_seq: int        # highest record seq applied (>= snapshot_seq)
    records_applied: int    # log records replayed on top of the snapshot
    torn_tail_dropped: int  # damaged trailing log lines discarded
    restored_keys: int      # keys loaded from the snapshot


class WriteAheadLog:
    """Seq-numbered, checksummed, torn-tail-tolerant record log."""

    def __init__(
        self,
        store: DurableStore,
        name: str,
        sync_every: int = 1,
        snapshot_every: int = DEFAULT_SNAPSHOT_EVERY,
    ):
        self.store = store
        self.name = name
        #: fsync after this many appends (1 = sync before every ack;
        #: >1 = group commit, trading durability for throughput).
        self.sync_every = max(1, int(sync_every))
        self.snapshot_every = max(1, int(snapshot_every))
        self._log = store.file(f"{name}.log")
        self._snap = store.file(f"{name}.snap")
        #: next sequence number to assign.
        self.seq = 0
        #: highest seq guaranteed on disk (covered by snapshot or a
        #: synced log record) — the fsync point the oracle audits.
        self.durable_seq = 0
        self._unsynced = 0
        self._since_snapshot = 0
        #: True while a commit group is open: per-append auto-sync is
        #: suppressed so the whole group shares (at most) one fsync.
        self._grouping = False
        self.appends = 0
        self.syncs = 0
        self.snapshots = 0
        self._adopt_existing()

    def _adopt_existing(self) -> None:
        """Continue the sequence of whatever already survives on disk
        (re-opening after a crash-restart)."""
        snap_seq, _, _ = self._read_snapshot()
        tail_seq, _, _ = self._scan_log(snap_seq)
        self.seq = max(snap_seq, tail_seq)
        self.durable_seq = self.seq

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------
    def append(self, op: str, key: str, value: Optional[str] = None) -> int:
        """Log one mutation; returns its sequence number.

        The record is in the page cache until :meth:`sync` (called
        automatically every ``sync_every`` appends); only synced
        records are guaranteed to survive a crash.
        """
        self.seq += 1
        self.appends += 1
        rec = {"s": self.seq, "o": op, "k": key,
               "v": value if op == "put" else None}
        self._log.append(_encode(rec))
        self._unsynced += 1
        self._since_snapshot += 1
        if not self._grouping and self._unsynced >= self.sync_every:
            self.sync()
        return self.seq

    def begin_commit_group(self) -> None:
        """Open a commit group: appends accumulate without syncing.

        WAL-level group commit — a replication batch logs every member
        and then pays for at most one fsync in :meth:`end_commit_group`,
        instead of one per record.  Durability semantics per record are
        unchanged at the ack boundary: callers ack only after the group
        is closed."""
        self._grouping = True

    def end_commit_group(self) -> None:
        """Close the group and apply the sync policy once.

        ``sync_every == 1`` (strict durability): exactly one fsync
        covers the whole group, so every member is on disk before the
        caller acks — durability-before-ack now holds at batch
        granularity.  ``sync_every > 1``: sync only when the unsynced
        run has reached the window; the unsynced tail may transiently
        reach ``max(sync_every, group size)``, which the crash contract
        already permits (unsynced-tail loss is legal)."""
        self._grouping = False
        if self._unsynced and (self.sync_every == 1
                               or self._unsynced >= self.sync_every):
            self.sync()

    def sync(self) -> None:
        """fsync the log: everything appended so far becomes durable."""
        self._log.sync()
        self.durable_seq = self.seq
        self._unsynced = 0
        self.syncs += 1

    @property
    def wants_snapshot(self) -> bool:
        """True once enough appends accumulated to warrant compaction —
        check this before building the (O(n)) snapshot dict."""
        return self._since_snapshot >= self.snapshot_every

    def maybe_snapshot(self, data: Dict[str, str]) -> bool:
        """Compact if enough appends accumulated since the last one."""
        if self._since_snapshot < self.snapshot_every:
            return False
        self.install_snapshot(data)
        return True

    def install_snapshot(self, data: Dict[str, str]) -> None:
        """Write ``data`` as the new baseline at the current seq and
        truncate the log.

        Ordering matters for crash safety: the snapshot commits first
        (atomic replace + sync), then the log truncates.  A crash in
        between leaves snapshot(seq=n) plus a log of records <= n —
        replay skips them by sequence number.
        """
        self._snap.replace(_encode({"s": self.seq, "data": dict(data)}))
        self._snap.sync()
        self._log.replace(b"")
        self._log.sync()
        self.durable_seq = self.seq
        self._unsynced = 0
        self._since_snapshot = 0
        self.snapshots += 1

    # ------------------------------------------------------------------
    # recovery path
    # ------------------------------------------------------------------
    def _read_snapshot(self) -> Tuple[int, Dict[str, str], bool]:
        """(seq, data, damaged): the newest intact snapshot on disk."""
        raw = self._snap.read()
        if not raw:
            return 0, {}, False
        obj = _decode(raw.rstrip(b"\n"))
        if obj is None or "data" not in obj:
            # a damaged snapshot can only be a torn replace that the
            # durable store failed to roll back; treat as absent
            return 0, {}, True
        return int(obj["s"]), dict(obj["data"]), False

    def _scan_log(self, min_seq: int) -> Tuple[int, list, int]:
        """(last_seq, records beyond min_seq in order, torn lines)."""
        raw = self._log.read()
        lines = raw.split(b"\n") if raw else []
        if lines and lines[-1] == b"":
            lines.pop()
        records = []
        last_seq = 0
        torn = 0
        for i, line in enumerate(lines):
            obj = _decode(line)
            if obj is None or "s" not in obj:
                if i == len(lines) - 1:
                    torn += 1
                    break
                raise WalCorruption(
                    f"wal {self.name!r}: damaged record at line {i + 1} "
                    f"of {len(lines)} (not a torn tail)"
                )
            seq = int(obj["s"])
            if seq <= last_seq:
                raise WalCorruption(
                    f"wal {self.name!r}: sequence went backwards at line "
                    f"{i + 1} ({seq} after {last_seq})"
                )
            last_seq = seq
            if seq > min_seq:
                records.append(obj)
        return last_seq, records, torn

    def replay(self, engine) -> ReplayResult:
        """Rebuild ``engine`` from snapshot + log (deterministic order).

        Uses the engine's existing ``restore`` contract for the
        snapshot (keys in sorted order), then applies log records in
        file order.  Deletes of absent keys are tolerated — a delete
        may be logged for a key whose put predates the snapshot window.
        """
        from repro.errors import KeyNotFound  # local: avoid heavy import at module load

        snap_seq, data, _damaged = self._read_snapshot()
        engine.restore({k: data[k] for k in sorted(data)})
        last_seq, records, torn = self._scan_log(snap_seq)
        applied = 0
        top = snap_seq
        for rec in records:
            if rec.get("o") == "put":
                engine.put(rec["k"], rec["v"])
            else:
                try:
                    engine.delete(rec["k"])
                except KeyNotFound:
                    pass
            applied += 1
            top = int(rec["s"])
        # adopt the surviving sequence so post-recovery appends continue it
        self.seq = max(self.seq, top)
        self.durable_seq = max(self.durable_seq, top)
        return ReplayResult(
            snapshot_seq=snap_seq,
            applied_seq=top,
            records_applied=applied,
            torn_tail_dropped=torn,
            restored_keys=len(data),
        )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, float]:
        return {
            "wal_seq": float(self.seq),
            "wal_durable_seq": float(self.durable_seq),
            "wal_appends": float(self.appends),
            "wal_syncs": float(self.syncs),
            # group-commit effectiveness: 1.0 = an fsync per record,
            # → 0 as batching amortizes the flushes away
            "wal_fsyncs_per_op": (
                float(self.syncs) / self.appends if self.appends else 0.0
            ),
            "wal_snapshots": float(self.snapshots),
            "wal_log_bytes": float(self._log.size),
        }
