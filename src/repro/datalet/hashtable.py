"""tHT: in-memory hash-table datalet (the paper's fastest template).

Point operations only — hash tables have no key order, so ``scan``
raises, which is exactly why the range-query service (§IV-B) requires
the tMT datalet instead.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

from repro.datalet.base import Engine
from repro.errors import KeyNotFound

__all__ = ["HashTableEngine"]


class HashTableEngine(Engine):
    """Plain dict-backed store."""

    kind = "ht"
    supports_scan = False

    def __init__(self) -> None:
        self._data: Dict[str, str] = {}

    def put(self, key: str, value: str) -> None:
        self._data[key] = value

    def get(self, key: str) -> str:
        try:
            return self._data[key]
        except KeyError:
            raise KeyNotFound(key) from None

    def delete(self, key: str) -> None:
        if key not in self._data:
            raise KeyNotFound(key)
        del self._data[key]

    def __len__(self) -> int:
        return len(self._data)

    def items(self) -> Iterator[Tuple[str, str]]:
        return iter(self._data.items())
