"""tMT: ordered B+-tree datalet (stand-in for Masstree).

The paper's tMT wraps Masstree — a cache-craft trie-of-B+-trees — whose
property that matters for the evaluation is *ordered storage with fast
point reads and native range scans* (Fig 9's SCAN workload and the
range-query service of §IV-B).  This module implements a textbook
B+-tree: values only in leaves, leaves chained for scans, splits on
overflow.  Deletes are *lazy* (no rebalancing): keys are removed from
leaves but nodes are never merged, a common practical simplification
(e.g. LMDB-style) that keeps reads correct and preserves the paper's
performance asymmetries.
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.datalet.base import Engine
from repro.errors import KeyNotFound

__all__ = ["BTreeEngine"]


class _Leaf:
    __slots__ = ("keys", "values", "next")

    def __init__(self) -> None:
        self.keys: List[str] = []
        self.values: List[str] = []
        self.next: Optional["_Leaf"] = None


class _Internal:
    __slots__ = ("keys", "children")

    def __init__(self) -> None:
        # children[i] holds keys < keys[i]; children[-1] holds the rest.
        self.keys: List[str] = []
        self.children: List[Union["_Internal", _Leaf]] = []


_Node = Union[_Internal, _Leaf]


class BTreeEngine(Engine):
    """B+-tree with configurable fanout."""

    kind = "mt"
    supports_scan = True

    def __init__(self, order: int = 32):
        if order < 4:
            raise ValueError(f"order must be >= 4, got {order}")
        self._order = order  # max keys per node
        self._root: _Node = _Leaf()
        self._len = 0
        self.height = 1
        self.splits = 0

    # -- navigation -----------------------------------------------------
    def _find_leaf(self, key: str) -> _Leaf:
        node = self._root
        while isinstance(node, _Internal):
            i = bisect.bisect_right(node.keys, key)
            node = node.children[i]
        return node

    # -- point ops --------------------------------------------------------
    def get(self, key: str) -> str:
        leaf = self._find_leaf(key)
        i = bisect.bisect_left(leaf.keys, key)
        if i < len(leaf.keys) and leaf.keys[i] == key:
            return leaf.values[i]
        raise KeyNotFound(key)

    def put(self, key: str, value: str) -> None:
        split = self._insert(self._root, key, value)
        if split is not None:
            sep, right = split
            new_root = _Internal()
            new_root.keys = [sep]
            new_root.children = [self._root, right]
            self._root = new_root
            self.height += 1

    def _insert(self, node: _Node, key: str, value: str) -> Optional[Tuple[str, _Node]]:
        """Insert into the subtree; return (separator, new_right_sibling)
        if this node split, else None."""
        if isinstance(node, _Leaf):
            i = bisect.bisect_left(node.keys, key)
            if i < len(node.keys) and node.keys[i] == key:
                node.values[i] = value  # overwrite
                return None
            node.keys.insert(i, key)
            node.values.insert(i, value)
            self._len += 1
            if len(node.keys) <= self._order:
                return None
            return self._split_leaf(node)

        i = bisect.bisect_right(node.keys, key)
        split = self._insert(node.children[i], key, value)
        if split is None:
            return None
        sep, right = split
        node.keys.insert(i, sep)
        node.children.insert(i + 1, right)
        if len(node.keys) <= self._order:
            return None
        return self._split_internal(node)

    def _split_leaf(self, leaf: _Leaf) -> Tuple[str, _Leaf]:
        mid = len(leaf.keys) // 2
        right = _Leaf()
        right.keys = leaf.keys[mid:]
        right.values = leaf.values[mid:]
        leaf.keys = leaf.keys[:mid]
        leaf.values = leaf.values[:mid]
        right.next = leaf.next
        leaf.next = right
        self.splits += 1
        return right.keys[0], right

    def _split_internal(self, node: _Internal) -> Tuple[str, _Internal]:
        mid = len(node.keys) // 2
        sep = node.keys[mid]
        right = _Internal()
        right.keys = node.keys[mid + 1 :]
        right.children = node.children[mid + 1 :]
        node.keys = node.keys[:mid]
        node.children = node.children[: mid + 1]
        self.splits += 1
        return sep, right

    def delete(self, key: str) -> None:
        leaf = self._find_leaf(key)
        i = bisect.bisect_left(leaf.keys, key)
        if i >= len(leaf.keys) or leaf.keys[i] != key:
            raise KeyNotFound(key)
        leaf.keys.pop(i)
        leaf.values.pop(i)
        self._len -= 1

    # -- iteration / scans -------------------------------------------------
    def _first_leaf(self) -> _Leaf:
        node = self._root
        while isinstance(node, _Internal):
            node = node.children[0]
        return node

    def __len__(self) -> int:
        return self._len

    def items(self) -> Iterator[Tuple[str, str]]:
        leaf: Optional[_Leaf] = self._first_leaf()
        while leaf is not None:
            yield from zip(leaf.keys, leaf.values)
            leaf = leaf.next

    def scan(self, start: str, end: str, limit: Optional[int] = None) -> List[Tuple[str, str]]:
        """Pairs with ``start <= key < end`` in key order, via leaf chain."""
        out: List[Tuple[str, str]] = []
        leaf: Optional[_Leaf] = self._find_leaf(start)
        i = bisect.bisect_left(leaf.keys, start)
        while leaf is not None:
            while i < len(leaf.keys):
                key = leaf.keys[i]
                if key >= end:
                    return out
                out.append((key, leaf.values[i]))
                if limit is not None and len(out) >= limit:
                    return out
                i += 1
            leaf = leaf.next
            i = 0
        return out

    def check_invariants(self) -> None:
        """Validate structure (used by property tests):

        * keys sorted within every node;
        * leaf chain sorted globally and covering exactly ``len(self)``;
        * every internal child subtree within separator bounds.
        """
        def walk(node: _Node, lo: Optional[str], hi: Optional[str]) -> int:
            assert node.keys == sorted(node.keys), "unsorted node keys"
            for k in node.keys:
                assert lo is None or k >= lo, "key below lower bound"
                assert hi is None or k < hi, "key above upper bound"
            if isinstance(node, _Leaf):
                return len(node.keys)
            assert len(node.children) == len(node.keys) + 1, "child count mismatch"
            total = 0
            bounds = [lo] + list(node.keys) + [hi]
            for idx, child in enumerate(node.children):
                total += walk(child, bounds[idx], bounds[idx + 1])
            return total

        total = walk(self._root, None, None)
        assert total == self._len, f"size mismatch: counted {total}, stored {self._len}"
        chain = [k for k, _ in self.items()]
        assert chain == sorted(chain), "leaf chain out of order"
        assert len(chain) == self._len, "leaf chain size mismatch"

    def stats(self) -> Dict[str, float]:
        return {
            "live_keys": float(self._len),
            "height": float(self.height),
            "splits": float(self.splits),
            "order": float(self._order),
        }
