"""Datalets: single-server storage engines + their message front-end.

========== =============================== ===========================
name        engine                          characteristics
========== =============================== ===========================
``ht``      :class:`HashTableEngine` (tHT)  fastest point ops, no scan
``mt``      :class:`BTreeEngine` (tMT)      ordered, scans, fast reads
``lsm``     :class:`LSMEngine` (tLSM)       fast writes, slower reads
``log``     :class:`LogEngine` (tLog)       persistent append log
``ssdb``    :class:`SSDBEngine` (tSSDB)     LevelDB-style persistent
``redis``   :class:`RedisEngine` (tRedis)   RESP-ported in-memory store
========== =============================== ===========================
"""

from __future__ import annotations

from repro.datalet.base import DataletActor, Engine
from repro.datalet.btree import BTreeEngine
from repro.datalet.hashtable import HashTableEngine
from repro.datalet.log import LogEngine
from repro.datalet.lsm import LSMEngine, SSTable
from repro.datalet.ports import RedisEngine, SSDBEngine
from repro.datalet.wal import ReplayResult, WriteAheadLog

__all__ = [
    "Engine",
    "DataletActor",
    "WriteAheadLog",
    "ReplayResult",
    "HashTableEngine",
    "BTreeEngine",
    "LogEngine",
    "LSMEngine",
    "SSTable",
    "SSDBEngine",
    "RedisEngine",
    "ENGINE_KINDS",
    "make_engine",
]

ENGINE_KINDS = {
    "ht": HashTableEngine,
    "mt": BTreeEngine,
    "lsm": LSMEngine,
    "log": LogEngine,
    "ssdb": SSDBEngine,
    "redis": RedisEngine,
}


def make_engine(kind: str, **kwargs) -> Engine:
    """Instantiate a datalet engine by cost-model kind name."""
    try:
        cls = ENGINE_KINDS[kind]
    except KeyError:
        raise ValueError(
            f"unknown datalet kind {kind!r}; choose from {sorted(ENGINE_KINDS)}"
        ) from None
    return cls(**kwargs)
