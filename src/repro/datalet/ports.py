"""Ported datalets: tSSDB and tRedis.

The paper demonstrates "drop-in" support for existing single-server
stores by adding protocol parsers for SSDB and Redis (§VII).  Their
storage engines are, respectively, a LevelDB-style LSM persisted on
disk and an in-memory hash/str store — so here each port reuses the
matching native engine under a distinct cost-model ``kind`` (tSSDB pays
the persistent-store penalty, tRedis a small protocol-parsing overhead
above tHT; see :mod:`repro.sim.costs`).

The RESP-style wire protocol used when exposing tRedis over real TCP
lives in :mod:`repro.net.resp`.
"""

from __future__ import annotations

from repro.datalet.hashtable import HashTableEngine
from repro.datalet.lsm import LSMEngine

__all__ = ["SSDBEngine", "RedisEngine"]


class SSDBEngine(LSMEngine):
    """tSSDB: LevelDB-backed persistent store (SSDB's engine)."""

    kind = "ssdb"

    def __init__(self, memtable_limit: int = 2048, max_sstables: int = 8):
        super().__init__(memtable_limit=memtable_limit, max_sstables=max_sstables)


class RedisEngine(HashTableEngine):
    """tRedis: in-memory store behind a text (RESP) protocol parser."""

    kind = "redis"
