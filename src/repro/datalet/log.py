"""tLog: persistent append-only log with an in-memory hash index.

The paper's tLog "uses tHT as the in-memory index" over a log-structured
store on disk.  Every mutation appends a record; the index maps each
live key to its record offset.  Deletes append tombstones.  When the
garbage ratio (dead records / total records) exceeds a threshold, the
log compacts by rewriting only live records — the standard
log-structured-store reclamation loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.datalet.base import Engine
from repro.errors import KeyNotFound

__all__ = ["LogEngine", "LogRecord"]


@dataclass(frozen=True)
class LogRecord:
    """One entry in the append log.  ``value is None`` marks a tombstone."""

    key: str
    value: Optional[str]

    @property
    def is_tombstone(self) -> bool:
        return self.value is None

    def size_bytes(self) -> int:
        return 16 + len(self.key) + (len(self.value) if self.value is not None else 0)


class LogEngine(Engine):
    """Append-only log + hash index."""

    kind = "log"
    supports_scan = False

    def __init__(self, gc_threshold: float = 0.5, min_gc_records: int = 1024):
        if not 0.0 < gc_threshold <= 1.0:
            raise ValueError(f"gc_threshold must be in (0, 1], got {gc_threshold}")
        self._log: List[LogRecord] = []
        self._index: Dict[str, int] = {}
        self._gc_threshold = gc_threshold
        self._min_gc_records = min_gc_records
        self.compactions = 0
        self.bytes_appended = 0

    # -- write path ----------------------------------------------------
    def _append(self, record: LogRecord) -> int:
        offset = len(self._log)
        self._log.append(record)
        self.bytes_appended += record.size_bytes()
        return offset

    def put(self, key: str, value: str) -> None:
        self._index[key] = self._append(LogRecord(key, value))
        self._maybe_compact()

    def delete(self, key: str) -> None:
        if key not in self._index:
            raise KeyNotFound(key)
        self._append(LogRecord(key, None))
        del self._index[key]
        self._maybe_compact()

    # -- read path -------------------------------------------------------
    def get(self, key: str) -> str:
        try:
            offset = self._index[key]
        except KeyError:
            raise KeyNotFound(key) from None
        record = self._log[offset]
        assert record.key == key and record.value is not None, "index out of sync"
        return record.value

    def __len__(self) -> int:
        return len(self._index)

    def items(self) -> Iterator[Tuple[str, str]]:
        for key, offset in self._index.items():
            value = self._log[offset].value
            assert value is not None
            yield key, value

    # -- garbage collection ------------------------------------------------
    def garbage_ratio(self) -> float:
        if not self._log:
            return 0.0
        return 1.0 - len(self._index) / len(self._log)

    def _maybe_compact(self) -> None:
        if len(self._log) >= self._min_gc_records and self.garbage_ratio() > self._gc_threshold:
            self.compact()

    def compact(self) -> None:
        """Rewrite only live records; offsets are re-indexed."""
        new_log: List[LogRecord] = []
        new_index: Dict[str, int] = {}
        for key, offset in self._index.items():
            new_index[key] = len(new_log)
            new_log.append(self._log[offset])
        self._log = new_log
        self._index = new_index
        self.compactions += 1

    def stats(self) -> Dict[str, float]:
        return {
            "live_keys": float(len(self._index)),
            "log_records": float(len(self._log)),
            "garbage_ratio": self.garbage_ratio(),
            "compactions": float(self.compactions),
            "bytes_appended": float(self.bytes_appended),
        }
