"""tLSM: log-structured merge-tree datalet.

Implements the classic LSM write path the paper's Fig 6 relies on:
mutations land in a mutable **memtable**; when it fills, it is flushed
as an immutable sorted **SSTable**; when too many SSTables accumulate,
a size-tiered **compaction** merges them (newest version wins,
tombstones dropped once the merge covers every table).  Reads probe the
memtable then SSTables newest-first — the read amplification that makes
LSM slower than a B+-tree for read-heavy workloads.
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterator, List, Optional, Tuple

from repro.datalet.base import Engine
from repro.datalet.bloom import BloomFilter
from repro.errors import KeyNotFound

__all__ = ["LSMEngine", "SSTable"]

#: sentinel distinguishing "deleted" from "absent" inside tables.
_TOMBSTONE = None


class SSTable:
    """Immutable sorted run of ``(key, value-or-None)`` pairs, fronted
    by a Bloom filter so point reads skip tables that cannot contain
    the key (LevelDB-style read-amplification control)."""

    __slots__ = ("keys", "values", "bloom")

    def __init__(self, entries: List[Tuple[str, Optional[str]]]):
        # entries must be sorted by key and duplicate-free
        self.keys = [k for k, _ in entries]
        self.values = [v for _, v in entries]
        self.bloom = BloomFilter.build(self.keys) if self.keys else None

    def __len__(self) -> int:
        return len(self.keys)

    def lookup(self, key: str) -> Tuple[bool, Optional[str]]:
        """Return (present, value).  value None with present=True is a
        tombstone."""
        if self.bloom is None or not self.bloom.might_contain(key):
            return False, None
        i = bisect.bisect_left(self.keys, key)
        if i < len(self.keys) and self.keys[i] == key:
            return True, self.values[i]
        return False, None

    def range(self, start: str, end: str) -> Iterator[Tuple[str, Optional[str]]]:
        i = bisect.bisect_left(self.keys, start)
        while i < len(self.keys) and self.keys[i] < end:
            yield self.keys[i], self.values[i]
            i += 1


class LSMEngine(Engine):
    """Memtable + size-tiered SSTables."""

    kind = "lsm"
    supports_scan = True

    def __init__(self, memtable_limit: int = 4096, max_sstables: int = 6):
        if memtable_limit < 1:
            raise ValueError(f"memtable_limit must be >= 1, got {memtable_limit}")
        if max_sstables < 1:
            raise ValueError(f"max_sstables must be >= 1, got {max_sstables}")
        self._mem: Dict[str, Optional[str]] = {}
        self._tables: List[SSTable] = []  # newest first
        self._memtable_limit = memtable_limit
        self._max_sstables = max_sstables
        self.flushes = 0
        self.compactions = 0

    # -- write path ---------------------------------------------------
    def put(self, key: str, value: str) -> None:
        self._mem[key] = value
        self._maybe_flush()

    def delete(self, key: str) -> None:
        if not self.contains(key):
            raise KeyNotFound(key)
        self._mem[key] = _TOMBSTONE
        self._maybe_flush()

    def _maybe_flush(self) -> None:
        if len(self._mem) >= self._memtable_limit:
            self.flush()
        if len(self._tables) > self._max_sstables:
            self.compact()

    def flush(self) -> None:
        """Freeze the memtable into a new SSTable."""
        if not self._mem:
            return
        entries = sorted(self._mem.items())
        self._tables.insert(0, SSTable(entries))
        self._mem = {}
        self.flushes += 1

    def compact(self) -> None:
        """Merge every SSTable into one; tombstones are dropped because
        the merge covers the full history below the memtable."""
        merged: Dict[str, Optional[str]] = {}
        for table in reversed(self._tables):  # oldest first; newer overwrite
            for k, v in zip(table.keys, table.values):
                merged[k] = v
        live = sorted((k, v) for k, v in merged.items() if v is not _TOMBSTONE)
        self._tables = [SSTable(live)] if live else []
        self.compactions += 1

    # -- read path ------------------------------------------------------
    def get(self, key: str) -> str:
        if key in self._mem:
            value = self._mem[key]
            if value is _TOMBSTONE:
                raise KeyNotFound(key)
            return value
        for table in self._tables:
            present, value = table.lookup(key)
            if present:
                if value is _TOMBSTONE:
                    raise KeyNotFound(key)
                return value
        raise KeyNotFound(key)

    def contains(self, key: str) -> bool:
        try:
            self.get(key)
            return True
        except KeyNotFound:
            return False

    def _merged_view(self) -> Dict[str, Optional[str]]:
        view: Dict[str, Optional[str]] = {}
        for table in reversed(self._tables):
            for k, v in zip(table.keys, table.values):
                view[k] = v
        view.update(self._mem)
        return view

    def __len__(self) -> int:
        return sum(1 for _, v in self._merged_view().items() if v is not _TOMBSTONE)

    def items(self) -> Iterator[Tuple[str, str]]:
        for k, v in self._merged_view().items():
            if v is not _TOMBSTONE:
                yield k, v

    def scan(self, start: str, end: str, limit: Optional[int] = None) -> List[Tuple[str, str]]:
        """K-way merge over memtable + SSTables, newest version wins."""
        view: Dict[str, Optional[str]] = {}
        for table in reversed(self._tables):
            for k, v in table.range(start, end):
                view[k] = v
        for k, v in self._mem.items():
            if start <= k < end:
                view[k] = v
        out = sorted((k, v) for k, v in view.items() if v is not _TOMBSTONE)
        return out[:limit] if limit is not None else out

    def stats(self) -> Dict[str, float]:
        return {
            "live_keys": float(len(self)),
            "memtable_keys": float(len(self._mem)),
            "sstables": float(len(self._tables)),
            "flushes": float(self.flushes),
            "compactions": float(self.compactions),
        }
