"""Bloom filter for SSTable membership tests.

Real LSM engines (LevelDB — the engine behind tSSDB — and successors)
attach a Bloom filter to every SSTable so point reads skip tables that
cannot contain the key, taming read amplification.  This is a textbook
double-hashing Bloom filter (Kirsch-Mitzenmacher): k index functions
derived from two base hashes.
"""

from __future__ import annotations

import math
from typing import Iterable

from repro.hashing import stable_hash

__all__ = ["BloomFilter"]


class BloomFilter:
    """Fixed-size bit-array Bloom filter."""

    def __init__(self, expected_items: int, false_positive_rate: float = 0.01):
        if expected_items < 1:
            raise ValueError(f"expected_items must be >= 1, got {expected_items}")
        if not 0.0 < false_positive_rate < 1.0:
            raise ValueError(f"false_positive_rate must be in (0,1), got {false_positive_rate}")
        # optimal sizing: m = -n ln p / (ln 2)^2 ; k = m/n ln 2
        self.m = max(8, int(-expected_items * math.log(false_positive_rate) / (math.log(2) ** 2)))
        self.k = max(1, round(self.m / expected_items * math.log(2)))
        self._bits = bytearray((self.m + 7) // 8)
        self.items = 0

    def _indexes(self, key: str) -> Iterable[int]:
        h = stable_hash(key)
        h1 = h & 0xFFFFFFFF
        h2 = (h >> 32) | 1  # odd, so strides cover the table
        for i in range(self.k):
            yield (h1 + i * h2) % self.m

    def add(self, key: str) -> None:
        for idx in self._indexes(key):
            self._bits[idx >> 3] |= 1 << (idx & 7)
        self.items += 1

    def might_contain(self, key: str) -> bool:
        """False means *definitely absent*; True means "probably"."""
        return all(self._bits[i >> 3] & (1 << (i & 7)) for i in self._indexes(key))

    @classmethod
    def build(cls, keys: Iterable[str], false_positive_rate: float = 0.01) -> "BloomFilter":
        keys = list(keys)
        bloom = cls(max(1, len(keys)), false_positive_rate)
        for k in keys:
            bloom.add(k)
        return bloom

    def __len__(self) -> int:
        return self.items
