"""Datalet API: the single-server KV store contract.

A *datalet* is the user-supplied half of BESPOKV (paper §III-A): a
single-node store exposing ``Put``/``Get``/``Del`` (Table II), oblivious
to replication, topology or consistency.  Here it splits into:

* a **storage engine** (:class:`Engine`) — a plain synchronous data
  structure, unit- and property-testable in isolation; and
* a **datalet actor** (:class:`DataletActor`) — the message-facing
  wrapper that serves the datalet protocol and charges engine-specific
  CPU costs in simulation.

Engines additionally support ``snapshot``/``restore`` which the failover
manager uses to rebuild a replica on a standby node, mirroring the
paper's "recovers the data from one of the datalets".
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import KeyNotFound
from repro.net.actor import Actor
from repro.net.message import Message

__all__ = ["Engine", "DataletActor"]


class Engine(ABC):
    """Synchronous single-node storage engine."""

    #: cost-model kind ("ht", "lsm", "log", "mt", "ssdb", "redis").
    kind: str = ""
    #: whether :meth:`scan` is supported (tMT/tLSM/tSSDB are; tHT is not).
    supports_scan: bool = False

    @abstractmethod
    def put(self, key: str, value: str) -> None:
        """Insert or overwrite ``key``."""

    @abstractmethod
    def get(self, key: str) -> str:
        """Return the value for ``key`` or raise :class:`KeyNotFound`."""

    @abstractmethod
    def delete(self, key: str) -> None:
        """Remove ``key``; raise :class:`KeyNotFound` if absent."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of live keys."""

    @abstractmethod
    def items(self) -> Iterator[Tuple[str, str]]:
        """Iterate live ``(key, value)`` pairs in unspecified order."""

    def contains(self, key: str) -> bool:
        try:
            self.get(key)
            return True
        except KeyNotFound:
            return False

    def scan(self, start: str, end: str, limit: Optional[int] = None) -> List[Tuple[str, str]]:
        """Return pairs with ``start <= key < end`` in key order.

        Only ordered engines implement this; the default raises to match
        a hash-table backend rejecting range queries.
        """
        raise NotImplementedError(f"{self.kind} engine does not support range scans")

    # -- recovery support -------------------------------------------------
    def snapshot(self) -> Dict[str, str]:
        """Full copy of live data (sent to a standby during failover)."""
        return dict(self.items())

    def restore(self, data: Dict[str, str], reset: bool = False) -> None:
        """Bulk-load a snapshot into an empty or existing engine.

        ``reset=True`` clears existing state first, making the engine
        *exactly* the snapshot — required when a rejoining node with
        recovered-but-stale state adopts a peer's authoritative copy
        (a plain bulk-load would resurrect its stale keys).
        """
        if reset:
            self.clear()
        for k, v in data.items():
            self.put(k, v)

    def clear(self) -> None:
        """Remove every live key (default: delete one by one)."""
        for k in sorted(k for k, _ in self.items()):
            self.delete(k)

    def stats(self) -> Dict[str, float]:
        """Engine-specific internals (levels, garbage ratio, ...)."""
        return {"live_keys": float(len(self))}


class DataletActor(Actor):
    """Message front-end for an :class:`Engine`.

    Understands the datalet protocol:

    ========= ============================== =========================
    request    payload                        response
    ========= ============================== =========================
    ``put``    ``key``, ``val``               ``ok``
    ``get``    ``key``                        ``value`` {``val``} / ``error``
    ``del``    ``key``                        ``ok`` / ``error``
    ``scan``   ``start``, ``end``, ``limit``  ``range`` {``items``}
    ``snapshot``                              ``snapshot`` {``data``}
    ``restore`` ``data``                      ``ok``
    ``stats``                                 ``stats`` {...}
    ========= ============================== =========================
    """

    def __init__(self, node_id: str, engine: Engine, wal=None):
        super().__init__(node_id)
        self.engine = engine
        self.kind = engine.kind
        #: optional :class:`~repro.datalet.wal.WriteAheadLog`.  When
        #: set, every mutation is logged (and fsynced per the WAL's
        #: group-commit policy) *before* it is acknowledged, and the
        #: log is compacted into a snapshot periodically.  The extra
        #: CPU shows up in :meth:`service_demand` — durability is not
        #: free (the durability-tax benchmark measures exactly this).
        self.wal = wal
        self.ops = {"put": 0, "get": 0, "del": 0, "scan": 0}
        self.register("put", self._on_put)
        self.register("get", self._on_get)
        self.register("del", self._on_del)
        self.register("scan", self._on_scan)
        self.register("apply_batch", self._on_apply_batch)
        self.register("snapshot", self._on_snapshot)
        self.register("restore", self._on_restore)
        self.register("stats", self._on_stats)

    def metrics_group(self) -> Dict[str, float]:
        out = {f"ops_{k}": float(v) for k, v in self.ops.items()}
        if self.wal is not None:
            out.update(self.wal.stats())
        return out

    # -- cost accounting ---------------------------------------------------
    def _wal_cost(self, costs, mutations: int) -> float:
        """CPU charge for logging ``mutations`` ops: per-record append
        plus the fsync, amortized across the group-commit window (the
        charge is deterministic regardless of where in the window this
        message lands)."""
        if self.wal is None or mutations <= 0:
            return 0.0
        per_op = costs.scaled("wal_append_cost") + (
            costs.scaled("wal_fsync_cost") / self.wal.sync_every
        )
        return per_op * mutations

    def service_demand(self, msg: Message, costs) -> float:
        op = msg.type
        if op in ("put", "get", "del"):
            base = costs.datalet_cost(self.kind, op)
            if op in ("put", "del"):
                base += self._wal_cost(costs, 1)
            return base
        if op == "scan":
            limit = msg.payload.get("limit") or 100
            try:
                return costs.datalet_cost(self.kind, "scan", items=limit)
            except KeyError:
                return 0.0
        if op == "apply_batch":
            base = sum(
                costs.datalet_cost(self.kind, "put" if e["op"] == "put" else "del")
                for e in msg.payload["ops"]
            )
            n_ops = len(msg.payload["ops"])
            if self.wal is not None and n_ops:
                base += costs.scaled("wal_append_cost") * n_ops
                if self.wal.sync_every == 1:
                    # WAL group commit: the whole batch shares one fsync
                    base += costs.scaled("wal_fsync_cost")
                else:
                    base += (costs.scaled("wal_fsync_cost") * n_ops
                             / self.wal.sync_every)
            return base
        return 0.0

    # -- handlers ------------------------------------------------------
    def _log_mutation(self, op: str, key: str, value: Optional[str] = None) -> None:
        """WAL the mutation before it is acknowledged.

        The append syncs per the WAL's group-commit policy, so with
        ``sync_every=1`` every ack implies the record is on disk.
        """
        if self.wal is not None:
            self.wal.append(op, key, value)

    def _maybe_compact(self) -> None:
        """Fold the log into a snapshot when due.  Called *after* the
        mutation is applied, so the snapshot's data matches its seq."""
        if self.wal is not None and self.wal.wants_snapshot:
            self.wal.install_snapshot(self.engine.snapshot())

    def _on_put(self, msg: Message) -> None:
        self._log_mutation("put", msg.payload["key"], msg.payload["val"])
        self.engine.put(msg.payload["key"], msg.payload["val"])
        self.ops["put"] += 1
        self._maybe_compact()
        self.respond(msg, "ok")

    def _on_get(self, msg: Message) -> None:
        self.ops["get"] += 1
        try:
            val = self.engine.get(msg.payload["key"])
        except KeyNotFound:
            self.respond(msg, "error", {"error": "not_found", "key": msg.payload["key"]})
            return
        self.respond(msg, "value", {"val": val})

    def _on_del(self, msg: Message) -> None:
        self.ops["del"] += 1
        if self.wal is not None and not self.engine.contains(msg.payload["key"]):
            # nothing to durably remove; don't burn a log record
            self.respond(msg, "error", {"error": "not_found", "key": msg.payload["key"]})
            return
        self._log_mutation("del", msg.payload["key"])
        try:
            self.engine.delete(msg.payload["key"])
        except KeyNotFound:
            self.respond(msg, "error", {"error": "not_found", "key": msg.payload["key"]})
            return
        self._maybe_compact()
        self.respond(msg, "ok")

    def _on_scan(self, msg: Message) -> None:
        self.ops["scan"] += 1
        try:
            items = self.engine.scan(
                msg.payload["start"], msg.payload["end"], msg.payload.get("limit")
            )
        except NotImplementedError as e:
            self.respond(msg, "error", {"error": str(e)})
            return
        self.respond(msg, "range", {"items": items})

    def _on_apply_batch(self, msg: Message) -> None:
        """Apply replicated mutations *in order* within one message —
        replication paths use this instead of per-op messages so network
        jitter can never reorder a delete ahead of its put.  Deletes of
        absent keys are tolerated (a lagging replica may see a delete
        for a put it never received)."""
        applied = 0
        # accept-path callers (the MS head/master batches its own local
        # applies) need per-op outcomes to answer each client correctly
        results = [] if msg.payload.get("want_results") else None
        if self.wal is not None:
            # group commit: the members' log records share one fsync
            # (end_commit_group), paid before the batch is acked below
            self.wal.begin_commit_group()
        try:
            for entry in msg.payload["ops"]:
                try:
                    if entry["op"] == "put":
                        self._log_mutation("put", entry["key"], entry["val"])
                        self.engine.put(entry["key"], entry["val"])
                        self.ops["put"] += 1
                    else:
                        if self.wal is not None and not self.engine.contains(entry["key"]):
                            if results is not None:
                                results.append("not_found")
                            continue
                        self._log_mutation("del", entry["key"])
                        self.engine.delete(entry["key"])
                        self.ops["del"] += 1
                    applied += 1
                except KeyNotFound:
                    if results is not None:
                        results.append("not_found")
                    continue
                if results is not None:
                    results.append("ok")
        finally:
            if self.wal is not None:
                self.wal.end_commit_group()
        self._maybe_compact()
        payload: Dict[str, object] = {"applied": applied}
        if results is not None:
            payload["results"] = results
        self.respond(msg, "ok", payload)

    def _on_snapshot(self, msg: Message) -> None:
        self.respond(msg, "snapshot", {"data": self.engine.snapshot()})

    def _on_restore(self, msg: Message) -> None:
        reset = bool(msg.payload.get("reset", False))
        data = msg.payload["data"]
        self.engine.restore({k: data[k] for k in sorted(data)}, reset=reset)
        if self.wal is not None:
            # an adopted snapshot is a new durable baseline: everything
            # the log held is superseded (or, for a reset, stale)
            self.wal.install_snapshot(self.engine.snapshot())
        self.respond(msg, "ok")

    def _on_stats(self, msg: Message) -> None:
        stats = dict(self.engine.stats())
        stats.update({f"ops_{k}": float(v) for k, v in self.ops.items()})
        self.respond(msg, "stats", stats)

    # -- model-checker introspection -----------------------------------
    def snapshot_state(self):
        s = super().snapshot_state()
        # stored data is *the* observable state of a datalet; op counters
        # are accounting and stay out (see Actor.snapshot_state)
        s["data"] = dict(self.engine.snapshot())
        return s
