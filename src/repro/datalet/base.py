"""Datalet API: the single-server KV store contract.

A *datalet* is the user-supplied half of BESPOKV (paper §III-A): a
single-node store exposing ``Put``/``Get``/``Del`` (Table II), oblivious
to replication, topology or consistency.  Here it splits into:

* a **storage engine** (:class:`Engine`) — a plain synchronous data
  structure, unit- and property-testable in isolation; and
* a **datalet actor** (:class:`DataletActor`) — the message-facing
  wrapper that serves the datalet protocol and charges engine-specific
  CPU costs in simulation.

Engines additionally support ``snapshot``/``restore`` which the failover
manager uses to rebuild a replica on a standby node, mirroring the
paper's "recovers the data from one of the datalets".
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import KeyNotFound
from repro.net.actor import Actor
from repro.net.message import Message

__all__ = ["Engine", "DataletActor"]


class Engine(ABC):
    """Synchronous single-node storage engine."""

    #: cost-model kind ("ht", "lsm", "log", "mt", "ssdb", "redis").
    kind: str = ""
    #: whether :meth:`scan` is supported (tMT/tLSM/tSSDB are; tHT is not).
    supports_scan: bool = False

    @abstractmethod
    def put(self, key: str, value: str) -> None:
        """Insert or overwrite ``key``."""

    @abstractmethod
    def get(self, key: str) -> str:
        """Return the value for ``key`` or raise :class:`KeyNotFound`."""

    @abstractmethod
    def delete(self, key: str) -> None:
        """Remove ``key``; raise :class:`KeyNotFound` if absent."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of live keys."""

    @abstractmethod
    def items(self) -> Iterator[Tuple[str, str]]:
        """Iterate live ``(key, value)`` pairs in unspecified order."""

    def contains(self, key: str) -> bool:
        try:
            self.get(key)
            return True
        except KeyNotFound:
            return False

    def scan(self, start: str, end: str, limit: Optional[int] = None) -> List[Tuple[str, str]]:
        """Return pairs with ``start <= key < end`` in key order.

        Only ordered engines implement this; the default raises to match
        a hash-table backend rejecting range queries.
        """
        raise NotImplementedError(f"{self.kind} engine does not support range scans")

    # -- recovery support -------------------------------------------------
    def snapshot(self) -> Dict[str, str]:
        """Full copy of live data (sent to a standby during failover)."""
        return dict(self.items())

    def restore(self, data: Dict[str, str]) -> None:
        """Bulk-load a snapshot into an empty or existing engine."""
        for k, v in data.items():
            self.put(k, v)

    def stats(self) -> Dict[str, float]:
        """Engine-specific internals (levels, garbage ratio, ...)."""
        return {"live_keys": float(len(self))}


class DataletActor(Actor):
    """Message front-end for an :class:`Engine`.

    Understands the datalet protocol:

    ========= ============================== =========================
    request    payload                        response
    ========= ============================== =========================
    ``put``    ``key``, ``val``               ``ok``
    ``get``    ``key``                        ``value`` {``val``} / ``error``
    ``del``    ``key``                        ``ok`` / ``error``
    ``scan``   ``start``, ``end``, ``limit``  ``range`` {``items``}
    ``snapshot``                              ``snapshot`` {``data``}
    ``restore`` ``data``                      ``ok``
    ``stats``                                 ``stats`` {...}
    ========= ============================== =========================
    """

    def __init__(self, node_id: str, engine: Engine):
        super().__init__(node_id)
        self.engine = engine
        self.kind = engine.kind
        self.ops = {"put": 0, "get": 0, "del": 0, "scan": 0}
        self.register("put", self._on_put)
        self.register("get", self._on_get)
        self.register("del", self._on_del)
        self.register("scan", self._on_scan)
        self.register("apply_batch", self._on_apply_batch)
        self.register("snapshot", self._on_snapshot)
        self.register("restore", self._on_restore)
        self.register("stats", self._on_stats)

    def metrics_group(self) -> Dict[str, float]:
        return {f"ops_{k}": float(v) for k, v in self.ops.items()}

    # -- cost accounting ---------------------------------------------------
    def service_demand(self, msg: Message, costs) -> float:
        op = msg.type
        if op in ("put", "get", "del"):
            return costs.datalet_cost(self.kind, op)
        if op == "scan":
            limit = msg.payload.get("limit") or 100
            try:
                return costs.datalet_cost(self.kind, "scan", items=limit)
            except KeyError:
                return 0.0
        if op == "apply_batch":
            return sum(
                costs.datalet_cost(self.kind, "put" if e["op"] == "put" else "del")
                for e in msg.payload["ops"]
            )
        return 0.0

    # -- handlers ------------------------------------------------------
    def _on_put(self, msg: Message) -> None:
        self.engine.put(msg.payload["key"], msg.payload["val"])
        self.ops["put"] += 1
        self.respond(msg, "ok")

    def _on_get(self, msg: Message) -> None:
        self.ops["get"] += 1
        try:
            val = self.engine.get(msg.payload["key"])
        except KeyNotFound:
            self.respond(msg, "error", {"error": "not_found", "key": msg.payload["key"]})
            return
        self.respond(msg, "value", {"val": val})

    def _on_del(self, msg: Message) -> None:
        self.ops["del"] += 1
        try:
            self.engine.delete(msg.payload["key"])
        except KeyNotFound:
            self.respond(msg, "error", {"error": "not_found", "key": msg.payload["key"]})
            return
        self.respond(msg, "ok")

    def _on_scan(self, msg: Message) -> None:
        self.ops["scan"] += 1
        try:
            items = self.engine.scan(
                msg.payload["start"], msg.payload["end"], msg.payload.get("limit")
            )
        except NotImplementedError as e:
            self.respond(msg, "error", {"error": str(e)})
            return
        self.respond(msg, "range", {"items": items})

    def _on_apply_batch(self, msg: Message) -> None:
        """Apply replicated mutations *in order* within one message —
        replication paths use this instead of per-op messages so network
        jitter can never reorder a delete ahead of its put.  Deletes of
        absent keys are tolerated (a lagging replica may see a delete
        for a put it never received)."""
        applied = 0
        for entry in msg.payload["ops"]:
            try:
                if entry["op"] == "put":
                    self.engine.put(entry["key"], entry["val"])
                    self.ops["put"] += 1
                else:
                    self.engine.delete(entry["key"])
                    self.ops["del"] += 1
                applied += 1
            except KeyNotFound:
                pass
        self.respond(msg, "ok", {"applied": applied})

    def _on_snapshot(self, msg: Message) -> None:
        self.respond(msg, "snapshot", {"data": self.engine.snapshot()})

    def _on_restore(self, msg: Message) -> None:
        self.engine.restore(msg.payload["data"])
        self.respond(msg, "ok")

    def _on_stats(self, msg: Message) -> None:
        stats = dict(self.engine.stats())
        stats.update({f"ops_{k}": float(v) for k, v in self.ops.items()})
        self.respond(msg, "stats", stats)

    # -- model-checker introspection -----------------------------------
    def snapshot_state(self):
        s = super().snapshot_state()
        # stored data is *the* observable state of a datalet; op counters
        # are accounting and stay out (see Actor.snapshot_state)
        s["data"] = dict(self.engine.snapshot())
        return s
