"""Hot-key load balancing via shadow replication (paper App C-C).

"Load imbalance due to hot keys can be solved by integrating a small
metadata cache at BESPOKV's client library to keep track of hot keys;
once the popularity of hot keys exceeds a certain pre-defined
threshold, the client library replicates this key on a shadow server
that is rehashed by adding a suffix to the key."

:class:`HotKeyReplicatingClient` wraps a :class:`~repro.client.kv.KVClient`:

* a small popularity counter tracks per-key read rates;
* once a key crosses ``threshold`` reads it becomes *hot*: the client
  writes ``n_shadows`` copies under suffixed keys (each rehashing to a
  different shard with high probability);
* subsequent reads of a hot key pick a random replica among the
  original and its shadows, spreading the load; a missing/stale shadow
  falls back to the primary and is refreshed;
* writes to a hot key go write-through to the primary and every shadow
  (eventual consistency across shadows, like the rest of the EC paths).
"""

from __future__ import annotations

from typing import Dict, Set

from repro.client.kv import KVClient
from repro.errors import KeyNotFound
from repro.sim import SimFuture

__all__ = ["HotKeyReplicatingClient"]


class HotKeyReplicatingClient:
    """Client-side hot-key cache + shadow replication."""

    def __init__(
        self,
        inner: KVClient,
        threshold: int = 64,
        n_shadows: int = 3,
        counter_capacity: int = 1024,
    ):
        self.inner = inner
        self.sim = inner.sim
        self.threshold = threshold
        self.n_shadows = n_shadows
        self.counter_capacity = counter_capacity
        self._counts: Dict[str, int] = {}
        self._hot: Set[str] = set()
        # Shadow-replica choice comes from a named registry stream so
        # it derives from the run seed like every other client draw.
        self._rng = inner.cluster.rng.stream(f"hotkey.{inner.name}")
        self.shadow_reads = 0
        self.promotions = 0

    # ------------------------------------------------------------------
    def connect(self) -> SimFuture:
        return self.inner.connect()

    @staticmethod
    def shadow_key(key: str, i: int) -> str:
        return f"{key}#shadow{i}"

    def is_hot(self, key: str) -> bool:
        return key in self._hot

    def _note_read(self, key: str) -> bool:
        """Count a read; returns True if the key just became hot."""
        if key in self._hot:
            return False
        if len(self._counts) >= self.counter_capacity and key not in self._counts:
            # bounded metadata cache: decay everything instead of
            # tracking unboundedly (approximate, like a count sketch)
            self._counts = {k: c // 2 for k, c in self._counts.items() if c > 1}
        count = self._counts.get(key, 0) + 1
        self._counts[key] = count
        if count >= self.threshold:
            self._hot.add(key)
            self._counts.pop(key, None)
            self.promotions += 1
            return True
        return False

    # ------------------------------------------------------------------
    def get(self, key: str, **kw) -> SimFuture:
        def proc():
            promoted = self._note_read(key)
            if promoted:
                # replicate onto shadow servers
                value = yield self.inner.get(key, **kw)
                yield self.sim.gather([
                    self.inner.put(self.shadow_key(key, i), value)
                    for i in range(self.n_shadows)
                ])
                return value
            if key in self._hot:
                choice = self._rng.randrange(self.n_shadows + 1)
                if choice > 0:
                    self.shadow_reads += 1
                    try:
                        value = yield self.inner.get(self.shadow_key(key, choice - 1), **kw)
                        return value
                    except KeyNotFound:
                        # stale/missing shadow: fall back and refresh
                        value = yield self.inner.get(key, **kw)
                        yield self.inner.put(self.shadow_key(key, choice - 1), value)
                        return value
            value = yield self.inner.get(key, **kw)
            return value

        return self.sim.spawn(proc())

    def put(self, key: str, val: str, **kw) -> SimFuture:
        def proc():
            yield self.inner.put(key, val, **kw)
            if key in self._hot:
                # write-through to every shadow
                yield self.sim.gather([
                    self.inner.put(self.shadow_key(key, i), val)
                    for i in range(self.n_shadows)
                ])

        return self.sim.spawn(proc())

    def delete(self, key: str, **kw) -> SimFuture:
        def proc():
            yield self.inner.delete(key, **kw)
            if key in self._hot:
                self._hot.discard(key)
                for i in range(self.n_shadows):
                    try:
                        yield self.inner.delete(self.shadow_key(key, i))
                    except KeyNotFound:
                        pass

        return self.sim.spawn(proc())

    def scan(self, *a, **kw) -> SimFuture:
        return self.inner.scan(*a, **kw)
