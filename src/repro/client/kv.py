"""BESPOKV client library (paper §III "Client library", Table II).

The client caches the coordinator's cluster map, partitions keys across
shards (consistent hashing by default, range partitioning for the
range-query service), and routes each operation to the right controlet
for the shard's topology/consistency combination:

* MS+SC — writes to the chain head, strong reads to the tail;
* MS+EC — writes to the master, reads to any replica;
* AA+*  — any active for anything.

Stale routing shows up as ``redirect``/``retired`` errors or timeouts;
the client then refreshes its map and retries with jittered backoff —
this is the mechanism behind the throughput dip-and-recover shape in
the transition and failover experiments (Figs 10 & 16).

All operations return :class:`~repro.sim.kernel.SimFuture` so that
closed-loop load generators can drive thousands of concurrent client
sessions inside the simulation.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.types import ClusterMap, Consistency, ShardInfo, Topology
from repro.obs import RequestContext
from repro.errors import (
    BespoError,
    KeyNotFound,
    RequestTimeout,
    ShardUnavailable,
    TableNotFound,
)
from repro.hashing import HashRing, RangePartitioner
from repro.net.simnet import ClientPort, SimCluster
from repro.sim import SimFuture

__all__ = ["KVClient"]


class KVClient:
    """Routing, retrying KV client over a :class:`SimCluster`."""

    def __init__(
        self,
        cluster: SimCluster,
        name: str,
        coordinator: "str | Sequence[str]" = "coordinator",
        partitioner: str = "hash",
        op_timeout: float = 0.5,
        max_retries: int = 6,
        retry_backoff: float = 0.2,
        retry_backoff_cap: float = 2.0,
        recorder: Optional[Any] = None,
    ):
        if partitioner not in ("hash", "range"):
            raise BespoError(f"unknown partitioner {partitioner!r}")
        self.cluster = cluster
        self.sim = cluster.sim
        self.name = name
        self.port: ClientPort = cluster.add_port(name)
        #: coordinator preference list; on timeout the client fails over
        #: to the next entry (primary/standby resilience, §VII).
        self.coordinators: List[str] = (
            [coordinator] if isinstance(coordinator, str) else list(coordinator)
        )
        if not self.coordinators:
            raise BespoError("need at least one coordinator address")
        self.partitioner = partitioner
        self.op_timeout = op_timeout
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        self.retry_backoff_cap = retry_backoff_cap
        #: optional chaos history recorder (duck-typed; see
        #: :class:`repro.chaos.history.HistoryRecorder`).  Records every
        #: put/get/delete invocation and its outcome — including
        #: timeouts and exhausted retries — for the consistency oracle.
        self.recorder = recorder
        self.map: Optional[ClusterMap] = None
        self._ring: Optional[HashRing] = None
        self._range: Optional[RangePartitioner] = None
        #: ring generation mirrored from the coordinator's ClusterView;
        #: stamped on every op so controlets (and the DLM / sequencer
        #: backstops) can fence stale-routed requests during a reshard.
        self._ring_gen = 0
        #: open reshard window descriptor + the old ring: while set,
        #: writes for moved keys dual-route to both owners and reads
        #: prefer the new owner with fallback to the old one.
        self._reshard: Optional[Dict[str, Any]] = None
        self._old_ring: Optional[HashRing] = None
        # Named stream from the registry, not a derived ad-hoc Random:
        # the client's jitter draws replay bit-for-bit for a given seed.
        self._rng = cluster.rng.stream(f"client.{name}")
        self._tables: Dict[str, bool] = {}
        self.ops = 0
        self.retries = 0
        #: subset of ``retries`` caused by RPC timeouts — the fabric-
        #: indeterminate attempts the oracle must model as potential
        #: duplicates (routing bounces never execute and are excluded).
        self.timeouts = 0
        self.refreshes = 0
        #: request-id stream: one id per *operation* (not per attempt),
        #: so every retry of a mutation carries the same identity and
        #: controlets can deduplicate.  Disabled only by the overhead
        #: micro-benchmark's baseline mode.
        self._req_seq = itertools.count(1)
        self._stamp_rids = True
        self._latency: Dict[str, Any] = {}
        cluster.metrics.register_group(
            f"client.{name}",
            lambda: {
                "ops": self.ops,
                "retries": self.retries,
                "timeouts": self.timeouts,
                "refreshes": self.refreshes,
            },
        )

    # ------------------------------------------------------------------
    # topology cache
    # ------------------------------------------------------------------
    def connect(self) -> SimFuture:
        """Fetch the cluster map; must complete before the first op."""
        return self.sim.spawn(self._refresh_proc())

    def _refresh_proc(self):
        last_error: Optional[BespoError] = None
        for coord in list(self.coordinators):
            try:
                resp = yield self.port.request(
                    coord, "get_cluster_map", {}, timeout=self.op_timeout * 4
                )
            except RequestTimeout as e:
                last_error = e
                continue
            self._install_map(resp.payload)
            self.refreshes += 1
            if coord != self.coordinators[0]:
                # promote the responsive coordinator to the front
                self.coordinators.remove(coord)
                self.coordinators.insert(0, coord)
            return self.map.epoch
        raise last_error or BespoError("no coordinator reachable")

    def _install_map(self, payload: Dict[str, Any]) -> None:
        """Adopt a refresh response *incrementally*.

        The response is epoch-fenced: a map at or below the cached
        epoch (with an unchanged ring generation) re-versions nothing
        and is dropped without re-deriving any routing state.  When it
        does advance, the hash ring is patched with the membership
        *diff* — vnode placement is a pure function of the member name,
        so add/remove reproduces a rebuilt ring exactly (see
        ``HashRing.diff``) — instead of being rebuilt from scratch on
        every refresh.
        """
        epoch = int(payload["map"]["epoch"])
        view = payload.get("view") or {}
        gen = int(view.get("gen", 0))
        if self.map is not None:
            if epoch < self.map.epoch:
                return  # stale refresh (e.g. a lagging standby)
            if epoch == self.map.epoch and gen == self._ring_gen:
                return  # unchanged: keep every derived structure
        cmap = ClusterMap.from_dict(payload["map"])
        self.map = cmap
        new_ids = [str(s) for s in (view.get("ids") or cmap.shard_ids())]
        changed = True
        if self._ring is None:
            self._ring = HashRing(new_ids)
        else:
            want, have = set(new_ids), set(self._ring.members)
            changed = want != have
            for sid in sorted(have - want):
                self._ring.remove(sid)
            for sid in sorted(want - have):
                self._ring.add(sid)
        desc = view.get("reshard")
        if desc is not None:
            if self._reshard is None or self._reshard.get("gen") != desc.get("gen"):
                self._old_ring = HashRing([str(s) for s in desc["old"]])
            self._reshard = dict(desc)
        else:
            self._reshard = None
            self._old_ring = None
        self._ring_gen = gen
        if self.partitioner == "range" and (changed or self._range is None):
            self._range = RangePartitioner.uniform_alpha(cmap.shard_ids())

    def auto_refresh(self, interval: float) -> None:
        """Poll the coordinator for map updates (transition pickup)."""

        def loop():
            while True:
                yield interval
                try:
                    yield self.sim.spawn(self._refresh_proc())
                except BespoError:
                    pass  # coordinator briefly unreachable; keep old map

        self.sim.spawn(loop())

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def shard_for(self, key: str) -> ShardInfo:
        if self.map is None:
            raise BespoError("client not connected: call connect() first")
        if self.partitioner == "range":
            return self.map.shard(self._range.lookup(key))
        return self.map.shard(self._ring.lookup(key))

    def _route(
        self,
        shard: ShardInfo,
        op: str,
        consistency: Optional[str],
        prefer_kind: Optional[str],
    ) -> str:
        replicas = shard.ordered()
        if not replicas:
            raise ShardUnavailable(f"shard {shard.shard_id} has no replicas")
        if prefer_kind is not None:
            preferred = [r for r in replicas if r.datalet_kind == prefer_kind]
            if preferred:
                replicas = preferred
        write = op in ("put", "del")
        if shard.topology is Topology.AA:
            return self._rng.choice(replicas).controlet
        # Master-Slave
        if write:
            return shard.head.controlet
        if shard.consistency is Consistency.STRONG and consistency != "eventual":
            return shard.tail.controlet
        return self._rng.choice(replicas).controlet

    # ------------------------------------------------------------------
    # core op engine
    # ------------------------------------------------------------------
    def _begin_ctx(self, op: str, key: str, mutation: bool) -> Optional[RequestContext]:
        """Open the request envelope for one operation.

        Mutations always get a request id (retry dedup needs identity
        even with tracing off); a context with a trace id is only built
        when a :class:`~repro.obs.trace.SpanRecorder` is attached, so
        the disabled path costs one attribute check plus (for reads)
        nothing at all.
        """
        rid = None
        if mutation and self._stamp_rids:
            rid = f"{self.name}.{next(self._req_seq)}"
        obs = self.cluster.obs
        if obs is not None:
            return obs.new_trace(f"op:{op}", origin=self.name, req_id=rid)
        if rid is not None:
            return RequestContext(origin=self.name, req_id=rid)
        return None

    def _observe_latency(self, op: str, seconds: float) -> None:
        hist = self._latency.get(op)
        if hist is None:
            hist = self.cluster.metrics.histogram(
                f"client.{self.name}.latency_{op}")
            self._latency[op] = hist
        hist.observe(seconds)

    def _sleep(self, attempt: int, ctx: Optional[RequestContext]):
        """Backoff with a ``backoff`` span when the request is traced."""
        obs = self.cluster.obs
        span = None
        if obs is not None and ctx is not None and ctx.trace_id is not None:
            span = obs.begin(ctx, "backoff", self.name)
        yield self._backoff(attempt)
        if span is not None:
            obs.end(span, "ok")

    def _op_proc(
        self,
        op: str,
        key: str,
        payload: Dict[str, Any],
        consistency: Optional[str] = None,
        prefer_kind: Optional[str] = None,
        ctx: Optional[RequestContext] = None,
    ):
        self.ops += 1
        obs = self.cluster.obs
        start = self.sim.now
        status = "error"
        try:
            override_target: Optional[str] = None
            last_error: Optional[str] = None
            for attempt in range(self.max_retries + 1):
                shard = self.shard_for(key)
                # the ring generation rides along so servers (and the
                # DLM / sequencer backstops) can fence stale-routed
                # requests during a reshard window
                req_payload = dict(payload)
                req_payload["gen"] = self._ring_gen
                old_shard = self._reshard_old_shard(key, shard)
                if old_shard is not None:
                    outcome, result = yield from self._dual_attempt(
                        op, shard, old_shard, req_payload, consistency,
                        prefer_kind, ctx)
                    if outcome == "ok":
                        status = "ok"
                        return result
                    if outcome == "not_found":
                        status = "not_found"
                        raise KeyNotFound(key)
                    last_error = result
                    self.retries += 1
                    yield from self._sleep(attempt, ctx)
                    yield from self._refresh_best_effort()
                    continue
                target = override_target or self._route(shard, op, consistency, prefer_kind)
                override_target = None
                try:
                    resp = yield self.port.request(
                        target, op, req_payload, timeout=self.op_timeout, ctx=ctx
                    )
                except RequestTimeout:
                    last_error = f"timeout talking to {target}"
                    self.retries += 1
                    self.timeouts += 1
                    yield from self._sleep(attempt, ctx)
                    yield from self._refresh_best_effort()
                    continue
                if resp.type != "error":
                    status = "ok"
                    return resp
                err = resp.payload.get("error", "")
                if err == "not_found":
                    status = "not_found"
                    raise KeyNotFound(key)
                if err == "redirect":
                    override_target = resp.payload.get("to")
                    self.retries += 1
                    continue
                if err == "retired":
                    last_error = f"{target} retired"
                    self.retries += 1
                    yield from self._sleep(attempt, ctx)
                    yield from self._refresh_best_effort()
                    continue
                if err == "wrong_shard":
                    # stale routing across a reshard: refresh picks up
                    # the new ring (and any open window), then re-route
                    last_error = f"{target} is not the owner of {key!r}"
                    self.retries += 1
                    yield from self._sleep(attempt, ctx)
                    yield from self._refresh_best_effort()
                    continue
                raise BespoError(f"{op} {key!r} failed: {err}")
            raise ShardUnavailable(f"{op} {key!r} exhausted retries: {last_error}")
        finally:
            self._observe_latency(op, self.sim.now - start)
            if obs is not None and ctx is not None and ctx.trace_id is not None:
                obs.end_trace(ctx, status)

    def _refresh_best_effort(self):
        """Refresh the map inside a retry loop; a lost/failed refresh
        must not abort the operation — the stale map plus another retry
        is still a valid plan."""
        try:
            yield self.sim.spawn(self._refresh_proc())
        except BespoError:
            pass

    # ------------------------------------------------------------------
    # reshard-window dual routing
    # ------------------------------------------------------------------
    def _reshard_old_shard(
        self, key: str, new_shard: ShardInfo
    ) -> Optional[ShardInfo]:
        """During an open reshard window: the *old* ring's owner of
        ``key`` when it differs from the new owner (else None — the key
        is unaffected by the window)."""
        if self._reshard is None or self._old_ring is None:
            return None
        if self.partitioner != "hash" or self.map is None:
            return None
        old_sid = self._old_ring.lookup(key)
        if old_sid == new_shard.shard_id or old_sid not in self.map.shards:
            return None
        return self.map.shard(old_sid)

    def _leg(self, target: str, op: str, payload: Dict[str, Any],
             ctx: Optional[RequestContext]):
        """One dual-route leg: returns ``(kind, resp)`` instead of
        raising, so the caller can join two concurrent legs."""
        try:
            resp = yield self.port.request(
                target, op, dict(payload), timeout=self.op_timeout, ctx=ctx
            )
        except RequestTimeout:
            self.timeouts += 1
            return "timeout", None
        if resp.type != "error":
            return "ok", resp
        return resp.payload.get("error", "error"), resp

    def _dual_attempt(self, op, new_shard, old_shard, payload, consistency,
                      prefer_kind, ctx):
        """One attempt for a key the open reshard window *moves*.

        Reads prefer the new owner and fall back to the old one (the
        copy may not have migrated yet); mutations go to **both**
        owners under the same request id and complete only when both
        legs settle, so a concurrent reader observes the same committed
        value whichever owner serves it.  An old leg answering
        ``wrong_shard``/``retired`` is already fenced — the window
        closed under us — and the new leg alone decides.

        Returns ``("ok", resp)``, ``("not_found", None)`` or
        ``("retry", why)``.
        """
        new_target = self._route(new_shard, op, consistency, prefer_kind)
        old_target = self._route(old_shard, op, consistency, prefer_kind)
        if op == "get":
            kind, resp = yield from self._leg(new_target, op, payload, ctx)
            if kind == "ok":
                return "ok", resp
            if kind == "not_found":
                okind, oresp = yield from self._leg(old_target, op, payload, ctx)
                if okind == "ok":
                    return "ok", oresp
                if okind in ("not_found", "wrong_shard", "retired"):
                    return "not_found", None
                return "retry", f"old-leg read on {old_target}: {okind}"
            return "retry", f"new-leg read on {new_target}: {kind}"
        # put/del: both legs in flight at once (the shared rid lets
        # controlets deduplicate any later retry of either leg)
        new_fut = self.sim.spawn(self._leg(new_target, op, payload, ctx))
        old_fut = self.sim.spawn(self._leg(old_target, op, payload, ctx))
        nkind, nresp = yield new_fut
        okind, oresp = yield old_fut
        if okind not in ("ok", "not_found", "wrong_shard", "retired"):
            return "retry", f"old-leg {op} on {old_target}: {okind}"
        if nkind == "ok":
            return "ok", nresp
        if nkind == "not_found":  # only `del` reports it
            if okind == "ok":
                return "ok", oresp
            return "not_found", None
        return "retry", f"new-leg {op} on {new_target}: {nkind}"

    def _backoff(self, attempt: int) -> float:
        """Jittered exponential backoff, capped: ``base * 2^attempt`` up
        to ``retry_backoff_cap``, scaled by a [0.5, 1.5) jitter factor so
        retry storms from concurrent sessions decorrelate."""
        delay = min(self.retry_backoff * (2 ** attempt), self.retry_backoff_cap)
        return delay * (0.5 + self._rng.random())

    def _run(self, gen) -> SimFuture:
        return self.sim.spawn(gen)

    def _recorded(self, op: str, key: str, gen, value: Optional[str] = None,
                  ctx: Optional[RequestContext] = None):
        """Wrap an op generator with history recording.  Failed and
        timed-out ops are recorded too: an unacked write may still have
        taken effect, and the oracle must treat it as indeterminate.

        The request id and trace id flow into the record so the oracle
        can separate client retries (same ``req_id``, deduplicated
        server-side) from fabric duplicates, and so ``chaos --trace``
        can pull up the span tree of a violating request."""
        if self.recorder is None:
            result = yield from gen
            return result
        rec = self.recorder.invoke(
            self.name, op, key, value,
            req_id=ctx.req_id if ctx is not None else None,
            trace_id=ctx.trace_id if ctx is not None else None,
        )
        retries_before = self.retries
        timeouts_before = self.timeouts
        try:
            result = yield from gen
        except KeyNotFound:
            # a definite observation (key absent), not a failure
            self.recorder.complete(
                rec, "not_found",
                attempts=1 + self.retries - retries_before,
                timeouts=self.timeouts - timeouts_before,
            )
            raise
        except BespoError as e:
            self.recorder.complete(
                rec,
                "fail",
                error=f"{type(e).__name__}: {e}",
                attempts=1 + self.retries - retries_before,
                timeouts=self.timeouts - timeouts_before,
            )
            raise
        self.recorder.complete(
            rec,
            "ok",
            value=result if op == "get" else None,
            attempts=1 + self.retries - retries_before,
            timeouts=self.timeouts - timeouts_before,
        )
        return result

    # ------------------------------------------------------------------
    # public KV API (Table II)
    # ------------------------------------------------------------------
    def put(self, key: str, val: str, consistency: Optional[str] = None) -> SimFuture:
        """Write a pair; resolves to None."""

        def proc():
            ctx = self._begin_ctx("put", key, mutation=True)
            gen = self._op_proc("put", key, {"key": key, "val": val},
                                consistency, ctx=ctx)
            yield from self._recorded("put", key, gen, value=val, ctx=ctx)

        return self._run(proc())

    def get(
        self,
        key: str,
        consistency: Optional[str] = None,
        prefer_kind: Optional[str] = None,
    ) -> SimFuture:
        """Read a value; resolves to the value string.

        ``consistency="eventual"`` relaxes a strong deployment for this
        request only (§IV-C); ``prefer_kind`` picks a replica backed by
        a specific datalet engine (polyglot persistence, §IV-D).
        """

        def proc():
            payload: Dict[str, Any] = {"key": key}
            if consistency is not None:
                payload["consistency"] = consistency
            ctx = self._begin_ctx("get", key, mutation=False)

            def inner():
                resp = yield from self._op_proc("get", key, payload, consistency,
                                                prefer_kind, ctx=ctx)
                return resp.payload["val"]

            value = yield from self._recorded("get", key, inner(), ctx=ctx)
            return value

        return self._run(proc())

    def delete(self, key: str, consistency: Optional[str] = None) -> SimFuture:
        """Delete a pair; resolves to None."""

        def proc():
            ctx = self._begin_ctx("del", key, mutation=True)
            gen = self._op_proc("del", key, {"key": key}, consistency, ctx=ctx)
            yield from self._recorded("del", key, gen, ctx=ctx)

        return self._run(proc())

    def scan(self, start: str, end: str, limit: Optional[int] = None) -> SimFuture:
        """Range query over ``[start, end)`` (§IV-B).

        With range partitioning only the covering shards are contacted,
        each with a clipped sub-range; with hash partitioning every
        shard must be consulted.  Results merge into one sorted list.
        """

        def proc():
            if self.map is None:
                raise BespoError("client not connected: call connect() first")
            ctx = self._begin_ctx("scan", start, mutation=False)
            obs = self.cluster.obs
            status = "error"
            try:
                if self.partitioner == "range":
                    targets = self._range.covering(start, end)
                else:
                    targets = {sid: (start, end) for sid in self.map.shard_ids()}
                ordered = sorted(targets.items(), key=lambda kv: kv[1][0])
                if limit is not None and self.partitioner == "range":
                    # Range-partitioned limited scan: shards are visited in
                    # key order and the walk stops as soon as the limit is
                    # filled — most scans touch one or two shards.
                    out: List[Tuple[str, str]] = []
                    for sid, (lo, hi) in ordered:
                        shard = self.map.shard(sid)
                        payload = {"start": lo, "end": hi, "limit": limit - len(out)}
                        chunk = yield self.sim.spawn(
                            self._scan_one(shard, payload, ctx=ctx))
                        out.extend(tuple(item) for item in chunk)
                        if len(out) >= limit:
                            break
                    status = "ok"
                    return out[:limit]
                # Unlimited (or hash-partitioned) scan: scatter-gather.
                futs = []
                for sid, (lo, hi) in ordered:
                    shard = self.map.shard(sid)
                    payload = {"start": lo, "end": hi, "limit": limit}
                    futs.append(self.sim.spawn(
                        self._scan_one(shard, payload, ctx=ctx)))
                chunks = yield self.sim.gather(futs)
                merged: List[Tuple[str, str]] = sorted(
                    (tuple(item) for chunk in chunks for item in chunk)
                )
                status = "ok"
                return merged[:limit] if limit is not None else merged
            finally:
                if obs is not None and ctx is not None and ctx.trace_id is not None:
                    obs.end_trace(ctx, status)

        return self._run(proc())

    def server_scan(self, start: str, end: str, limit: Optional[int] = None) -> SimFuture:
        """Range query delegated to the server side (§IV-B).

        Sends one ``get_range`` to a controlet of the shard owning
        ``start``; a :class:`~repro.core.range_query.RangeQueryControlet`
        fans clipped sub-scans out to every covering shard and returns
        the merged, sorted result — the client needs no partitioning
        knowledge at all (contrast :meth:`scan`, which plans the
        scatter-gather client-side).  Deployments running plain
        controlets answer with an unhandled-type error.
        """

        def proc():
            if self.map is None:
                raise BespoError("client not connected: call connect() first")
            payload: Dict[str, Any] = {"start": start, "end": end, "limit": limit}
            ctx = self._begin_ctx("server_scan", start, mutation=False)
            obs = self.cluster.obs
            status = "error"
            try:
                last_error: Optional[str] = None
                for attempt in range(self.max_retries + 1):
                    shard = self.shard_for(start)
                    target = self._route(shard, "scan", None, None)
                    try:
                        resp = yield self.port.request(
                            target, "get_range", dict(payload),
                            timeout=self.op_timeout * 2, ctx=ctx,
                        )
                    except RequestTimeout:
                        last_error = f"timeout talking to {target}"
                        self.retries += 1
                        self.timeouts += 1
                        yield from self._sleep(attempt, ctx)
                        yield from self._refresh_best_effort()
                        continue
                    if resp.type == "range":
                        status = "ok"
                        return [tuple(item) for item in resp.payload["items"]]
                    err = resp.payload.get("error", "")
                    if err in ("retired", "cluster map not yet available"):
                        last_error = err
                        self.retries += 1
                        yield from self._sleep(attempt, ctx)
                        yield from self._refresh_best_effort()
                        continue
                    raise BespoError(f"server scan failed: {err}")
                raise ShardUnavailable(f"server scan exhausted retries: {last_error}")
            finally:
                if obs is not None and ctx is not None and ctx.trace_id is not None:
                    obs.end_trace(ctx, status)

        return self._run(proc())

    def _scan_one(self, shard: ShardInfo, payload: Dict[str, Any],
                  ctx: Optional[RequestContext] = None):
        override_target: Optional[str] = None
        for attempt in range(self.max_retries + 1):
            target = override_target or self._route(shard, "scan", None, None)
            override_target = None
            try:
                resp = yield self.port.request(target, "scan", dict(payload),
                                               timeout=self.op_timeout, ctx=ctx)
            except RequestTimeout:
                self.retries += 1
                self.timeouts += 1
                yield from self._sleep(attempt, ctx)
                continue
            if resp.type != "error":
                return resp.payload["items"]
            if resp.payload.get("error") == "redirect":
                override_target = resp.payload.get("to")
                continue
            raise BespoError(f"scan failed on {shard.shard_id}: {resp.payload}")
        raise ShardUnavailable(f"scan on shard {shard.shard_id} exhausted retries")

    # ------------------------------------------------------------------
    # table namespace API (Table II client API)
    # ------------------------------------------------------------------
    @staticmethod
    def _table_marker(table: str) -> str:
        return f"__table__:{table}"

    @staticmethod
    def _table_key(table: str, key: str) -> str:
        return f"{table}:{key}"

    def create_table(self, table: str) -> SimFuture:
        def proc():
            yield self.put(self._table_marker(table), "1")
            self._tables[table] = True

        return self._run(proc())

    def _check_table(self, table: str):
        if self._tables.get(table):
            return
        try:
            yield self.get(self._table_marker(table))
        except KeyNotFound:
            raise TableNotFound(table) from None
        self._tables[table] = True

    def table_put(self, key: str, val: str, table: str) -> SimFuture:
        def proc():
            yield from self._check_table(table)
            yield self.put(self._table_key(table, key), val)

        return self._run(proc())

    def table_get(self, key: str, table: str) -> SimFuture:
        def proc():
            yield from self._check_table(table)
            value = yield self.get(self._table_key(table, key))
            return value

        return self._run(proc())

    def table_del(self, key: str, table: str) -> SimFuture:
        def proc():
            yield from self._check_table(table)
            yield self.delete(self._table_key(table, key))

        return self._run(proc())

    def delete_table(self, table: str) -> SimFuture:
        """Drop the marker and (where the backend supports scans)
        best-effort delete the table's keys."""

        def proc():
            yield from self._check_table(table)
            prefix = self._table_key(table, "")
            try:
                items = yield self.scan(prefix, prefix + "￿")
            except BespoError:
                items = []  # hash-table backends cannot enumerate
            for k, _ in items:
                try:
                    yield self.delete(k)
                except KeyNotFound:
                    pass
            yield self.delete(self._table_marker(table))
            self._tables.pop(table, None)

        return self._run(proc())
