"""Client-side request pipelining with adaptive window sizing.

A closed-loop client session issues one op at a time, so its throughput
is capped at ``1 / RTT`` no matter how much capacity the cluster has.
:class:`PipelinedClient` lifts that cap the way real KV client
libraries do: up to ``window`` operations are kept in flight
concurrently over the same :class:`~repro.client.kv.KVClient`, and the
window adapts to observed tail latency.

Adaptive sizing (AIMD)
----------------------

A periodic controller reads the client's own latency histograms out of
the cluster :class:`~repro.obs.metrics.MetricsRegistry`
(``client.<name>.latency_<op>``, the same series ``repro bench``
reports) and compares the worst p99 against ``target_p99``:

* p99 at or under target — the cluster is keeping up; grow the window
  by one (additive increase, up to ``window_max``).
* p99 over target — queueing is building somewhere; halve the window
  (multiplicative decrease, down to ``window_min``).
* any RPC timeout since the last tick — halve immediately and skip the
  p99 comparison.  The :class:`KVClient` swallows ``RequestTimeout``
  into retries, so timed-out ops never land in the latency histograms;
  without watching ``client.timeouts`` the controller would hold (or
  even grow) the window through the very congestion that caused the
  timeouts.

Both the latency measurements and the controller's timer run on the
simulation's virtual clock, so a seeded run adapts — and therefore
schedules every op — bit-for-bit identically across repeats.

The window trajectory is observable: ``client.<name>.pipeline_window``
(gauge, current size) and ``client.<name>.pipeline_depth`` (histogram,
in-flight ops sampled at each issue) land in the same registry.
"""

from __future__ import annotations

from typing import Any, Callable, Deque, List, Optional

from collections import deque

from repro.client.kv import KVClient
from repro.errors import BespoError
from repro.sim import SimFuture

__all__ = ["PipelinedClient"]

#: ops whose latency series the controller watches.
_WATCHED_OPS = ("put", "get", "del")


class PipelinedClient:
    """Windowed pipelining wrapper over one :class:`KVClient`.

    Ops submitted while the window is full queue in FIFO order; each
    completion immediately issues the next queued op, so the pipe stays
    exactly ``window`` deep under load (no think time, no barriers).
    """

    def __init__(
        self,
        client: KVClient,
        window: int = 4,
        window_min: int = 1,
        window_max: int = 64,
        target_p99: float = 0.05,
        adjust_interval: float = 0.5,
        adaptive: bool = True,
    ):
        if not (1 <= window_min <= window <= window_max):
            raise BespoError(
                f"need 1 <= window_min <= window <= window_max, got "
                f"{window_min}/{window}/{window_max}"
            )
        self.client = client
        self.sim = client.sim
        self.window = window
        self.window_min = window_min
        self.window_max = window_max
        self.target_p99 = target_p99
        self.adjust_interval = adjust_interval
        self._queue: Deque[tuple] = deque()
        self._inflight = 0
        self._drain_waiters: List[SimFuture] = []
        self.submitted = 0
        self.completed = 0
        self.failed = 0
        self.grows = 0
        self.shrinks = 0
        self.timeout_shrinks = 0
        #: timeouts counter snapshot — KVClient swallows RequestTimeout
        #: into retries, so timed-out ops never reach the latency
        #: histograms and the p99 check alone would keep the window wide
        #: through congestion.  The tuner watches the counter delta
        #: instead.
        self._timeouts_seen = client.timeouts
        self._stopped = False
        self._timer = None
        metrics = client.cluster.metrics
        self._window_gauge = metrics.gauge(
            f"client.{client.name}.pipeline_window")
        self._depth_hist = metrics.histogram(
            f"client.{client.name}.pipeline_depth")
        self._window_gauge.set(self.window)
        metrics.register_group(
            f"client.{client.name}.pipeline",
            lambda: {
                "submitted": self.submitted,
                "completed": self.completed,
                "failed": self.failed,
                "window": self.window,
                "grows": self.grows,
                "shrinks": self.shrinks,
                "timeout_shrinks": self.timeout_shrinks,
            },
        )
        if adaptive:
            self._arm_tuner()

    # ------------------------------------------------------------------
    # pipelined KV surface
    # ------------------------------------------------------------------
    def put(self, key: str, val: str, **kw: Any) -> SimFuture:
        return self._submit(lambda: self.client.put(key, val, **kw))

    def get(self, key: str, **kw: Any) -> SimFuture:
        return self._submit(lambda: self.client.get(key, **kw))

    def delete(self, key: str, **kw: Any) -> SimFuture:
        return self._submit(lambda: self.client.delete(key, **kw))

    def _submit(self, start: Callable[[], SimFuture]) -> SimFuture:
        if self._stopped:
            raise BespoError("pipeline stopped")
        fut = self.sim.create_future()
        self.submitted += 1
        self._queue.append((start, fut))
        self._pump()
        return fut

    def _pump(self) -> None:
        while self._queue and self._inflight < self.window:
            start, fut = self._queue.popleft()
            self._inflight += 1
            self._depth_hist.observe(float(self._inflight))
            inner = start()

            def done(f: SimFuture, _fut=fut) -> None:
                self._inflight -= 1
                self.completed += 1
                exc = f.exception()
                if exc is not None:
                    self.failed += 1
                    _fut.set_exception(exc)
                else:
                    _fut.set_result(f.result())
                self._pump()

            inner.add_done_callback(done)
        if not self._queue and self._inflight == 0:
            waiters, self._drain_waiters = self._drain_waiters, []
            for w in waiters:
                w.set_result(None)

    def drain(self) -> SimFuture:
        """Future resolving once every submitted op has completed."""
        fut = self.sim.create_future()
        if not self._queue and self._inflight == 0:
            fut.set_result(None)
        else:
            self._drain_waiters.append(fut)
        return fut

    def stop(self) -> None:
        """Disarm the tuner and refuse further submissions (queued and
        in-flight ops still run to completion)."""
        self._stopped = True
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    # ------------------------------------------------------------------
    # AIMD controller
    # ------------------------------------------------------------------
    def _arm_tuner(self) -> None:
        self._timer = self.sim.call_later(self.adjust_interval, self._tune)

    def _worst_p99(self) -> Optional[float]:
        metrics = self.client.cluster.metrics
        worst: Optional[float] = None
        for op in _WATCHED_OPS:
            hist = metrics.histogram(f"client.{self.client.name}.latency_{op}")
            if hist.count == 0:
                continue
            p99 = hist.percentile(0.99)
            if worst is None or p99 > worst:
                worst = p99
        return worst

    def _tune(self) -> None:
        if self._stopped:
            return
        timeouts = self.client.timeouts
        if timeouts > self._timeouts_seen:
            # RPC timeouts this interval: the strongest congestion
            # signal we have, and one the latency histograms never see
            # (timed-out ops are retried, not recorded).  Shrink
            # multiplicatively and skip the p99 check — a stale under-
            # target p99 must not grow the window straight back.
            self._timeouts_seen = timeouts
            if self.window > self.window_min:
                self.window = max(self.window_min, self.window // 2)
                self.shrinks += 1
                self.timeout_shrinks += 1
                self._window_gauge.set(self.window)
            self._arm_tuner()
            return
        p99 = self._worst_p99()
        if p99 is not None:
            if p99 <= self.target_p99:
                if self.window < self.window_max:
                    self.window += 1
                    self.grows += 1
                    self._pump()  # a wider window may admit queued ops now
            elif self.window > self.window_min:
                self.window = max(self.window_min, self.window // 2)
                self.shrinks += 1
            self._window_gauge.set(self.window)
        self._arm_tuner()
