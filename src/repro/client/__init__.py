"""Client library (paper Table II), the hot-key shadow-replication
extension (App C-C), and the adaptive pipelining wrapper."""

from repro.client.hotkey import HotKeyReplicatingClient
from repro.client.kv import KVClient
from repro.client.pipeline import PipelinedClient

__all__ = ["KVClient", "HotKeyReplicatingClient", "PipelinedClient"]
