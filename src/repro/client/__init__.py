"""Client library (paper Table II) and the hot-key shadow-replication
extension (App C-C)."""

from repro.client.hotkey import HotKeyReplicatingClient
from repro.client.kv import KVClient

__all__ = ["KVClient", "HotKeyReplicatingClient"]
