"""The coordinator actor.

Responsibilities (paper §III, Table III):

1. **Metadata server** — authoritative :class:`ClusterMap`, served to
   clients (``get_cluster_map``) and controlets (``get_shard_info``).
2. **Liveness** — controlets heartbeat periodically; a sweep declares a
   node dead after ``failure_timeout`` without one.
3. **Failover** — on a death: repair the shard (chain re-linking /
   leader election), bump the epoch, push ``config_update`` to
   survivors, and launch a replacement controlet-datalet pair on a
   standby host; when the replacement reports ``recovery_done`` it
   joins as the new tail.
4. **Transition manager** (§V) — orchestrates live topology/consistency
   switches with the dual-controlet handover protocol.

Spawning new actors requires constructing them inside the hosting
runtime, so the coordinator takes two injected factories from the
deployment layer: ``spawner`` (replacement pairs) and
``transition_spawner`` (a parallel controlet set over existing
datalets).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set

from repro.cluster.view import RESHARD_ADD, RESHARD_REMOVE, ClusterView
from repro.core.config import ControlConfig
from repro.core.types import ClusterMap, Consistency, Replica, ShardInfo, Topology
from repro.net.actor import Actor
from repro.net.message import Message

__all__ = ["CoordinatorActor"]

#: (shard, recovery_source_datalet) -> new Replica, or None if no standby.
Spawner = Callable[[ShardInfo, str], Optional[Replica]]
#: (shard, topology, consistency) -> new ShardInfo with fresh controlets.
TransitionSpawner = Callable[[ShardInfo, Topology, Consistency], ShardInfo]
#: () -> a fresh ShardInfo (spawned controlet/datalet pairs + shared log
#: when the combo needs one), or None when capacity is exhausted.
ReshardSpawner = Callable[[], Optional[ShardInfo]]


class CoordinatorActor(Actor):
    """ZooKeeper-backed coordinator stand-in."""

    def __init__(
        self,
        node_id: str = "coordinator",
        cluster_map: Optional[ClusterMap] = None,
        config: Optional[ControlConfig] = None,
        spawner: Optional[Spawner] = None,
        transition_spawner: Optional[TransitionSpawner] = None,
        reshard_spawner: Optional[ReshardSpawner] = None,
        partitioner: str = "hash",
        dlm: str = "dlm",
    ):
        super().__init__(node_id)
        #: the epoch'd membership view; ``self.map`` stays an alias of
        #: the (shared) underlying ClusterMap so the deployment harness,
        #: model checker and tests keep observing every change.
        self.view = ClusterView(cluster_map if cluster_map is not None else ClusterMap())
        self.map = self.view.map
        self.config = config or ControlConfig()
        self.spawner = spawner
        self.transition_spawner = transition_spawner
        self.reshard_spawner = reshard_spawner
        self.partitioner = partitioner
        self.dlm = dlm
        self._last_seen: Dict[str, float] = {}
        self._dead: Set[str] = set()
        #: desired replica count per shard: repairs refill to this
        #: level and never past it (a promoted standby working from a
        #: stale map must not spawn a second replacement for a death
        #: the old primary already repaired).
        self._shard_target: Dict[str, int] = {
            sid: len(s.replicas) for sid, s in self.map.shards.items()
        }
        #: controlets whose replacement is being recovered.
        self._recovering: Dict[str, str] = {}  # new controlet -> shard
        #: replicas spawned but not yet recovered (see register_pending).
        self._pending_replicas: Dict[str, Replica] = {}
        #: in-flight transitions per shard.
        self._transitions: Dict[str, Dict[str, object]] = {}
        self._transition_requester: Optional[Message] = None
        #: in-flight reshard (double-ring cutover) state machine.
        self._reshard: Optional[Dict[str, object]] = None
        self.failovers = 0
        self.register("heartbeat", self._on_heartbeat)
        self.register("datalet_failed", self._on_datalet_failed)
        self.register("get_cluster_map", self._on_get_map)
        self.register("get_shard_info", self._on_get_shard)
        self.register("recovery_done", self._on_recovery_done)
        self.register("request_transition", self._on_request_transition)
        self.register("transition_ready", self._on_transition_ready)
        self.register("request_reshard", self._on_request_reshard)
        self.register("migrate_done", self._on_migrate_done)
        self.register("reshard_fenced", self._on_reshard_fenced)

    def service_demand(self, msg: Message, costs) -> float:
        return costs.scaled("coordinator_overhead")

    def metrics_group(self) -> Dict[str, float]:
        return {
            "failovers": self.failovers,
            "recovering": len(self._recovering),
            "pending_replicas": len(self._pending_replicas),
        }

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def on_start(self) -> None:
        now = self.now()
        for shard in self.map.shards.values():
            for r in shard.replicas:
                self._last_seen.setdefault(r.controlet, now)
        # The deployment populates the (shared) map after constructing
        # us, so repair targets are captured here, not in __init__.
        self._record_targets()
        if not self.view.log and self.map.shards:
            # the ctor saw an empty map; log the seed membership now
            # (a note, not a commit: epoch numbering must not shift)
            self.view.note("bootstrap", ",".join(self.map.shard_ids()))
        # phase-staggered first arm: the sweep must never share a
        # timestamp with the follower-sync loop (same period, same boot)
        self.set_timer(
            self.config.heartbeat_interval
            + self.loop_phase("sweep", self.config.heartbeat_interval),
            self._sweep,
        )

    def _record_targets(self) -> None:
        for sid, shard in self.map.shards.items():
            self._shard_target.setdefault(sid, len(shard.replicas))

    # ------------------------------------------------------------------
    # metadata queries
    # ------------------------------------------------------------------
    def _on_get_map(self, msg: Message) -> None:
        self.respond(
            msg,
            "cluster_map",
            {
                "map": self.map.to_dict(),
                "view": self.view.ring_info(),
                "partitioner": self.partitioner,
            },
        )

    def _on_get_shard(self, msg: Message) -> None:
        sid = msg.payload["shard"]
        if sid not in self.map.shards:
            self.respond(msg, "error", {"error": f"unknown shard {sid!r}"})
            return
        self.respond(
            msg,
            "shard_info",
            {
                "shard": self.map.shard(sid).to_dict(),
                "epoch": self.map.epoch,
                "ring": self.view.ring_info(),
                "partitioner": self.partitioner,
            },
        )

    # ------------------------------------------------------------------
    # liveness & failover
    # ------------------------------------------------------------------
    def _on_heartbeat(self, msg: Message) -> None:
        self._last_seen[msg.payload["controlet"]] = self.now()

    def _on_datalet_failed(self, msg: Message) -> None:
        """Split-placement failure report: a controlet's (remote)
        datalet stopped answering.  The pair is repaired as a unit —
        the orphaned controlet is retired and the shard relinked, the
        same path a missed host heartbeat takes."""
        controlet = msg.payload["controlet"]
        sid = msg.payload["shard"]
        if controlet in self._dead or sid not in self.map.shards:
            return
        shard = self.map.shard(sid)
        try:
            replica = shard.replica_of(controlet)
        except Exception:  # noqa: BLE001 - stale report after repair
            return
        self._handle_failure(shard, replica)
        self.send(controlet, "retire", {})

    def _sweep(self) -> None:
        now = self.now()
        for shard in list(self.map.shards.values()):
            for replica in shard.ordered():
                c = replica.controlet
                if c in self._dead:
                    continue
                seen = self._last_seen.get(c, now)
                if now - seen > self.config.failure_timeout:
                    self._handle_failure(shard, replica)
        self.set_timer(self.config.heartbeat_interval, self._sweep)

    def _handle_failure(self, shard: ShardInfo, dead: Replica) -> None:
        """Chain repair + leader election + replacement launch."""
        self.failovers += 1
        self._dead.add(dead.controlet)
        # If the dead node was itself a mid-recovery replacement
        # (AA-strong join-first), its in-flight entry must not count
        # toward shard strength below.
        self._recovering.pop(dead.controlet, None)
        self._pending_replicas.pop(dead.controlet, None)
        shard.remove_replica(dead.controlet)
        # Re-number the chain: if the head died this *is* the leader
        # election (second node promoted); if a mid/tail died the chain
        # simply re-links around it.
        for pos, replica in enumerate(shard.ordered()):
            replica.chain_pos = pos
        self.view.commit("failover", f"{shard.shard_id}:-{dead.controlet}")
        self._broadcast_config(shard)

        # Refill toward the deployment's target strength, counting
        # replacements already in flight: a promoted standby replaying a
        # death from a stale map (the old primary repaired it, then died
        # before syncing) must not spawn a second replacement.
        target = self._shard_target.get(shard.shard_id, len(shard.replicas) + 1)
        inflight = sum(1 for sid in self._recovering.values() if sid == shard.shard_id)
        if (
            self.spawner is not None
            and shard.replicas
            and len(shard.replicas) + inflight < target
        ):
            # Recover from the current tail: under chain replication the
            # tail holds every committed write; under EC/AA any live
            # replica is as good as another.  Capture the source BEFORE
            # any join-first append below changes who the tail is.
            source = shard.tail.datalet
            new_replica = self.spawner(shard, source)
            if new_replica is None:
                # No standby host available: the shard keeps serving
                # with fewer replicas, but flag the exposure so clients
                # and operators can see it.
                self.map.degraded.add(shard.shard_id)
                self.view.commit("degraded", shard.shard_id)
                self._broadcast_config(shard)
                return
            self._recovering[new_replica.controlet] = shard.shard_id
            self._last_seen[new_replica.controlet] = self.now()
            if (
                shard.topology is Topology.AA
                and shard.consistency is Consistency.STRONG
            ):
                # Join-first (AA strong): fan-out writers replicate to
                # every member of the shard view, so the replacement
                # must appear in the view *before* its state transfer
                # starts — it buffers incoming writes while recovering.
                # Use the registered pending replica object if the
                # spawner recorded one, so identity stays consistent.
                replica = self._pending_replicas.get(
                    new_replica.controlet, new_replica
                )
                replica.chain_pos = len(shard.replicas)
                shard.replicas.append(replica)
                self.view.commit(
                    "replica-join", f"{shard.shard_id}:+{replica.controlet}"
                )
                self._broadcast_config(shard)

    def _on_recovery_done(self, msg: Message) -> None:
        controlet = msg.payload["controlet"]
        sid = self._recovering.pop(controlet, None)
        if sid is None or sid not in self.map.shards:
            return
        shard = self.map.shard(sid)
        # The deployment's spawner registered the replica's identity via
        # the pending queue; re-derive it from the heartbeat payload.
        # The replacement joins at the end of the chain (paper: "adds
        # the new pair as the new tail").
        replica = self._pending_replicas.pop(controlet, None)
        if replica is None:
            return
        self.map.degraded.discard(sid)
        if any(r.controlet == controlet for r in shard.replicas):
            # Join-first path (AA strong): already a member; recovery
            # completion only clears the pending bookkeeping.
            return
        replica.chain_pos = len(shard.replicas)
        shard.replicas.append(replica)
        self.view.commit("replica-join", f"{sid}:+{replica.controlet}")
        self._broadcast_config(shard)

    def register_pending(self, replica: Replica) -> None:
        """Called by the deployment's spawner so the coordinator can add
        the replica to the shard once recovery completes."""
        self._pending_replicas[replica.controlet] = replica

    def _broadcast_config(self, shard: ShardInfo) -> None:
        payload = {
            "shard": shard.to_dict(),
            "epoch": self.map.epoch,
            "ring": self.view.ring_info(),
            "partitioner": self.partitioner,
        }
        for replica in shard.ordered():
            self.send(replica.controlet, "config_update", dict(payload))

    def _broadcast_all(self) -> None:
        """Push fresh config to every shard — ring-wide changes
        (reshard begin/commit) re-route every controlet, not just one
        shard's."""
        for shard in self.map.shards.values():
            self._broadcast_config(shard)

    def leader_elect(self, shard_id: str) -> str:
        """LeaderElect(s) (Table III): current head after repairs."""
        return self.map.shard(shard_id).head.controlet

    # ------------------------------------------------------------------
    # model-checker introspection
    # ------------------------------------------------------------------
    def snapshot_state(self):
        """Fingerprint state with *quantized* liveness: raw ``_last_seen``
        timestamps never repeat, so they would keep the explored graph
        from ever closing.  What matters behaviorally is how many more
        failure-detector sweeps a silent node survives — an integer that
        progresses as the explorer advances time and saturates once the
        node is overdue."""
        s = super().snapshot_state()
        now = self.now()
        hb = self.config.heartbeat_interval
        cap = int(self.config.failure_timeout / hb) + 2
        staleness = {}
        for c, seen in self._last_seen.items():
            if c in self._dead:
                continue
            staleness[c] = min(int(max(0.0, now - seen) / hb), cap)
        s.update({
            "epoch": self.map.epoch,
            "shards": {
                sid: [r.controlet for r in shard.ordered()]
                for sid, shard in self.map.shards.items()
            },
            "degraded": sorted(self.map.degraded),
            "dead": sorted(self._dead),
            "staleness": staleness,
            "recovering": dict(self._recovering),
            "pending_replicas": sorted(self._pending_replicas),
            "transitions": sorted(self._transitions),
            "view": self.view.snapshot(),
            "reshard_phase": (
                self._reshard["phase"] if self._reshard else None  # type: ignore[index]
            ),
        })
        return s

    # ------------------------------------------------------------------
    # transitions (§V)
    # ------------------------------------------------------------------
    def _on_request_transition(self, msg: Message) -> None:
        if self.transition_spawner is None:
            self.respond(msg, "error", {"error": "no transition spawner configured"})
            return
        if self._transitions:
            self.respond(msg, "error", {"error": "transition already in progress"})
            return
        if self._reshard is not None:
            self.respond(msg, "error", {"error": "reshard in progress"})
            return
        topology = Topology(msg.payload["topology"])
        consistency = Consistency(msg.payload["consistency"])
        self._transition_requester = msg
        for shard in self.map.shards.values():
            new_shard = self.transition_spawner(shard, topology, consistency)
            old_controlets = shard.controlets()
            self._transitions[shard.shard_id] = {
                "new_shard": new_shard,
                "waiting": set(old_controlets),
                "old": list(old_controlets),
            }
            forward_to = new_shard.head.controlet
            for c in old_controlets:
                self.send(c, "transition_start", {"forward_to": forward_to})

    def _on_transition_ready(self, msg: Message) -> None:
        sid = msg.payload["shard"]
        state = self._transitions.get(sid)
        if state is None:
            return
        waiting: Set[str] = state["waiting"]  # type: ignore[assignment]
        waiting.discard(msg.payload["controlet"])
        if waiting:
            return
        # Every old controlet drained: flip the shard to the new service.
        new_shard: ShardInfo = state["new_shard"]  # type: ignore[assignment]
        self.map.shards[sid] = new_shard
        self.view.commit(
            "transition-flip",
            f"{sid}:{new_shard.topology.value}-{new_shard.consistency.value}",
        )
        now = self.now()
        for replica in new_shard.ordered():
            self._last_seen.setdefault(replica.controlet, now)
        self._broadcast_config(new_shard)
        for old in state["old"]:  # type: ignore[union-attr]
            self.send(old, "retire", {})
        del self._transitions[sid]
        if not self._transitions and self._transition_requester is not None:
            req, self._transition_requester = self._transition_requester, None
            self.respond(req, "transition_done", {"epoch": self.map.epoch})

    # ------------------------------------------------------------------
    # online resharding (double-ring cutover + live key migration)
    # ------------------------------------------------------------------
    #
    # Phases of ``self._reshard``:
    #
    # ``arming``     the shard-log sequencers / DLM learn the window
    #                *before* any client or controlet does, so every
    #                dual-routed write is dirty-tracked from the first;
    # ``migrating``  the window is open (double ring broadcast, clients
    #                dual-route writes / prefer-new-fallback-old reads)
    #                while each source shard's entry pumps its moved
    #                keys to the new-ring owners;
    # ``fencing``    copies done: every old-ring controlet acks that it
    #                now rejects moved-key ops, so no stale read can be
    #                served from an old owner after the flip;
    # then the view commits ``reshard-commit``, a removed shard is
    # retired, and the new ring becomes the only ring.
    def _on_request_reshard(self, msg: Message) -> None:
        if self._reshard is not None:
            self.respond(msg, "error", {"error": "reshard already in progress"})
            return
        if self._transitions:
            self.respond(msg, "error", {"error": "transition in progress"})
            return
        if self.partitioner != "hash":
            self.respond(
                msg, "error",
                {"error": f"resharding requires hash partitioning, not {self.partitioner!r}"},
            )
            return
        action = msg.payload["action"]
        if action == RESHARD_ADD:
            if self.reshard_spawner is None:
                self.respond(msg, "error", {"error": "no reshard spawner configured"})
                return
            new_shard = self.reshard_spawner()
            if new_shard is None:
                self.respond(msg, "error", {"error": "no capacity for a new shard"})
                return
            sid = new_shard.shard_id
        elif action == RESHARD_REMOVE:
            sid = msg.payload["shard"]
            if sid not in self.map.shards:
                self.respond(msg, "error", {"error": f"unknown shard {sid!r}"})
                return
            if len(self.map.shards) < 2:
                self.respond(msg, "error", {"error": "cannot remove the last shard"})
                return
            new_shard = None
        else:
            self.respond(msg, "error", {"error": f"unknown reshard action {action!r}"})
            return
        old_ids = self.map.shard_ids()
        new_ids = (
            sorted(old_ids + [sid]) if action == RESHARD_ADD
            else [s for s in old_ids if s != sid]
        )
        self._reshard = {
            "phase": "arming",
            "action": action,
            "shard": sid,
            "new_shard": new_shard,
            "requester": msg,
            "old": old_ids,
            "new": new_ids,
            "waiting": set(),
            "stats": {"moved": 0, "skipped": 0, "total": 0},
        }
        self._arm_authorities()

    def _reshard_authorities(self) -> List[str]:
        """Ordering authorities that must learn the window first: the
        DLM for AA+SC shards, each shard's log sequencer for AA+EC —
        including the incoming shard's fresh sequencer."""
        state = self._reshard
        assert state is not None
        targets: List[str] = []
        shards = list(self.map.shards.values())
        if state["new_shard"] is not None:
            shards.append(state["new_shard"])  # type: ignore[arg-type]
        if any(
            s.topology is Topology.AA and s.consistency is Consistency.STRONG
            for s in shards
        ):
            targets.append(self.dlm)
        for s in shards:
            if s.topology is Topology.AA and s.consistency is Consistency.EVENTUAL:
                # deployment naming convention: one log actor per shard
                targets.append(f"sharedlog.{s.shard_id}")
        return targets

    def _arm_authorities(self) -> None:
        state = self._reshard
        assert state is not None
        targets = self._reshard_authorities()
        if not targets:
            self._open_window()
            return
        waiting: Set[str] = set(targets)
        state["waiting"] = waiting
        payload = {
            "gen": self.view.ring_gen + 1,
            "new": list(state["new"]),  # type: ignore[arg-type]
            "old": list(state["old"]),  # type: ignore[arg-type]
        }

        def acked(target):
            def cb(resp, err):
                if err is not None:
                    # authority unreachable mid-arm: re-ask (the window
                    # must not open until every authority is armed)
                    self.call(target, "reshard_begin", dict(payload),
                              callback=acked(target), timeout=5.0)
                    return
                waiting.discard(target)
                if not waiting and state is self._reshard:
                    self._open_window()
            return cb

        for t in targets:
            self.call(t, "reshard_begin", dict(payload),
                      callback=acked(t), timeout=5.0)

    def _open_window(self) -> None:
        state = self._reshard
        assert state is not None
        action: str = state["action"]  # type: ignore[assignment]
        sid: str = state["shard"]  # type: ignore[assignment]
        self.view.begin_reshard(action, sid)
        new_shard: Optional[ShardInfo] = state["new_shard"]  # type: ignore[assignment]
        if new_shard is not None:
            self.map.shards[sid] = new_shard
            self._shard_target[sid] = len(new_shard.replicas)
            now = self.now()
            for r in new_shard.ordered():
                self._last_seen.setdefault(r.controlet, now)
        # entry (ordering authority) per shard, for migration targets
        entries = {
            s.shard_id: s.head.controlet for s in self.map.shards.values()
        }
        assert self.view.reshard is not None
        self.view.reshard["entries"] = entries
        state["phase"] = "migrating"
        # sources: shards whose owned key ranges shrink under the new
        # ring — every old shard on an add, the leaving shard on remove
        source_ids = (
            list(state["old"]) if action == RESHARD_ADD else [sid]  # type: ignore[arg-type]
        )
        state["sources"] = set(source_ids)
        self._broadcast_all()
        for source in sorted(source_ids):
            shard = self.map.shard(source)
            self.send(
                shard.head.controlet,
                "reshard_migrate",
                {"reshard": dict(self.view.reshard), "epoch": self.map.epoch},
            )

    def _on_migrate_done(self, msg: Message) -> None:
        state = self._reshard
        if state is None or state["phase"] != "migrating":
            return
        sources: Set[str] = state["sources"]  # type: ignore[assignment]
        sid = msg.payload["shard"]
        if sid not in sources:
            return  # duplicate completion report
        sources.discard(sid)
        stats: Dict[str, int] = state["stats"]  # type: ignore[assignment]
        for k in ("moved", "skipped", "total"):
            stats[k] += int(msg.payload.get(k, 0))
        if sources:
            return
        # every source drained: fence the old ring before the flip so
        # no stale client can read a moved key from an old owner after
        # new-ring-only writes begin
        state["phase"] = "fencing"
        waiting: Set[str] = set()
        for old_sid in state["old"]:  # type: ignore[union-attr]
            if old_sid not in self.map.shards:
                continue
            for r in self.map.shard(old_sid).ordered():
                waiting.add(r.controlet)
                self.send(r.controlet, "reshard_fence", {"gen": self.view.ring_gen})
        state["waiting"] = waiting
        if not waiting:
            self._finish_reshard()

    def _on_reshard_fenced(self, msg: Message) -> None:
        state = self._reshard
        if state is None or state["phase"] != "fencing":
            return
        waiting: Set[str] = state["waiting"]  # type: ignore[assignment]
        waiting.discard(msg.payload["controlet"])
        if not waiting:
            self._finish_reshard()

    def _finish_reshard(self) -> None:
        state = self._reshard
        assert state is not None
        for t in self._reshard_authorities():
            self.send(t, "reshard_end", {"gen": self.view.ring_gen})
        self.view.commit_reshard()
        sid: str = state["shard"]  # type: ignore[assignment]
        if state["action"] == RESHARD_REMOVE:
            removed = self.map.shards.pop(sid, None)
            self._shard_target.pop(sid, None)
            if removed is not None:
                for r in removed.ordered():
                    self._last_seen.pop(r.controlet, None)
                    self._dead.discard(r.controlet)
                    self.send(r.controlet, "retire", {})
        self._broadcast_all()
        req: Optional[Message] = state["requester"]  # type: ignore[assignment]
        stats: Dict[str, int] = state["stats"]  # type: ignore[assignment]
        self._reshard = None
        if req is not None:
            self.respond(
                req,
                "reshard_done",
                {"epoch": self.map.epoch, "shard": sid, **stats},
            )
