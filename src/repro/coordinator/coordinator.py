"""The coordinator actor.

Responsibilities (paper §III, Table III):

1. **Metadata server** — authoritative :class:`ClusterMap`, served to
   clients (``get_cluster_map``) and controlets (``get_shard_info``).
2. **Liveness** — controlets heartbeat periodically; a sweep declares a
   node dead after ``failure_timeout`` without one.
3. **Failover** — on a death: repair the shard (chain re-linking /
   leader election), bump the epoch, push ``config_update`` to
   survivors, and launch a replacement controlet-datalet pair on a
   standby host; when the replacement reports ``recovery_done`` it
   joins as the new tail.
4. **Transition manager** (§V) — orchestrates live topology/consistency
   switches with the dual-controlet handover protocol.

Spawning new actors requires constructing them inside the hosting
runtime, so the coordinator takes two injected factories from the
deployment layer: ``spawner`` (replacement pairs) and
``transition_spawner`` (a parallel controlet set over existing
datalets).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Set

from repro.core.config import ControlConfig
from repro.core.types import ClusterMap, Consistency, Replica, ShardInfo, Topology
from repro.net.actor import Actor
from repro.net.message import Message

__all__ = ["CoordinatorActor"]

#: (shard, recovery_source_datalet) -> new Replica, or None if no standby.
Spawner = Callable[[ShardInfo, str], Optional[Replica]]
#: (shard, topology, consistency) -> new ShardInfo with fresh controlets.
TransitionSpawner = Callable[[ShardInfo, Topology, Consistency], ShardInfo]


class CoordinatorActor(Actor):
    """ZooKeeper-backed coordinator stand-in."""

    def __init__(
        self,
        node_id: str = "coordinator",
        cluster_map: Optional[ClusterMap] = None,
        config: Optional[ControlConfig] = None,
        spawner: Optional[Spawner] = None,
        transition_spawner: Optional[TransitionSpawner] = None,
    ):
        super().__init__(node_id)
        self.map = cluster_map or ClusterMap()
        self.config = config or ControlConfig()
        self.spawner = spawner
        self.transition_spawner = transition_spawner
        self._last_seen: Dict[str, float] = {}
        self._dead: Set[str] = set()
        #: desired replica count per shard: repairs refill to this
        #: level and never past it (a promoted standby working from a
        #: stale map must not spawn a second replacement for a death
        #: the old primary already repaired).
        self._shard_target: Dict[str, int] = {
            sid: len(s.replicas) for sid, s in self.map.shards.items()
        }
        #: controlets whose replacement is being recovered.
        self._recovering: Dict[str, str] = {}  # new controlet -> shard
        #: replicas spawned but not yet recovered (see register_pending).
        self._pending_replicas: Dict[str, Replica] = {}
        #: in-flight transitions per shard.
        self._transitions: Dict[str, Dict[str, object]] = {}
        self._transition_requester: Optional[Message] = None
        self.failovers = 0
        self.register("heartbeat", self._on_heartbeat)
        self.register("datalet_failed", self._on_datalet_failed)
        self.register("get_cluster_map", self._on_get_map)
        self.register("get_shard_info", self._on_get_shard)
        self.register("recovery_done", self._on_recovery_done)
        self.register("request_transition", self._on_request_transition)
        self.register("transition_ready", self._on_transition_ready)

    def service_demand(self, msg: Message, costs) -> float:
        return costs.scaled("coordinator_overhead")

    def metrics_group(self) -> Dict[str, float]:
        return {
            "failovers": self.failovers,
            "recovering": len(self._recovering),
            "pending_replicas": len(self._pending_replicas),
        }

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def on_start(self) -> None:
        now = self.now()
        for shard in self.map.shards.values():
            for r in shard.replicas:
                self._last_seen.setdefault(r.controlet, now)
        # The deployment populates the (shared) map after constructing
        # us, so repair targets are captured here, not in __init__.
        self._record_targets()
        # phase-staggered first arm: the sweep must never share a
        # timestamp with the follower-sync loop (same period, same boot)
        self.set_timer(
            self.config.heartbeat_interval
            + self.loop_phase("sweep", self.config.heartbeat_interval),
            self._sweep,
        )

    def _record_targets(self) -> None:
        for sid, shard in self.map.shards.items():
            self._shard_target.setdefault(sid, len(shard.replicas))

    # ------------------------------------------------------------------
    # metadata queries
    # ------------------------------------------------------------------
    def _on_get_map(self, msg: Message) -> None:
        self.respond(msg, "cluster_map", {"map": self.map.to_dict()})

    def _on_get_shard(self, msg: Message) -> None:
        sid = msg.payload["shard"]
        if sid not in self.map.shards:
            self.respond(msg, "error", {"error": f"unknown shard {sid!r}"})
            return
        self.respond(
            msg,
            "shard_info",
            {"shard": self.map.shard(sid).to_dict(), "epoch": self.map.epoch},
        )

    # ------------------------------------------------------------------
    # liveness & failover
    # ------------------------------------------------------------------
    def _on_heartbeat(self, msg: Message) -> None:
        self._last_seen[msg.payload["controlet"]] = self.now()

    def _on_datalet_failed(self, msg: Message) -> None:
        """Split-placement failure report: a controlet's (remote)
        datalet stopped answering.  The pair is repaired as a unit —
        the orphaned controlet is retired and the shard relinked, the
        same path a missed host heartbeat takes."""
        controlet = msg.payload["controlet"]
        sid = msg.payload["shard"]
        if controlet in self._dead or sid not in self.map.shards:
            return
        shard = self.map.shard(sid)
        try:
            replica = shard.replica_of(controlet)
        except Exception:  # noqa: BLE001 - stale report after repair
            return
        self._handle_failure(shard, replica)
        self.send(controlet, "retire", {})

    def _sweep(self) -> None:
        now = self.now()
        for shard in list(self.map.shards.values()):
            for replica in shard.ordered():
                c = replica.controlet
                if c in self._dead:
                    continue
                seen = self._last_seen.get(c, now)
                if now - seen > self.config.failure_timeout:
                    self._handle_failure(shard, replica)
        self.set_timer(self.config.heartbeat_interval, self._sweep)

    def _handle_failure(self, shard: ShardInfo, dead: Replica) -> None:
        """Chain repair + leader election + replacement launch."""
        self.failovers += 1
        self._dead.add(dead.controlet)
        # If the dead node was itself a mid-recovery replacement
        # (AA-strong join-first), its in-flight entry must not count
        # toward shard strength below.
        self._recovering.pop(dead.controlet, None)
        self._pending_replicas.pop(dead.controlet, None)
        shard.remove_replica(dead.controlet)
        # Re-number the chain: if the head died this *is* the leader
        # election (second node promoted); if a mid/tail died the chain
        # simply re-links around it.
        for pos, replica in enumerate(shard.ordered()):
            replica.chain_pos = pos
        self.map.bump()
        self._broadcast_config(shard)

        # Refill toward the deployment's target strength, counting
        # replacements already in flight: a promoted standby replaying a
        # death from a stale map (the old primary repaired it, then died
        # before syncing) must not spawn a second replacement.
        target = self._shard_target.get(shard.shard_id, len(shard.replicas) + 1)
        inflight = sum(1 for sid in self._recovering.values() if sid == shard.shard_id)
        if (
            self.spawner is not None
            and shard.replicas
            and len(shard.replicas) + inflight < target
        ):
            # Recover from the current tail: under chain replication the
            # tail holds every committed write; under EC/AA any live
            # replica is as good as another.  Capture the source BEFORE
            # any join-first append below changes who the tail is.
            source = shard.tail.datalet
            new_replica = self.spawner(shard, source)
            if new_replica is None:
                # No standby host available: the shard keeps serving
                # with fewer replicas, but flag the exposure so clients
                # and operators can see it.
                self.map.degraded.add(shard.shard_id)
                self.map.bump()
                self._broadcast_config(shard)
                return
            self._recovering[new_replica.controlet] = shard.shard_id
            self._last_seen[new_replica.controlet] = self.now()
            if (
                shard.topology is Topology.AA
                and shard.consistency is Consistency.STRONG
            ):
                # Join-first (AA strong): fan-out writers replicate to
                # every member of the shard view, so the replacement
                # must appear in the view *before* its state transfer
                # starts — it buffers incoming writes while recovering.
                # Use the registered pending replica object if the
                # spawner recorded one, so identity stays consistent.
                replica = self._pending_replicas.get(
                    new_replica.controlet, new_replica
                )
                replica.chain_pos = len(shard.replicas)
                shard.replicas.append(replica)
                self.map.bump()
                self._broadcast_config(shard)

    def _on_recovery_done(self, msg: Message) -> None:
        controlet = msg.payload["controlet"]
        sid = self._recovering.pop(controlet, None)
        if sid is None or sid not in self.map.shards:
            return
        shard = self.map.shard(sid)
        # The deployment's spawner registered the replica's identity via
        # the pending queue; re-derive it from the heartbeat payload.
        # The replacement joins at the end of the chain (paper: "adds
        # the new pair as the new tail").
        replica = self._pending_replicas.pop(controlet, None)
        if replica is None:
            return
        self.map.degraded.discard(sid)
        if any(r.controlet == controlet for r in shard.replicas):
            # Join-first path (AA strong): already a member; recovery
            # completion only clears the pending bookkeeping.
            return
        replica.chain_pos = len(shard.replicas)
        shard.replicas.append(replica)
        self.map.bump()
        self._broadcast_config(shard)

    def register_pending(self, replica: Replica) -> None:
        """Called by the deployment's spawner so the coordinator can add
        the replica to the shard once recovery completes."""
        self._pending_replicas[replica.controlet] = replica

    def _broadcast_config(self, shard: ShardInfo) -> None:
        payload = {"shard": shard.to_dict(), "epoch": self.map.epoch}
        for replica in shard.ordered():
            self.send(replica.controlet, "config_update", dict(payload))

    def leader_elect(self, shard_id: str) -> str:
        """LeaderElect(s) (Table III): current head after repairs."""
        return self.map.shard(shard_id).head.controlet

    # ------------------------------------------------------------------
    # model-checker introspection
    # ------------------------------------------------------------------
    def snapshot_state(self):
        """Fingerprint state with *quantized* liveness: raw ``_last_seen``
        timestamps never repeat, so they would keep the explored graph
        from ever closing.  What matters behaviorally is how many more
        failure-detector sweeps a silent node survives — an integer that
        progresses as the explorer advances time and saturates once the
        node is overdue."""
        s = super().snapshot_state()
        now = self.now()
        hb = self.config.heartbeat_interval
        cap = int(self.config.failure_timeout / hb) + 2
        staleness = {}
        for c, seen in self._last_seen.items():
            if c in self._dead:
                continue
            staleness[c] = min(int(max(0.0, now - seen) / hb), cap)
        s.update({
            "epoch": self.map.epoch,
            "shards": {
                sid: [r.controlet for r in shard.ordered()]
                for sid, shard in self.map.shards.items()
            },
            "degraded": sorted(self.map.degraded),
            "dead": sorted(self._dead),
            "staleness": staleness,
            "recovering": dict(self._recovering),
            "pending_replicas": sorted(self._pending_replicas),
            "transitions": sorted(self._transitions),
        })
        return s

    # ------------------------------------------------------------------
    # transitions (§V)
    # ------------------------------------------------------------------
    def _on_request_transition(self, msg: Message) -> None:
        if self.transition_spawner is None:
            self.respond(msg, "error", {"error": "no transition spawner configured"})
            return
        if self._transitions:
            self.respond(msg, "error", {"error": "transition already in progress"})
            return
        topology = Topology(msg.payload["topology"])
        consistency = Consistency(msg.payload["consistency"])
        self._transition_requester = msg
        for shard in self.map.shards.values():
            new_shard = self.transition_spawner(shard, topology, consistency)
            old_controlets = shard.controlets()
            self._transitions[shard.shard_id] = {
                "new_shard": new_shard,
                "waiting": set(old_controlets),
                "old": list(old_controlets),
            }
            forward_to = new_shard.head.controlet
            for c in old_controlets:
                self.send(c, "transition_start", {"forward_to": forward_to})

    def _on_transition_ready(self, msg: Message) -> None:
        sid = msg.payload["shard"]
        state = self._transitions.get(sid)
        if state is None:
            return
        waiting: Set[str] = state["waiting"]  # type: ignore[assignment]
        waiting.discard(msg.payload["controlet"])
        if waiting:
            return
        # Every old controlet drained: flip the shard to the new service.
        new_shard: ShardInfo = state["new_shard"]  # type: ignore[assignment]
        self.map.shards[sid] = new_shard
        self.map.bump()
        now = self.now()
        for replica in new_shard.ordered():
            self._last_seen.setdefault(replica.controlet, now)
        self._broadcast_config(new_shard)
        for old in state["old"]:  # type: ignore[union-attr]
            self.send(old, "retire", {})
        del self._transitions[sid]
        if not self._transitions and self._transition_requester is not None:
            req, self._transition_requester = self._transition_requester, None
            self.respond(req, "transition_done", {"epoch": self.map.epoch})
