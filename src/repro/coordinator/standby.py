"""Coordinator resilience: primary/standby pair (paper §VII,
§VIII-A: "The coordinator is a single process (backed-up using
ZooKeeper with a standby process as follower)").

The primary coordinator streams every cluster-map change to its
follower (``coord_sync``); the follower answers read-only metadata
queries from its mirrored map, heartbeats the primary, and **promotes
itself** when the primary goes silent — taking over sweeps, failover
orchestration, and transitions.  Controlets heartbeat *both*
coordinators (cheap), so the follower owns fresh liveness data the
moment it promotes.

Clients hold a coordinator preference list and fail over on timeout
(see :meth:`repro.client.kv.KVClient`); controlets fall back the same
way for shard-info refreshes.
"""

from __future__ import annotations

from typing import List, Optional

from repro.coordinator.coordinator import CoordinatorActor
from repro.net.message import Message

__all__ = ["PrimaryCoordinator", "StandbyCoordinator"]


class PrimaryCoordinator(CoordinatorActor):
    """Coordinator that mirrors its state to follower(s)."""

    def __init__(self, *args, followers: Optional[List[str]] = None, **kwargs):
        super().__init__(*args, **kwargs)
        self.followers = followers or []

    def on_start(self) -> None:
        super().on_start()
        self._sync_followers(stagger=True)

    def _sync_followers(self, stagger: bool = False) -> None:
        payload = {"view": self.view.to_dict()}
        for f in self.followers:
            self.send(f, "coord_sync", dict(payload))
        delay = self.config.heartbeat_interval
        if stagger:
            # one-time phase offset vs. the sweep loop (same period)
            delay += self.loop_phase("coord-sync", delay)
        self.set_timer(delay, self._sync_followers)


class StandbyCoordinator(CoordinatorActor):
    """Follower: serves stale-but-close metadata reads, watches the
    primary, and promotes on silence."""

    def __init__(self, *args, primary: str = "coordinator", **kwargs):
        super().__init__(*args, **kwargs)
        self.primary = primary
        self.promoted = False
        self._primary_seen = 0.0
        self.register("coord_sync", self._on_sync)

    # -- follower mode ---------------------------------------------------
    def on_start(self) -> None:
        # No sweep while following: failover authority stays with the
        # primary.  Liveness bookkeeping still runs (we receive the
        # same controlet heartbeats the primary does).
        now = self.now()
        self._primary_seen = now
        for shard in self.map.shards.values():
            for r in shard.replicas:
                self._last_seen.setdefault(r.controlet, now)
        self.set_timer(
            self.config.heartbeat_interval
            + self.loop_phase("watch-primary", self.config.heartbeat_interval),
            self._watch_primary,
        )

    def _on_sync(self, msg: Message) -> None:
        self._primary_seen = self.now()
        if not self.promoted:
            # Epoch-fenced adoption: a reordered stale snapshot (older
            # or equal epoch) must never roll the mirrored view back.
            if self.view.install(msg.payload["view"]):
                # First sight of each shard fixes its repair target (we
                # are constructed with an empty map, so on_start saw
                # none).
                self._record_targets()

    def _watch_primary(self) -> None:
        if self.promoted:
            return
        if self.now() - self._primary_seen > self.config.failure_timeout:
            self.promote()
            return
        self.set_timer(self.config.heartbeat_interval, self._watch_primary)

    # -- promotion ---------------------------------------------------------
    def promote(self) -> None:
        """Assume the primary role: start sweeping and repairing."""
        if self.promoted:
            return
        self.promoted = True
        now = self.now()
        for shard in self.map.shards.values():
            for r in shard.replicas:
                # grace period: don't declare everyone dead because our
                # heartbeat history predates the promotion
                self._last_seen[r.controlet] = max(
                    self._last_seen.get(r.controlet, now), now
                )
        self.set_timer(self.config.heartbeat_interval, self._sweep)

    # transitions/failovers before promotion would be split-brain;
    # refuse them while following.
    def _on_request_transition(self, msg: Message) -> None:
        if not self.promoted:
            self.respond(msg, "error", {"error": "standby: not the primary"})
            return
        super()._on_request_transition(msg)

    # -- model-checker introspection ---------------------------------------
    def snapshot_state(self):
        s = super().snapshot_state()
        hb = self.config.heartbeat_interval
        cap = int(self.config.failure_timeout / hb) + 2
        s.update({
            "promoted": self.promoted,
            # quantized like the liveness staleness in the base class
            "primary_staleness": min(
                int(max(0.0, self.now() - self._primary_seen) / hb), cap
            ),
        })
        return s
