"""Coordinator: metadata service, liveness tracking, failover, and the
transition manager (paper §III "Coordinator", §V).

The paper builds this on ZooKeeper; here it is a first-class actor with
the same three responsibilities — cluster-map queries, heartbeat
liveness, failover orchestration — plus the §V dual-controlet
transition protocol.
"""

from repro.coordinator.coordinator import CoordinatorActor
from repro.coordinator.standby import PrimaryCoordinator, StandbyCoordinator

__all__ = ["CoordinatorActor", "PrimaryCoordinator", "StandbyCoordinator"]
