"""Lease-based reader/writer lock table and its message front-end."""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Set, Tuple

from repro.hashing.ring import HashRing
from repro.net.actor import Actor
from repro.net.message import Message

__all__ = ["LockTable", "LockManagerActor"]


@dataclass
class _LockState:
    """Per-key lock: either one writer or any number of readers."""

    writer: Optional[str] = None
    readers: Set[str] = field(default_factory=set)
    #: FIFO of (owner, mode, grant_callback) waiting for the lock.
    waiters: Deque[Tuple[str, str, Callable[[], None]]] = field(default_factory=deque)

    @property
    def free(self) -> bool:
        return self.writer is None and not self.readers


class LockTable:
    """Synchronous core of the lock manager (unit-testable sans actor).

    ``acquire`` returns True when granted immediately; otherwise the
    callback fires on grant.  Fairness is FIFO: a queued writer blocks
    later readers (no writer starvation).
    """

    def __init__(self) -> None:
        self._locks: Dict[str, _LockState] = {}
        self.grants = 0
        self.contentions = 0

    def _state(self, key: str) -> _LockState:
        st = self._locks.get(key)
        if st is None:
            st = self._locks[key] = _LockState()
        return st

    def acquire(self, key: str, owner: str, mode: str, on_grant: Callable[[], None]) -> bool:
        if mode not in ("r", "w"):
            raise ValueError(f"lock mode must be 'r' or 'w', got {mode!r}")
        st = self._state(key)
        if self._grantable(st, mode):
            self._grant(st, owner, mode)
            on_grant()
            return True
        self.contentions += 1
        st.waiters.append((owner, mode, on_grant))
        return False

    def _grantable(self, st: _LockState, mode: str) -> bool:
        if st.writer is not None:
            return False
        if mode == "w":
            return not st.readers
        # readers may pile on only if no writer is queued (fairness)
        return not st.waiters

    def _grant(self, st: _LockState, owner: str, mode: str) -> None:
        if mode == "w":
            st.writer = owner
        else:
            st.readers.add(owner)
        self.grants += 1

    def release(self, key: str, owner: str) -> bool:
        """Release ``owner``'s hold; returns False if it held nothing."""
        st = self._locks.get(key)
        if st is None:
            return False
        if st.writer == owner:
            st.writer = None
        elif owner in st.readers:
            st.readers.discard(owner)
        else:
            return False
        self._wake(key, st)
        return True

    def _wake(self, key: str, st: _LockState) -> None:
        granted: List[Callable[[], None]] = []
        while st.waiters:
            owner, mode, cb = st.waiters[0]
            if not self._grantable_ignoring_queue(st, mode):
                break
            st.waiters.popleft()
            self._grant(st, owner, mode)
            granted.append(cb)
            if mode == "w":
                break
        if st.free and not st.waiters:
            del self._locks[key]
        for cb in granted:
            cb()

    @staticmethod
    def _grantable_ignoring_queue(st: _LockState, mode: str) -> bool:
        if st.writer is not None:
            return False
        if mode == "w":
            return not st.readers
        return True

    def holders(self, key: str) -> Tuple[Optional[str], Set[str]]:
        st = self._locks.get(key)
        if st is None:
            return None, set()
        return st.writer, set(st.readers)

    def queue_len(self, key: str) -> int:
        st = self._locks.get(key)
        return len(st.waiters) if st else 0


class LockManagerActor(Actor):
    """DLM server.

    Protocol: ``lock`` {key, mode} → ``granted``; ``unlock`` {key} →
    ``ok``.  Each grant carries a lease; if the holder neither unlocks
    nor renews within ``lease``, the lock auto-releases.
    """

    def __init__(self, node_id: str = "dlm", lease: float = 1.0):
        super().__init__(node_id)
        self.table = LockTable()
        self.lease = lease
        self._lease_timers: Dict[Tuple[str, str], object] = {}
        self.expired = 0
        #: open reshard window (the DLM is the ordering authority for
        #: AA+SC shards, so it is *armed before* any controlet or client
        #: learns the window): ``{"gen", "old", "new", "dirty"}`` with
        #: old/new the two :class:`HashRing`\ s and ``dirty`` the keys
        #: written under a w-lock while the window is open.
        self._reshard: Optional[Dict[str, object]] = None
        self.register("lock", self._on_lock)
        self.register("unlock", self._on_unlock)
        self.register("reshard_begin", self._on_reshard_begin)
        self.register("reshard_end", self._on_reshard_end)

    def service_demand(self, msg: Message, costs) -> float:
        return costs.scaled("dlm_overhead")

    def metrics_group(self) -> Dict[str, float]:
        return {
            "grants": self.table.grants,
            "contentions": self.table.contentions,
            "expired": self.expired,
        }

    def _moved(self, key: str) -> bool:
        """True when the open window re-assigns ``key`` to a new owner."""
        win = self._reshard
        if win is None:
            return False
        return win["old"].lookup(key) != win["new"].lookup(key)  # type: ignore[union-attr]

    def _on_lock(self, msg: Message) -> None:
        key = msg.payload["key"]
        mode = msg.payload.get("mode", "w")
        owner = msg.src
        win = self._reshard
        if (
            win is not None
            and mode == "w"
            and not msg.payload.get("mig")
            and self._moved(key)
            and msg.payload.get("gen") != win["gen"]
        ):
            # Backstop against stale routing: a write for a moved key
            # from a controlet that has not adopted the window's ring
            # generation would land only on the old owner and be lost
            # at the cutover.  Bounce it — the client refreshes its map
            # and re-issues the (dual-routed) write.
            self.respond(msg, "error", {"error": "wrong_shard"})
            return

        def grant() -> None:
            timer = self.set_timer(self.lease, lambda: self._expire(key, owner))
            self._lease_timers[(key, owner)] = timer
            payload: Dict[str, object] = {"key": key, "lease": self.lease}
            w = self._reshard
            if w is not None and mode == "w":
                dirty: Set[str] = w["dirty"]  # type: ignore[assignment]
                if msg.payload.get("mig"):
                    # migration driver: tell it whether a client write
                    # beat it to the key (evaluated at *grant* time —
                    # writes that queued ahead of us have marked by now)
                    payload["dirty"] = key in dirty
                elif self._moved(key):
                    dirty.add(key)
            self.respond(msg, "granted", payload)

        self.table.acquire(key, owner, mode, grant)

    def _on_reshard_begin(self, msg: Message) -> None:
        gen = int(msg.payload["gen"])
        if self._reshard is None or self._reshard["gen"] != gen:
            self._reshard = {
                "gen": gen,
                "old": HashRing(list(msg.payload["old"])),
                "new": HashRing(list(msg.payload["new"])),
                "dirty": set(),
            }
        self.respond(msg, "ok", {"gen": gen})

    def _on_reshard_end(self, msg: Message) -> None:
        if (
            self._reshard is not None
            and self._reshard["gen"] == int(msg.payload.get("gen", -1))
        ):
            self._reshard = None

    def _on_unlock(self, msg: Message) -> None:
        key = msg.payload["key"]
        owner = msg.src
        timer = self._lease_timers.pop((key, owner), None)
        if timer is not None:
            timer.cancel()  # type: ignore[attr-defined]
        released = self.table.release(key, owner)
        self.respond(msg, "ok", {"released": released})

    def _expire(self, key: str, owner: str) -> None:
        """Lease ran out: force-release so a dead holder cannot deadlock
        the shard (paper App C-B)."""
        if self._lease_timers.pop((key, owner), None) is not None:
            if self.table.release(key, owner):
                self.expired += 1

    # -- model-checker introspection -----------------------------------
    def snapshot_state(self):
        s = super().snapshot_state()
        s["reshard_gen"] = self._reshard["gen"] if self._reshard else 0
        s["locks"] = {
            key: {
                "writer": st.writer,
                "readers": sorted(st.readers),
                "queue": [(owner, mode) for owner, mode, _cb in st.waiters],
            }
            for key, st in sorted(self.table._locks.items())
        }
        return s
