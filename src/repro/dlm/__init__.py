"""Distributed lock manager (paper §III optional components, Table III).

BESPOKV imports Redlock for its locking service; here the DLM is a
lease-based lock server actor with reader/writer modes, FIFO fairness
and automatic lease expiry — the paper's deadlock-freedom rule:
"locks are released after a configurable period of time. If a controlet
fails after acquiring a lock, the lock is auto-released after it
expires."

The AA+SC controlet is its only framework client, and the lock-server
round trips plus serialization on hot keys are exactly what caps AA+SC
throughput in Fig 7/12.
"""

from repro.dlm.manager import LockManagerActor, LockTable

__all__ = ["LockManagerActor", "LockTable"]
