"""Command-line interface — the artifact's runnable surface.

The paper's artifact ships ``conkv`` (a datalet server), ``conproxy``
(the controlet) and a bench client.  The equivalents here:

* ``bespokv serve``  — serve a datalet engine over real TCP
  (RESP or framed-binary protocol); the ``conkv`` experience.
* ``bespokv bench``  — stand up a simulated deployment from CLI flags
  (or the artifact's JSON config file) and drive a YCSB-style workload,
  printing throughput/latency.
* ``bespokv demo``   — a 30-second tour: deploy, write, read, kill a
  node, watch failover, switch consistency live.
* ``bespokv chaos``  — seeded randomized fault soak judged by the
  consistency oracles (optionally race-detector instrumented and/or
  payload-sanitized).
* ``bespokv check``  — exhaustive small-scope model check: every
  message/timer/crash interleaving within declared scope bounds, with
  replayable counterexample traces.
* ``bespokv lint``   — static determinism + protocol-conformance
  checks over the package source (text, JSON, or GitHub-annotation
  output).

Installed as the ``bespokv`` console script; also runnable as
``python -m repro.cli``.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.core.config import load_deployment_config
from repro.core.types import Consistency, Topology
from repro.datalet import ENGINE_KINDS, make_engine

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="bespokv",
        description="bespokv-py: application-tailored scale-out KV stores (SC'18 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="serve a datalet engine over TCP")
    serve.add_argument("--engine", choices=sorted(ENGINE_KINDS), default="ht")
    serve.add_argument("--protocol", choices=("resp", "binary"), default="resp")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0, help="0 = ephemeral")
    serve.add_argument("--serve-seconds", type=float, default=None,
                       help="exit after N seconds (default: run until interrupted)")

    bench = sub.add_parser("bench", help="deploy + drive a workload (simulated)")
    bench.add_argument("--config", help="artifact-style JSON deployment config")
    bench.add_argument("--topology", choices=("ms", "aa"), default="ms")
    bench.add_argument("--consistency", choices=("strong", "eventual"), default="eventual")
    bench.add_argument("--shards", type=int, default=4)
    bench.add_argument("--replicas", type=int, default=3)
    bench.add_argument("--datalet", choices=sorted(ENGINE_KINDS), default="ht")
    bench.add_argument("--mix", choices=("a", "b", "e"), default="b",
                       help="YCSB mix: a=50%% GET, b=95%% GET, e=scan-heavy")
    bench.add_argument("--distribution", choices=("zipfian", "uniform"), default="zipfian")
    bench.add_argument("--keys", type=int, default=2000)
    bench.add_argument("--clients", type=int, default=None)
    bench.add_argument("--duration", type=float, default=2.0)
    bench.add_argument("--warmup", type=float, default=0.5)
    bench.add_argument("--cpu-scale", type=float, default=150.0)
    bench.add_argument("--seed", type=int, default=0)

    demo = sub.add_parser("demo", help="guided tour of the framework")
    demo.add_argument("--shards", type=int, default=3)

    chaos = sub.add_parser(
        "chaos",
        help="seeded randomized fault soak + consistency oracle",
        description="Deploy each topology/consistency combo, replay a "
        "random fault schedule drawn from --seed (crashes, asymmetric "
        "partitions, latency spikes, slow nodes, duplication/reorder), "
        "and judge the recorded client history: linearizability for the "
        "strong combos, validity + replica convergence for the eventual "
        "ones.  Identical seeds produce identical runs bit-for-bit.",
    )
    chaos.add_argument("--seed", type=int, action="append", default=None,
                       help="run seed; repeat for a multi-seed soak (default: 1)")
    chaos.add_argument("--duration", type=float, default=15.0,
                       help="chaos window length in simulated seconds")
    chaos.add_argument("--combo", choices=("ms-sc", "ms-ec", "aa-sc", "aa-ec"),
                       action="append", default=None,
                       help="restrict to specific combos (default: all four)")
    chaos.add_argument("--shards", type=int, default=2)
    chaos.add_argument("--replicas", type=int, default=3)
    chaos.add_argument("--clients", type=int, default=3)
    chaos.add_argument("--quiesce", type=float, default=10.0,
                       help="post-chaos settle time before the final read sweep")
    chaos.add_argument("--show-schedule", action="store_true",
                       help="print each run's fault schedule")
    chaos.add_argument("--detect-races", action="store_true",
                       help="instrument the kernel for schedule-sensitive "
                       "same-timestamp conflicts (advisory; never fails the run)")
    chaos.add_argument("--sanitize", action="store_true",
                       help="copy-on-send payload sanitizer: freeze payloads "
                       "at delivery and verify send-vs-delivery digests; an "
                       "aliasing bug raises at the mutating line")
    chaos.add_argument("--trace", action="store_true",
                       help="attach the span recorder; oracle violations are "
                       "printed with the offending requests' full span trees")
    chaos.add_argument("--durable", action="store_true",
                       help="give every datalet a write-ahead log on its "
                       "host's durable store (fsync before ack)")
    chaos.add_argument("--restart", action="store_true",
                       help="durable crash-restart chaos: schedules also draw "
                       "short-downtime power cycles that recover nodes from "
                       "their WAL (implies --durable) and the recovery "
                       "oracle judges every recovery")
    chaos.add_argument("--rolling-restart", action="store_true",
                       help="replace the random schedule with a deterministic "
                       "rolling restart: every data host power-cycles in "
                       "sequence, one at a time, recovering from its WAL "
                       "(implies --durable; the recovery oracle judges every "
                       "recovery)")
    chaos.add_argument("--reshard", action="store_true",
                       help="online resharding under load: add a shard at "
                       "~25%% of the window, drain + remove an original "
                       "shard at ~60%%, live key migration throughout; the "
                       "fault menu drops to mild perturbations (latency, "
                       "slow nodes, duplicates, reorders)")
    chaos.add_argument("--wal-sync-every", type=int, default=1,
                       help="fsync after this many appends (1 = every ack; "
                       ">1 = group commit, crash may lose the unsynced tail)")
    chaos.add_argument("--batch", type=int, default=None, metavar="N",
                       help="cap every hot-path batch at N (sequencer group "
                       "commit, chain frames, replicate frames); 1 disables "
                       "coalescing — the unbatched soak the batching tier "
                       "compares against")

    trace = sub.add_parser(
        "trace",
        help="run a traced workload and print the latency breakdown",
        description="Deploy one combo with the span recorder attached, "
        "drive a small deterministic workload, and print the per-stage "
        "latency breakdown (client op, RPC attempts, network transit, "
        "receiver CPU, backoff).  --out dumps the spans as seed-stable "
        "repro.obs.trace/1 JSONL: the same seed produces byte-identical "
        "files across runs.",
    )
    trace.add_argument("--combo", default="ms-sc",
                       help="topology-consistency combo: ms-sc, ms-ec, "
                       "aa-sc or aa-ec (underscores accepted)")
    trace.add_argument("--seed", type=int, default=1)
    trace.add_argument("--ops", type=int, default=60,
                       help="operations in the deterministic workload")
    trace.add_argument("--shards", type=int, default=2)
    trace.add_argument("--replicas", type=int, default=3)
    trace.add_argument("--out", default=None, metavar="FILE",
                       help="write the span JSONL here")
    trace.add_argument("--check", action="store_true",
                       help="fail if the span tree is malformed "
                       "(dangling spans, missing parents)")
    trace.add_argument("--show-trace", type=int, default=None, metavar="N",
                       help="also render the span tree of trace id N")

    check = sub.add_parser(
        "check",
        help="exhaustive small-scope model check of one combo",
        description="Run the real controlet/coordinator code under a "
        "controlled scheduler and explore EVERY interleaving of message "
        "deliveries, timer advances, crashes and (with --restart) "
        "WAL-recovery restarts within the declared scope bounds (nodes, "
        "ops, crash/restart and advance budgets).  Client histories are "
        "judged by the chaos oracles at every terminal state — the "
        "recovery oracle too when restarts happened; violations come "
        "with a minimal decision trace that --replay re-executes "
        "deterministically.",
    )
    check.add_argument("--combo", choices=("ms-sc", "ms-ec", "aa-sc", "aa-ec"),
                       default="ms-sc")
    check.add_argument("--nodes", type=int, default=2,
                       help="replicas in the (single) shard")
    check.add_argument("--clients", type=int, default=1)
    check.add_argument("--ops", type=int, default=3,
                       help="operations per client (alternating put/get on one key)")
    check.add_argument("--crashes", type=int, default=1,
                       help="crash fault budget per schedule")
    check.add_argument("--restart", "--restarts", dest="restarts", type=int,
                       nargs="?", const=1, default=0, metavar="N",
                       help="restart budget per schedule: crashed hosts may "
                       "power back on mid-interleaving through the real "
                       "WAL-replay + stale-rejoin recovery path (implies "
                       "--durable; budget 1 when given without a value)")
    check.add_argument("--durable", action="store_true",
                       help="WAL-backed datalets on per-host durable stores; "
                       "durable contents fold into the state fingerprints")
    check.add_argument("--wal-sync-every", type=int, default=1,
                       help="fsync cadence for --durable (1 = every append; "
                       ">1 = group commit, crash loses the unsynced tail)")
    check.add_argument("--seed", type=int, default=0)
    check.add_argument("--inject", default=None, metavar="DEFECT",
                       help="seed a named known-bad build (early-ack, or "
                       "unsynced-ack for the ack-before-durable defect the "
                       "recovery oracle catches under --restart) to "
                       "demonstrate counterexample discovery")
    check.add_argument("--advance-budget", type=int, default=40,
                       help="scope bound on timer/clock advances per path")
    check.add_argument("--lazy-network", action="store_true",
                       help="drop the maximal-progress reduction: interleave "
                       "time advances with pending deliveries (much larger "
                       "space; only tractable for the smallest scenarios)")
    check.add_argument("--max-states", type=int, default=20000)
    check.add_argument("--max-depth", type=int, default=200)
    check.add_argument("--time-budget", type=float, default=None,
                       help="wall-clock search budget in seconds")
    check.add_argument("--trace-out", metavar="FILE", default=None,
                       help="write the counterexample trace JSON here")
    check.add_argument("--replay", metavar="TRACE", default=None,
                       help="re-execute a previously written counterexample "
                       "trace instead of exploring")

    lint = sub.add_parser(
        "lint",
        help="static determinism + protocol-conformance checks",
        description="Run the repro.analysis passes over the package "
        "source: the determinism linter (wall-clock reads, unseeded or "
        "ad-hoc RNG, set-order iteration, builtin hash()/id() ordering "
        "in protocol code) and the protocol-conformance checker "
        "(message types sent but never handled, handlers registered "
        "for types nothing sends) plus the commit-point and flow-control "
        "passes (pump-liveness, backpressure, retry-idempotency, "
        "config-epoch fencing).  Exit 1 on unsuppressed errors; "
        "--strict also fails on warnings.",
    )
    lint.add_argument("--root", default=None,
                      help="package root to scan (default: the installed repro package)")
    lint.add_argument("--strict", action="store_true",
                      help="treat warnings as failures")
    lint.add_argument("--show-suppressed", action="store_true",
                      help="also print findings silenced by pragmas/allowlist")
    lint.add_argument("--no-conformance", action="store_true",
                      help="skip the protocol-conformance pass")
    lint.add_argument("--no-flow", action="store_true",
                      help="skip the flow-control passes")
    lint.add_argument("--inject-flow-defects", action="store_true",
                      help="also run the flow passes over the seeded "
                      "known-bad builds in analysis/flowdefects.py; "
                      "MUST exit 1 (CI's must-fail regression step)")
    lint.add_argument("--format", choices=("text", "json", "github"),
                      default="text",
                      help="text = human lines; json = versioned machine "
                      "envelope; github = ::error/::warning workflow "
                      "commands for inline PR annotations")
    lint.add_argument("--path-prefix", default="src/repro/",
                      help="prefix rebasing lint-relative paths onto "
                      "repo-relative ones for --format github")
    return parser


# ---------------------------------------------------------------------------
# serve
# ---------------------------------------------------------------------------
def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.net.tcp import DataletServer

    engine = make_engine(args.engine)
    server = DataletServer(engine, protocol=args.protocol, host=args.host, port=args.port)
    host, port = server.start()
    print(f"datalet engine={args.engine} protocol={args.protocol} "
          f"listening on {host}:{port}")
    if args.protocol == "resp":
        print(f"try: redis-cli -h {host} -p {port}  (SET/GET/DEL/SCAN/DBSIZE/PING)")
    try:
        if args.serve_seconds is not None:
            # real TCP server: bounded wall sleep is the whole point
            time.sleep(args.serve_seconds)  # lint: allow[wallclock]
        else:  # pragma: no cover - interactive path
            while True:
                time.sleep(3600)  # lint: allow[wallclock]
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        pass
    finally:
        server.stop()
    print("server stopped")
    return 0


# ---------------------------------------------------------------------------
# bench
# ---------------------------------------------------------------------------
def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.harness import Deployment, DeploymentSpec
    from repro.harness.loadgen import LoadGenerator, preload
    from repro.sim import CostModel
    from repro.workloads import YCSB_A, YCSB_B, YCSB_E, make_workload

    if args.config:
        cfg = load_deployment_config(args.config)
        topology, consistency = cfg.topology, cfg.consistency
        replicas = cfg.num_replicas
        datalet = cfg.datalet_kinds[0]
    else:
        topology = Topology(args.topology)
        consistency = Consistency(args.consistency)
        replicas = args.replicas
        datalet = args.datalet

    spec = DeploymentSpec(
        shards=args.shards, replicas=replicas, topology=topology,
        consistency=consistency, datalet_kinds=(datalet,),
        costs=CostModel(cpu_scale=args.cpu_scale), seed=args.seed,
    )
    dep = Deployment(spec)
    dep.start()

    mix = {"a": YCSB_A, "b": YCSB_B, "e": YCSB_E}[args.mix]
    wl0 = make_workload(mix, keys=args.keys, seed=1234)
    preload(dep, {wl0.space.key(i): wl0.value() for i in range(args.keys)})

    clients = args.clients or max(3, args.shards * replicas)
    lg = LoadGenerator(
        dep,
        lambda i: make_workload(mix, keys=args.keys,
                                distribution=args.distribution, seed=1000 + i),
        clients=clients, warmup=args.warmup, duration=args.duration,
    )
    # wall-clock timing of the *simulation itself* (reported as
    # simulated-seconds-per-wall-second), not simulated time
    t0 = time.time()  # lint: allow[wallclock]
    result = lg.run()
    wall = time.time() - t0  # lint: allow[wallclock]
    label = f"{topology.value.upper()}+{'SC' if consistency is Consistency.STRONG else 'EC'}"
    print(f"{label}  {args.shards}x{replicas} {datalet} datalets  "
          f"mix={args.mix} dist={args.distribution}")
    print(result)
    print(f"(simulated {args.warmup + args.duration:.1f}s in {wall:.1f}s wall, "
          f"{dep.sim.events_processed:,} events)")
    return 0


# ---------------------------------------------------------------------------
# demo
# ---------------------------------------------------------------------------
def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.harness import Deployment, DeploymentSpec

    dep = Deployment(DeploymentSpec(shards=args.shards, replicas=3,
                                    topology=Topology.MS,
                                    consistency=Consistency.EVENTUAL))
    dep.start()
    sim = dep.sim
    client = dep.client("demo")
    sim.run_future(client.connect())
    print(f"deployed {args.shards} shards x 3 replicas (MS+EC)")
    for i in range(5):
        sim.run_future(client.put(f"key{i}", f"value{i}"))
    sim.run_until(sim.now + 1.0)
    print("key3 ->", sim.run_future(client.get("key3")))
    victim = dep.kill_replica(0, chain_pos=0)
    print(f"killed master host {victim!r} ...")
    sim.run_until(sim.now + 12.0)
    print(f"failover complete (failovers={dep.coordinator.failovers}, "
          f"epoch={dep.map.epoch}); key3 ->", sim.run_future(client.get("key3")))
    print("switching to MS+SC live ...")
    sim.run_future(dep.request_transition(Topology.MS, Consistency.STRONG))
    sim.run_future(client.put("final", "strong"))
    print("final ->", sim.run_future(client.get("final")),
          f"(now {dep.shard(0).topology.value.upper()}+SC, epoch {dep.map.epoch})")
    return 0


# ---------------------------------------------------------------------------
# chaos
# ---------------------------------------------------------------------------
def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.chaos import run_soak
    from repro.chaos.runner import ALL_COMBOS
    from repro.errors import ConfigError

    combo_by_flag = {
        "ms-sc": (Topology.MS, Consistency.STRONG),
        "ms-ec": (Topology.MS, Consistency.EVENTUAL),
        "aa-sc": (Topology.AA, Consistency.STRONG),
        "aa-ec": (Topology.AA, Consistency.EVENTUAL),
    }
    combos = (
        [combo_by_flag[c] for c in args.combo] if args.combo else list(ALL_COMBOS)
    )
    seeds = args.seed or [1]
    spec_overrides = {}
    if args.wal_sync_every != 1:
        spec_overrides["wal_sync_every"] = args.wal_sync_every
    if args.batch is not None:
        from repro.core.config import ControlConfig

        spec_overrides["control"] = ControlConfig(
            group_commit_max=args.batch,
            chain_batch_max=args.batch,
            replicate_batch_max=args.batch,
        )
    # wall-clock soak duration for the operator, not simulated time
    t0 = time.time()  # lint: allow[wallclock]
    try:
        report = run_soak(
            seeds,
            duration=args.duration,
            combos=combos,
            shards=args.shards,
            replicas=args.replicas,
            clients=args.clients,
            quiesce=args.quiesce,
            detect_races=args.detect_races,
            sanitize=args.sanitize,
            trace=args.trace,
            durable=args.durable or args.restart or args.rolling_restart,
            restarts=args.restart,
            rolling_restart=args.rolling_restart,
            reshard=args.reshard,
            spec_overrides=spec_overrides or None,
        )
    except ConfigError as e:
        print(f"chaos: {e}", file=sys.stderr)
        return 2
    if args.show_schedule:
        for result in report.results:
            print(f"--- {result.label} seed={result.seed} schedule ---")
            print(result.schedule.describe())
    print(report.describe())
    if args.sanitize:
        n_sends = sum(r.stats.get("sanitized_sends", 0) for r in report.results)
        n_viol = sum(r.stats.get("payload_violations", 0) for r in report.results)
        print(f"payload sanitizer: {n_viol} violations "
              f"({n_sends} sends digested + frozen)")
    if args.detect_races:
        n_races = sum(r.stats.get("races", 0) for r in report.results)
        n_tied = sum(r.stats.get("tied_groups", 0) for r in report.results)
        print(f"race detector: {n_races} schedule-sensitive conflicts "
              f"({n_tied} tied event groups examined)")
    if args.trace:
        _print_violation_traces(report)
    if args.reshard:
        n_rs = sum(r.stats.get("reshards", 0) for r in report.results)
        n_moved = sum(r.stats.get("keys_migrated", 0) for r in report.results)
        print(f"online resharding: {n_rs} cutovers committed "
              f"({n_moved} keys migrated live)")
    if args.durable or args.restart or args.rolling_restart:
        n_rec = sum(r.stats.get("recoveries", 0) for r in report.results)
        n_torn = sum(r.stats.get("torn_tails", 0) for r in report.results)
        print(f"durable recovery: {n_rec} crash-restart recoveries "
              f"({n_torn} torn WAL tails dropped)")
    print(f"({len(report.results)} runs in {time.time() - t0:.1f}s wall)")  # lint: allow[wallclock]
    return 0 if report.ok else 1


def _print_violation_traces(report, limit: int = 8) -> None:
    """Span trees of the requests behind each failing run's violations."""
    import re

    for result in report.results:
        if result.ok or result.recorder is None:
            continue
        keys: List[str] = []
        for violation in result.report.violations:
            m = re.match(r"(?:key|client \S+ key) '([^']*)'", violation)
            if m and m.group(1) not in keys:
                keys.append(m.group(1))
        shown = 0
        for rec in result.records:
            if rec.key not in keys or rec.trace_id is None:
                continue
            if shown >= limit:
                print(f"  ... more traced ops on violating keys omitted "
                      f"(limit {limit})")
                break
            print(f"--- {result.label} seed={result.seed}: {rec.op} "
                  f"{rec.key!r} by {rec.client} status={rec.status} "
                  f"(trace {rec.trace_id}) ---")
            print(result.recorder.format_trace(rec.trace_id))
            shown += 1


# ---------------------------------------------------------------------------
# trace
# ---------------------------------------------------------------------------
def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.errors import BespoError
    from repro.harness import Deployment, DeploymentSpec

    combo_by_flag = {
        "ms-sc": (Topology.MS, Consistency.STRONG),
        "ms-ec": (Topology.MS, Consistency.EVENTUAL),
        "aa-sc": (Topology.AA, Consistency.STRONG),
        "aa-ec": (Topology.AA, Consistency.EVENTUAL),
    }
    name = args.combo.replace("_", "-")
    if name not in combo_by_flag:
        print(f"trace: unknown combo {args.combo!r} "
              f"(expected one of {sorted(combo_by_flag)})", file=sys.stderr)
        return 2
    topology, consistency = combo_by_flag[name]
    dep = Deployment(DeploymentSpec(
        shards=args.shards, replicas=args.replicas,
        topology=topology, consistency=consistency, seed=args.seed,
    ))
    recorder = dep.cluster.attach_obs()  # before start(): hook every actor
    dep.start()
    sim = dep.sim
    client = dep.client("trace")
    sim.run_future(client.connect())
    # Deterministic op sequence: put-heavy with reads and the odd delete,
    # cycling a small keyspace — no RNG, so the span stream depends only
    # on (combo, seed, ops).
    for i in range(args.ops):
        key = f"k{i % 8}"
        try:
            if i % 3 == 2:
                sim.run_future(client.get(key))
            elif i % 7 == 6:
                sim.run_future(client.delete(key))
            else:
                sim.run_future(client.put(key, f"v{i}"))
        except BespoError:
            pass  # e.g. delete of a never-written key
    sim.run_until(sim.now + 1.0)  # let replication tails close their spans

    errors = recorder.validate()
    label = f"{topology.value.upper()}+{'SC' if consistency is Consistency.STRONG else 'EC'}"
    print(f"{label} seed={args.seed} ops={args.ops}: "
          f"{len(recorder.spans)} spans recorded")
    print(recorder.breakdown_table())
    if args.show_trace is not None:
        print(f"--- trace {args.show_trace} ---")
        print(recorder.format_trace(args.show_trace))
    if errors:
        print(f"span tree: {len(errors)} problem(s)")
        for e in errors[:20]:
            print(f"  {e}")
    else:
        print("span tree: well-formed")
    if args.out:
        recorder.dump(args.out, meta={
            "combo": name, "seed": args.seed, "ops": args.ops,
        })
        print(f"spans -> {args.out}")
    if args.check and errors:
        return 1
    return 0


# ---------------------------------------------------------------------------
# check
# ---------------------------------------------------------------------------
def _cmd_check(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.analysis.explore import CounterTrace, explore, replay_trace
    from repro.analysis.statespace import INJECTIONS, CheckScenario

    if args.replay:
        trace = CounterTrace.from_json(Path(args.replay).read_text())
        result = replay_trace(trace)
        print(result.describe())
        return 0 if result.reproduced else 1

    if args.inject is not None and args.inject not in INJECTIONS:
        known = ", ".join(sorted(INJECTIONS)) or "(none)"
        print(f"check: unknown injection {args.inject!r}; known: {known}",
              file=sys.stderr)
        return 2
    scenario = CheckScenario(
        combo=args.combo,
        nodes=args.nodes,
        clients=args.clients,
        ops_per_client=args.ops,
        crashes=args.crashes,
        restarts=args.restarts,
        durable=args.durable or args.restarts > 0,
        wal_sync_every=args.wal_sync_every,
        seed=args.seed,
        advance_budget=args.advance_budget,
        eager_network=not args.lazy_network,
        inject=args.inject,
    )
    result = explore(
        scenario,
        max_states=args.max_states,
        max_depth=args.max_depth,
        time_budget=args.time_budget,
    )
    print(result.describe())
    if result.counterexample is not None:
        if args.trace_out:
            Path(args.trace_out).write_text(result.counterexample.to_json() + "\n")
            print(f"counterexample trace -> {args.trace_out} "
                  f"(replay with: bespokv check --replay {args.trace_out})")
        return 1
    return 0


# ---------------------------------------------------------------------------
# lint
# ---------------------------------------------------------------------------
def _cmd_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.analysis import (
        FLOW_INJECTION_SOURCES,
        analyze_flow_sources,
        findings_to_json,
        format_findings,
        format_github,
        package_root,
        run_lint,
        summarize,
    )

    root = Path(args.root) if args.root else package_root()
    findings = run_lint(root, conformance=not args.no_conformance,
                        flow=not args.no_flow)
    if args.inject_flow_defects:
        sources = [(rel, (root / rel).read_text())
                   for rel in FLOW_INJECTION_SOURCES
                   if (root / rel).is_file()]
        findings.extend(analyze_flow_sources(sources))
    counts = summarize(findings)
    if args.format == "json":
        print(findings_to_json(findings))
    elif args.format == "github":
        annotations = format_github(findings, prefix=args.path_prefix)
        if annotations:
            print(annotations)
        print(f"lint: {counts['errors']} error(s), {counts['warnings']} "
              f"warning(s), {counts['suppressed']} suppressed")
    else:
        visible = [f for f in findings if not f.suppressed]
        if args.show_suppressed:
            visible = list(findings)
        if visible:
            print(format_findings(visible))
        print(f"lint: {counts['errors']} error(s), {counts['warnings']} "
              f"warning(s), {counts['suppressed']} suppressed")
    if counts["errors"]:
        return 1
    if args.strict and counts["warnings"]:
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    handler = {
        "serve": _cmd_serve,
        "bench": _cmd_bench,
        "demo": _cmd_demo,
        "chaos": _cmd_chaos,
        "trace": _cmd_trace,
        "check": _cmd_check,
        "lint": _cmd_lint,
    }[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
