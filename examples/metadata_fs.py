#!/usr/bin/env python3
"""§VI-C/D use case: burst-buffer / stacked file-system metadata on
BESPOKV.

Burst-buffer file systems (and metadata-accelerating stacked file
systems like IndexFS/DeltaFS) keep their namespace in a distributed KV
store.  This example builds a small POSIX-ish metadata layer — inodes,
directory entries, create/stat/readdir/unlink — on the BESPOKV client
API using tMT datalets with range partitioning so ``readdir`` is a
single range scan per covering shard.

Because the store is ephemeral and instantiated per job (§VI-C), the
whole "file system" is constructed in milliseconds and can be tuned:
checkpoint-style workloads relax consistency; here we keep MS+SC so
stat-after-create is always consistent.

Run:  python examples/metadata_fs.py
"""

import json

from repro.core.types import Consistency, Topology
from repro.errors import KeyNotFound
from repro.harness import Deployment, DeploymentSpec


class MetadataFS:
    """Tiny namespace layer over a KVClient.

    Layout: inode records at ``i <path>``, directory entries at
    ``d <parent>/<name>`` so a directory's children are contiguous in
    key order — one range scan serves ``readdir``.
    """

    def __init__(self, client, sim):
        self.client = client
        self.sim = sim
        self._put("i /", {"type": "dir", "size": 0})

    # -- helpers -----------------------------------------------------------
    def _put(self, key, record):
        self.sim.run_future(self.client.put(key, json.dumps(record)))

    def _get(self, key):
        return json.loads(self.sim.run_future(self.client.get(key)))

    @staticmethod
    def _split(path):
        parent, _, name = path.rstrip("/").rpartition("/")
        return (parent or "/"), name

    # -- POSIX-ish surface -------------------------------------------------
    def create(self, path, size=0):
        parent, name = self._split(path)
        self.stat(parent)  # parent must exist
        self._put(f"i {path}", {"type": "file", "size": size})
        self._put(f"d {parent.rstrip('/')}/{name}", {"ino": path})

    def mkdir(self, path):
        parent, name = self._split(path)
        self.stat(parent)
        self._put(f"i {path}", {"type": "dir", "size": 0})
        self._put(f"d {parent.rstrip('/')}/{name}", {"ino": path})

    def stat(self, path):
        try:
            return self._get(f"i {path}")
        except KeyNotFound:
            raise FileNotFoundError(path) from None

    def readdir(self, path):
        self.stat(path)
        prefix = f"d {path.rstrip('/')}/"
        items = self.sim.run_future(self.client.scan(prefix, prefix + "￿"))
        return [k[len(prefix):] for k, _v in items]

    def unlink(self, path):
        parent, name = self._split(path)
        self.stat(path)
        self.sim.run_future(self.client.delete(f"i {path}"))
        self.sim.run_future(self.client.delete(f"d {parent.rstrip('/')}/{name}"))


def main() -> None:
    dep = Deployment(
        DeploymentSpec(
            shards=4, replicas=3,
            topology=Topology.MS, consistency=Consistency.STRONG,
            datalet_kinds=("mt",), partitioner="range",
        )
    )
    dep.start()
    client = dep.client("burst-buffer")
    dep.sim.run_future(client.connect())
    fs = MetadataFS(client, dep.sim)
    print("ephemeral metadata store up: 4 shards x 3 tMT replicas, MS+SC, "
          f"ready at t={dep.sim.now * 1e3:.0f} ms")

    # a checkpoint phase: every rank creates its shard file
    fs.mkdir("/ckpt")
    for rank in range(32):
        fs.create(f"/ckpt/rank{rank:03d}.dat", size=rank * 4096)
    print(f"created 32 checkpoint files; readdir -> {len(fs.readdir('/ckpt'))} entries")
    print("sample entries:", fs.readdir("/ckpt")[:4])

    st = fs.stat("/ckpt/rank007.dat")
    print("stat /ckpt/rank007.dat ->", st)

    fs.unlink("/ckpt/rank007.dat")
    try:
        fs.stat("/ckpt/rank007.dat")
    except FileNotFoundError:
        print("unlink works: stat now raises FileNotFoundError")
    print(f"readdir after unlink -> {len(fs.readdir('/ckpt'))} entries")

    # metadata survives a metadata-server failure
    dep.kill_replica(0, chain_pos=0)
    dep.sim.run_until(dep.sim.now + 12.0)
    print(f"killed a metadata node; failovers={dep.coordinator.failovers}; "
          f"stat /ckpt/rank008.dat -> {fs.stat('/ckpt/rank008.dat')}")


if __name__ == "__main__":
    main()
