#!/usr/bin/env python3
"""Quickstart: from a single-server datalet to a distributed KV store.

Part 1 runs a *real* datalet over TCP (the paper's ``conkv``
experience): a B+-tree engine served on localhost speaking a
Redis-compatible protocol.

Part 2 drops the same engine family into the BESPOKV control plane and
gets a sharded, replicated, fault-tolerant store with a chosen
topology/consistency — all in a deterministic simulation, so the
"cluster" runs in milliseconds on a laptop.

Run:  python examples/quickstart.py
"""

from repro.core.types import Consistency, Topology
from repro.datalet import BTreeEngine
from repro.harness import Deployment, DeploymentSpec
from repro.net.tcp import DataletServer, TcpKVClient


def part1_real_tcp_datalet() -> None:
    print("=== Part 1: a single-server datalet over real TCP (RESP) ===")
    with DataletServer(BTreeEngine(), protocol="resp") as server:
        host, port = server.address
        print(f"datalet listening on {host}:{port} (try redis-cli -p {port})")
        with TcpKVClient(host, port) as client:
            client.put("hello", "world")
            client.put("hpc", "rocks")
            print("GET hello ->", client.get("hello"))
            print("SCAN h..i ->", client.scan("h", "i"))
            print("DBSIZE    ->", client.size())
    print()


def part2_distributed_store() -> None:
    print("=== Part 2: the same datalet, scaled out by BESPOKV ===")
    spec = DeploymentSpec(
        shards=4,
        replicas=3,
        topology=Topology.MS,
        consistency=Consistency.STRONG,  # chain replication
        datalet_kinds=("mt",),           # B+-tree datalets
    )
    dep = Deployment(spec)
    dep.start()
    sim = dep.sim

    client = dep.client("app")
    sim.run_future(client.connect())
    print(f"cluster: {spec.shards} shards x {spec.replicas} replicas "
          f"({spec.topology.value.upper()}+{'SC' if spec.consistency is Consistency.STRONG else 'EC'})")

    # writes are chain-replicated; the ack means the tail has the data
    for i in range(10):
        sim.run_future(client.put(f"key{i:02d}", f"value{i}"))
    print("GET key03      ->", sim.run_future(client.get("key03")))

    # per-request consistency (§IV-C): relax one read to eventual
    print("GET key03 (EC) ->", sim.run_future(client.get("key03", consistency="eventual")))

    # table API (paper Table II)
    sim.run_future(client.create_table("users"))
    sim.run_future(client.table_put("u1", "alice", "users"))
    print("users[u1]      ->", sim.run_future(client.table_get("u1", "users")))

    # kill the tail of shard 0 and watch failover heal the chain
    victim = dep.kill_replica(0, chain_pos=2)
    print(f"killed host {victim!r}; waiting for the coordinator ...")
    sim.run_until(sim.now + 12.0)
    shard = dep.shard(0)
    print(f"shard s0 healed: {shard.controlets()} "
          f"(failovers={dep.coordinator.failovers}, epoch={dep.map.epoch})")
    print("GET key03      ->", sim.run_future(client.get("key03")), "(still served)")


if __name__ == "__main__":
    part1_real_tcp_datalet()
    part2_distributed_store()
