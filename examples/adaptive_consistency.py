#!/usr/bin/env python3
"""§V / §VI-E use case: on-the-fly topology & consistency adaptation.

A job-launch service (paper §II) starts on one cluster where a simple
Master-Slave topology suffices; when the job spans multiple clusters,
Active-Active becomes the better fit.  BESPOKV switches the *live*
store from MS+EC to AA+EC — no downtime, no data migration — then
tightens it to strong consistency for a critical phase.

A writer keeps issuing requests through both transitions and reports
that nothing was lost.

Run:  python examples/adaptive_consistency.py
"""

from repro.core.types import Consistency, Topology
from repro.harness import Deployment, DeploymentSpec


def main() -> None:
    dep = Deployment(
        DeploymentSpec(
            shards=3, replicas=3,
            topology=Topology.MS, consistency=Consistency.EVENTUAL,
        )
    )
    dep.start()
    sim = dep.sim
    client = dep.client("job-launcher")
    sim.run_future(client.connect())
    print(f"t={sim.now:5.1f}s  store is MS+EC (single-cluster job launch)")

    outcomes = {"ok": 0, "failed": 0}

    def writer():
        for i in range(400):
            try:
                yield client.put(f"task{i:04d}", f"state{i}")
                outcomes["ok"] += 1
            except Exception:  # noqa: BLE001
                outcomes["failed"] += 1
            yield 0.05

    writer_done = sim.spawn(writer())

    # the job spreads to a second cluster: switch to Active-Active
    sim.call_later(5.0, lambda: dep.request_transition(Topology.AA, Consistency.EVENTUAL))
    sim.run_until(12.0)
    s = dep.shard(0)
    print(f"t={sim.now:5.1f}s  transitioned to {s.topology.value.upper()}+EC "
          f"(epoch {dep.map.epoch}); datalets untouched")

    # critical phase: tighten to strong consistency
    sim.call_later(2.0, lambda: dep.request_transition(Topology.MS, Consistency.STRONG,
                                                       client_name="admin2"))
    sim.run_future(writer_done)
    s = dep.shard(0)
    print(f"t={sim.now:5.1f}s  transitioned to {s.topology.value.upper()}+"
          f"{'SC' if s.consistency is Consistency.STRONG else 'EC'} "
          f"(epoch {dep.map.epoch})")

    print(f"writer: {outcomes['ok']} ok, {outcomes['failed']} failed during 2 live transitions")

    # verify: a fresh client reads every task back, strongly
    reader = dep.client("verifier")
    sim.run_future(reader.connect())
    missing = 0
    for i in range(400):
        try:
            value = sim.run_future(reader.get(f"task{i:04d}"))
            assert value == f"state{i}"
        except Exception:  # noqa: BLE001
            missing += 1
    print(f"verification: {400 - missing}/400 tasks present under the new regime")


if __name__ == "__main__":
    main()
