#!/usr/bin/env python3
"""App C-C use case: hot-key load balancing with shadow replication.

A viral key ("celebrity post") draws half of all reads, pinning one
shard while the rest idle.  The hot-key-aware client detects the skew,
replicates the key onto shadow servers (rehashed by key suffix), and
spreads subsequent reads — the paper's client-side fix for load
imbalance.  Host-utilization stats show the imbalance collapsing.

Run:  python examples/hotkey_loadbalance.py
"""

from repro.client import HotKeyReplicatingClient
from repro.core.types import Consistency, Topology
from repro.harness import Deployment, DeploymentSpec


def drive(client, sim, reads=600):
    for i in range(reads):
        key = "viral-post" if i % 2 == 0 else f"user{i % 200:08d}"
        try:
            sim.run_future(client.get(key))
        except Exception:  # noqa: BLE001 - cold keys miss
            pass


def shard_cpu_shares(dep, since=None):
    """Fraction of datalet-host CPU burned per shard (grouped by the
    host naming scheme node{shard}.{replica})."""
    since = since or {}
    per_shard = {}
    for name, host in dep.cluster._hosts.items():
        if not name.startswith("node"):
            continue
        shard = name.split(".")[0][len("node"):]
        busy = host.cpu.busy_time - since.get(name, 0.0)
        per_shard[shard] = per_shard.get(shard, 0.0) + busy
    total = sum(per_shard.values()) or 1.0
    return {s: b / total for s, b in per_shard.items()}


def main() -> None:
    dep = Deployment(
        DeploymentSpec(shards=6, replicas=3, topology=Topology.MS,
                       consistency=Consistency.EVENTUAL)
    )
    dep.start()
    sim = dep.sim

    seed = dep.client("seeder")
    sim.run_future(seed.connect())
    sim.run_future(seed.put("viral-post", "cat video"))
    for i in range(200):
        sim.run_future(seed.put(f"user{i:08d}", f"profile{i}"))
    sim.run_until(sim.now + 1.0)

    # --- plain client: one shard absorbs half of all reads -------------
    plain = dep.client("plain")
    sim.run_future(plain.connect())
    window0 = {h: host.cpu.busy_time for h, host in dep.cluster._hosts.items()}
    drive(plain, sim)
    shares = shard_cpu_shares(dep, since=window0)
    print(f"plain client: hottest shard absorbs {max(shares.values()):.0%} "
          f"of datalet CPU (fair share would be {1 / len(shares):.0%})")

    # --- hot-key client: shadows spread the viral key -------------------
    hot = HotKeyReplicatingClient(dep.client("hotaware"), threshold=32, n_shadows=3)
    sim.run_future(hot.connect())
    window1 = {h: host.cpu.busy_time for h, host in dep.cluster._hosts.items()}
    drive(hot, sim)
    shares_after = shard_cpu_shares(dep, since=window1)
    print(f"hot-key client: promoted {hot.promotions} key(s), "
          f"{hot.shadow_reads} reads served by shadows")
    print(f"hot-key client: hottest shard absorbs {max(shares_after.values()):.0%} "
          f"of datalet CPU")
    shards = {hot.inner.shard_for('viral-post').shard_id} | {
        hot.inner.shard_for(hot.shadow_key('viral-post', i)).shard_id for i in range(3)
    }
    print(f"'viral-post' now lives on shards: {sorted(shards)}")


if __name__ == "__main__":
    main()
