#!/usr/bin/env python3
"""§VI-B use case: a distributed cache for deep-learning training.

Training ingests the whole dataset every epoch in shuffled order; on a
parallel file system the many-small-file read pattern starves the
GPUs.  This example stands up a BESPOKV AA+EC cache on tHT datalets
with the DPDK fabric, loads an image dataset into it, and compares
epoch ingest rate against the modeled PFS path — the paper reports 4x
(40 vs 10 images/s).

Run:  python examples/dl_cache.py
"""

from repro.core.config import ControlConfig
from repro.core.types import Consistency, Topology
from repro.harness import Deployment, DeploymentSpec
from repro.harness.loadgen import preload
from repro.net.actor import Actor
from repro.net.dpdk import dpdk_net_params
from repro.net.simnet import SimCluster
from repro.workloads import DLIngestWorkload

WORKERS = 16
IMAGES = 2000
#: per-small-file cost on the PFS metadata path (metadata RPC + open +
#: tiny read) — ~4x a cache hit's total cost, per the paper's 4x gap.
PFS_SMALL_FILE_COST = 35e-6


class PFS(Actor):
    """Parallel-file-system stand-in: one metadata-bottlenecked service."""

    def __init__(self):
        super().__init__("pfs")
        self.register("get", lambda m: self.respond(m, "value", {"val": "x"}))

    def service_demand(self, msg, costs) -> float:
        return PFS_SMALL_FILE_COST * costs.cpu_scale


def epoch_over_pfs(wl: DLIngestWorkload) -> float:
    cluster = SimCluster()
    cluster.add_host("pfs", cpus=4)
    cluster.add_actor(PFS(), host="pfs")
    ports = [cluster.add_port(f"w{i}") for i in range(WORKERS)]
    cluster.start()
    records = [op[1] for op in wl.epoch_ops()]

    def worker(port, recs):
        for rec in recs:
            yield port.request("pfs", "get", {"key": rec}, timeout=60.0)

    futs = [cluster.sim.spawn(worker(p, records[i::WORKERS])) for i, p in enumerate(ports)]
    cluster.sim.run_future(cluster.sim.gather(futs))
    return IMAGES / cluster.sim.now


def epoch_over_cache(wl: DLIngestWorkload) -> float:
    dep = Deployment(
        DeploymentSpec(
            shards=4, replicas=3,
            topology=Topology.AA, consistency=Consistency.EVENTUAL,
            datalet_kinds=("ht",),
            net_params=dpdk_net_params(), dpdk=True,
            control=ControlConfig(),
        )
    )
    dep.start()
    sim = dep.sim
    preload(dep, {op[1]: op[2] for op in wl.load_ops()})
    clients = [dep.client(f"w{i}") for i in range(WORKERS)]
    for c in clients:
        sim.run_future(c.connect())
    records = [op[1] for op in wl.epoch_ops()]
    start = sim.now

    def worker(client, recs):
        for rec in recs:
            yield client.get(rec)

    futs = [sim.spawn(worker(c, records[i::WORKERS])) for i, c in enumerate(clients)]
    sim.run_future(sim.gather(futs))
    return IMAGES / (sim.now - start)


def main() -> None:
    wl = DLIngestWorkload(images=IMAGES, batch=4, record_bytes=4096, seed=3)
    print(f"dataset: {IMAGES} images in {len(wl.records)} records, "
          f"{WORKERS} data-loader workers")
    pfs_rate = epoch_over_pfs(wl)
    cache_rate = epoch_over_cache(wl)
    print(f"epoch over PFS model     : {pfs_rate:8,.0f} images/s")
    print(f"epoch over BESPOKV cache : {cache_rate:8,.0f} images/s")
    print(f"speedup                  : {cache_rate / pfs_rate:.1f}x  (paper: 4x)")


if __name__ == "__main__":
    main()
