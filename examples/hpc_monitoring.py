#!/usr/bin/env python3
"""§VI-A use case: Lustre monitoring + I/O load-balancing analytics with
polyglot persistence.

A monitoring pipeline ingests time-series stats from Lustre components
(MDS/OSS/OST/MDT) — a write-dominated stream — while an analytics model
reads samples back to predict I/O load.  BESPOKV stores the *replicas
of each pair in different engines* (MS+EC):

* master  = LSM tree   (fast ingest),
* slave 1 = B+-tree    (fast analytical reads, range scans),
* slave 2 = append log (cheap durable history).

The analytics reader pins its GETs to the B+-tree replica with the
client library's ``prefer_kind`` — the paper's "multifaceted view on
shared data".

Run:  python examples/hpc_monitoring.py
"""

from repro.core.types import Consistency, Topology
from repro.harness import Deployment, DeploymentSpec
from repro.workloads import MonitoringTrace


def main() -> None:
    dep = Deployment(
        DeploymentSpec(
            shards=4,
            replicas=3,
            topology=Topology.MS,
            consistency=Consistency.EVENTUAL,
            datalet_kinds=("lsm", "mt", "log"),  # polyglot replicas
        )
    )
    dep.start()
    sim = dep.sim

    ingest = dep.client("probe-agents")
    analytics = dep.client("load-balancer")
    sim.run_future(ingest.connect())
    sim.run_future(analytics.connect())

    shard = dep.shard(0)
    print("replica engines:", {r.controlet: r.datalet_kind for r in shard.ordered()})

    # --- ingest phase: probes push monitored stats ---------------------
    trace = MonitoringTrace(samples=600, seed=7)
    t0 = sim.now
    futures = [ingest.put(op[1], op[2]) for op in trace.ops()]
    sim.run_future(sim.gather(futures))
    sim.run_until(sim.now + 1.0)  # let EC propagation settle
    print(f"ingested 600 samples in {sim.now - t0:.3f}s of cluster time")

    # --- analytics phase: the I/O load balancer reads back -------------
    reads = list(trace.analytics_ops(reads=300, seed=1))
    t0 = sim.now
    values = []
    for op in reads:
        values.append(sim.run_future(analytics.get(op[1], prefer_kind="mt")))
    dt = sim.now - t0
    print(f"analytics read 300 samples from the B+-tree replicas in {dt:.3f}s "
          f"({300 / dt:,.0f} reads/s)")

    # --- the same reads against the LSM master, for contrast ------------
    t0 = sim.now
    for op in reads:
        sim.run_future(analytics.get(op[1], prefer_kind="lsm"))
    dt_lsm = sim.now - t0
    print(f"same reads pinned to the LSM replicas: {dt_lsm:.3f}s "
          f"({300 / dt_lsm:,.0f} reads/s)")
    print(f"-> B+-tree replica serves analytics {dt_lsm / dt:.2f}x faster (Fig 6 shape)")

    # --- durable history: every sample also lives in the log replica ---
    log_replica = next(r for r in shard.ordered() if r.datalet_kind == "log")
    engine = dep.cluster.actor(log_replica.datalet).engine
    print(f"log replica {log_replica.datalet} holds {len(engine)} records "
          f"({engine.stats()['log_records']:.0f} log entries, "
          f"garbage ratio {engine.garbage_ratio():.2f})")


if __name__ == "__main__":
    main()
