"""Tests for the flow-control static passes and the Pump primitive.

The four passes (pump-liveness, backpressure, retry-idempotency,
config-epoch fencing) walk per-handler control-flow paths with RPC
callbacks and timer continuations inlined (``repro.analysis.cfg``).
The acceptance bar mirrors the commit-point analyzer's: the real tree
analyzes clean (including the cluster membership/migration layer), and
the three seeded defects in ``repro.analysis.flowdefects`` are each
caught by the exact rule they plant — through inherited production
machinery, not toy snippets.
"""

from pathlib import Path

from repro.analysis import package_root
from repro.analysis.commitpoints import Waiver
from repro.analysis.flow import (
    FLOW_INJECTION_SOURCES,
    FLOW_RULES,
    analyze_flow_sources,
    analyze_flow_tree,
)
from repro.core.controlet import Pump


def _read(rel: str):
    p = package_root() / rel
    return (rel, p.read_text())


def _by_rule(findings, rule):
    return [f for f in findings if f.rule == rule]


# ---------------------------------------------------------------------------
# Pump runtime semantics (the shape the static passes certify)
# ---------------------------------------------------------------------------
def test_pump_keeps_one_in_flight():
    issued = []
    dones = []

    def issue(item, done):
        issued.append(item)
        dones.append(done)

    pump = Pump(issue)
    pump.push("a")
    pump.push("b")
    pump.push("c")
    # only the head is in flight; the rest queue behind the busy flag
    assert issued == ["a"]
    assert pump.busy and len(pump) == 2
    dones[0]()  # completion releases the flag and re-enters the drain
    assert issued == ["a", "b"]
    dones[1]()
    dones[2]()
    assert issued == ["a", "b", "c"]
    assert not pump.busy and len(pump) == 0


def test_pump_requeue_front_keeps_fifo_under_retry():
    issued = []
    dones = []

    def issue(item, done):
        issued.append(item)
        dones.append(done)

    pump = Pump(issue)
    for item in ("x", "y", "z"):
        pump.push(item)
    # "x" failed: put it back at the head so younger items can't overtake
    pump.requeue_front(["x"])
    dones[0]()
    assert issued == ["x", "x"]
    dones[1]()
    assert issued == ["x", "x", "y"]


def test_pump_double_kick_is_harmless():
    issued = []

    def issue(item, done):
        issued.append(item)

    pump = Pump(issue)
    pump.push("a")
    pump.kick()
    pump.kick()
    assert issued == ["a"]  # busy flag rejects reentry, no double issue


# ---------------------------------------------------------------------------
# the real tree is clean
# ---------------------------------------------------------------------------
def test_tree_analyzes_clean():
    """Acceptance criterion: all four flow passes run clean over the
    repo — with zero waivers and zero pragmas spent on them."""
    findings = analyze_flow_tree()
    loud = [f for f in findings if not f.suppressed]
    assert not loud, "\n".join(f.format() for f in loud)


# ---------------------------------------------------------------------------
# seeded defects: each caught by the exact rule it plants
# ---------------------------------------------------------------------------
def test_seeded_leaky_pump_caught():
    findings = analyze_flow_sources(
        [_read(rel) for rel in FLOW_INJECTION_SOURCES])
    leaks = [f for f in _by_rule(findings, "pump-leak")
             if f.path.endswith("flowdefects.py") and not f.suppressed]
    assert len(leaks) == 1, "\n".join(f.format() for f in findings)
    # anchored at the acquisition the error arm never releases
    assert "_replay_busy" in leaks[0].message
    assert "_pump_replays" in leaks[0].message


def test_seeded_uncapped_requeue_caught():
    findings = analyze_flow_sources(
        [_read(rel) for rel in FLOW_INJECTION_SOURCES])
    in_defects = [f for f in findings
                  if f.path.endswith("flowdefects.py") and not f.suppressed]
    rules = {f.rule for f in in_defects}
    # the stash is both undrained and rid-stripped: two distinct rules
    assert "unbounded-buffer" in rules, in_defects
    assert "retry-no-dedup" in rules, in_defects
    stash_line = {f.line for f in in_defects
                  if f.rule in ("unbounded-buffer", "retry-no-dedup")}
    assert len(stash_line) == 1  # both anchor at the stash append


def test_seeded_stale_epoch_dual_route_caught():
    findings = analyze_flow_sources(
        [_read(rel) for rel in FLOW_INJECTION_SOURCES])
    hits = [f for f in _by_rule(findings, "ring-epoch")
            if f.path.endswith("flowdefects.py") and not f.suppressed]
    # the defect is loud twice over: the handler bypasses the
    # _install_shard fence, and the double-ring state (self._reshard,
    # self._old_ring) is written directly outside the fenced installers
    assert len(hits) == 3, "\n".join(f.format() for f in findings)
    msgs = "\n".join(f.message for f in hits)
    assert "_on_config_update" in msgs
    assert "_reshard" in msgs and "_old_ring" in msgs
    assert all("StaleEpochDualRoute" in f.message for f in hits)


def test_healthy_ancestry_stays_unflagged_alongside_defects():
    """The defect classes subclass real controlets; analyzing them
    together must not smear findings onto the healthy parents."""
    findings = analyze_flow_sources(
        [_read(rel) for rel in FLOW_INJECTION_SOURCES])
    loud = [f for f in findings if not f.suppressed]
    assert loud, "seeded defects vanished"
    assert all(f.path.endswith("flowdefects.py") for f in loud), (
        "\n".join(f.format() for f in loud))


# ---------------------------------------------------------------------------
# synthetic sources: rule-by-rule behavior
# ---------------------------------------------------------------------------
_EPOCH_BAD = '''\
class RingControlet:
    def __init__(self):
        self.shard = None
        self.config_epoch = 0

    def _on_config_update(self, msg):
        # BUG: installs whatever arrives, stale epochs included
        self.shard = msg.payload["shard"]
'''

_EPOCH_GOOD = '''\
class RingControlet:
    def __init__(self):
        self.shard = None
        self.config_epoch = 0

    def _install_shard(self, shard, epoch):
        if epoch <= self.config_epoch:
            return
        self.config_epoch = epoch
        self.shard = shard

    def _on_config_update(self, msg):
        self._install_shard(msg.payload["shard"], msg.payload["epoch"])
'''


def test_epoch_rule_flags_unfenced_ring_mutation():
    findings = analyze_flow_sources([("bad.py", _EPOCH_BAD)])
    hits = [f for f in _by_rule(findings, "ring-epoch") if not f.suppressed]
    assert hits, "\n".join(f.format() for f in findings)


def test_epoch_rule_accepts_fenced_install():
    findings = analyze_flow_sources([("good.py", _EPOCH_GOOD)])
    assert not [f for f in _by_rule(findings, "ring-epoch")
                if not f.suppressed]


_VIEW_BAD = '''\
class ClusterView:
    def __init__(self, cmap):
        self.map = cmap

    def install(self, state):
        # BUG: adopts any snapshot, including a lagging standby's
        self.map = state["map"]
        return True
'''

_VIEW_GOOD = '''\
class ClusterView:
    def __init__(self, cmap):
        self.map = cmap

    def install(self, state):
        if state["epoch"] < self.map.epoch:
            return False
        self.map = state["map"]
        return True
'''


def test_epoch_rule_requires_view_install_fence():
    findings = analyze_flow_sources([("view.py", _VIEW_BAD)])
    hits = [f for f in _by_rule(findings, "ring-epoch") if not f.suppressed]
    assert hits, "\n".join(f.format() for f in findings)
    assert "install" in hits[0].message


def test_epoch_rule_accepts_fenced_view_install():
    findings = analyze_flow_sources([("view.py", _VIEW_GOOD)])
    assert not [f for f in _by_rule(findings, "ring-epoch")
                if not f.suppressed]


_DROPPED_DONE = '''\
from repro.core.controlet import Pump

class ShipControlet:
    def __init__(self):
        self._frames = Pump(self._issue_frame)

    def _issue_frame(self, frame, done):
        def acked(resp, err):
            if err is None:
                done()
            # BUG: timeout arm drops done() -- the pump wedges

        self.call("peer", "replicate", frame, callback=acked)
'''


def test_pump_issue_dropping_done_is_flagged():
    findings = analyze_flow_sources([("ship.py", _DROPPED_DONE)])
    hits = [f for f in _by_rule(findings, "pump-leak") if not f.suppressed]
    assert hits, "\n".join(f.format() for f in findings)
    assert "done()" in hits[0].message


# ---------------------------------------------------------------------------
# suppression: pragmas and waivers on flow findings
# ---------------------------------------------------------------------------
def test_pragma_suppresses_flow_finding():
    # the bad source trips two findings (the unfenced mutation and the
    # _install_shard-bypassing override); a pragma above each line
    # silences both
    src = _EPOCH_BAD.replace(
        "    def _on_config_update(self, msg):",
        "    # lint: allow[ring-epoch]\n"
        "    def _on_config_update(self, msg):").replace(
        "        self.shard = msg.payload[\"shard\"]",
        "        # lint: allow[ring-epoch]\n"
        "        self.shard = msg.payload[\"shard\"]")
    findings = analyze_flow_sources([("bad.py", src)])
    hits = _by_rule(findings, "ring-epoch")
    assert hits and all(f.suppressed for f in hits)


def test_waiver_suppresses_and_documents_condition():
    waiver = Waiver(cls="RingControlet", rule="ring-epoch",
                    condition="single-epoch test rig",
                    reason="rig never reconfigures")
    findings = analyze_flow_sources([("bad.py", _EPOCH_BAD)],
                                    waivers=(waiver,))
    hits = _by_rule(findings, "ring-epoch")
    assert hits and all(f.suppressed for f in hits)
    # the audit trail rides in the message for --show-suppressed
    assert "single-epoch test rig" in hits[0].message
    assert "rig never reconfigures" in hits[0].message


def test_waiver_for_other_class_does_not_match():
    waiver = Waiver(cls="SomeOtherControlet", rule="ring-epoch",
                    condition="n/a", reason="n/a")
    findings = analyze_flow_sources([("bad.py", _EPOCH_BAD)],
                                    waivers=(waiver,))
    assert [f for f in _by_rule(findings, "ring-epoch") if not f.suppressed]


# ---------------------------------------------------------------------------
# wiring
# ---------------------------------------------------------------------------
def test_rule_names_are_stable():
    """CI pragmas and waivers key off these strings; renaming one
    silently un-suppresses every site that spelled the old name."""
    assert FLOW_RULES == ("pump-leak", "unbounded-buffer",
                         "unthrottled-replication", "retry-no-dedup",
                         "ring-epoch")


def test_injection_sources_exist():
    for rel in FLOW_INJECTION_SOURCES:
        assert (package_root() / rel).is_file(), rel
