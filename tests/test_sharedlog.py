"""Tests for the CORFU-style shared log."""

import pytest

from repro.errors import BespoError
from repro.net import SimCluster
from repro.sharedlog import LogEntry, SharedLog, SharedLogActor


def test_append_assigns_sequential_positions():
    log = SharedLog()
    entries = [log.append("w1", "put", f"k{i}", str(i)) for i in range(5)]
    assert [e.pos for e in entries] == [0, 1, 2, 3, 4]
    assert log.tail == 5


def test_read_back():
    log = SharedLog()
    log.append("w1", "put", "a", "1")
    e = log.read(0)
    assert (e.writer, e.op, e.key, e.value) == ("w1", "put", "a", "1")


def test_read_out_of_range():
    log = SharedLog()
    log.append("w", "put", "k", "v")
    with pytest.raises(BespoError):
        log.read(5)


def test_segment_rollover():
    log = SharedLog(segment_size=4)
    for i in range(10):
        log.append("w", "put", f"k{i}", str(i))
    assert len(log._segments) >= 3
    for i in range(10):
        assert log.read(i).key == f"k{i}"


def test_fetch_from_cursor_and_bound():
    log = SharedLog()
    for i in range(10):
        log.append("w", "put", f"k{i}", str(i))
    got = log.fetch_from(3, max_entries=4)
    assert [e.pos for e in got] == [3, 4, 5, 6]
    assert log.fetch_from(10) == []


def test_trim_discards_prefix():
    log = SharedLog(segment_size=3)
    for i in range(10):
        log.append("w", "put", f"k{i}", str(i))
    dropped = log.trim(7)
    assert dropped == 7
    assert log.base == 7
    assert len(log) == 3
    with pytest.raises(BespoError):
        log.read(6)
    assert log.read(8).key == "k8"
    # fetch below base silently starts at base
    assert [e.pos for e in log.fetch_from(0)] == [7, 8, 9]


def test_trim_beyond_tail_clamped():
    log = SharedLog()
    log.append("w", "put", "k", "v")
    assert log.trim(100) == 1
    assert len(log) == 0


def test_invalid_segment_size():
    with pytest.raises(BespoError):
        SharedLog(segment_size=0)


def test_entry_roundtrip_dict():
    e = LogEntry(3, "w", "del", "k", None)
    assert LogEntry.from_dict(e.to_dict()) == e


# ---------------------------------------------------------------------------
# actor over the network
# ---------------------------------------------------------------------------
def test_actor_append_fetch_trim():
    c = SimCluster()
    c.add_actor(SharedLogActor("log"))
    port = c.add_port("writer")
    c.start()

    run = lambda t, p: c.sim.run_future(port.request("log", t, p))
    assert run("log_append", {"op": "put", "key": "a", "val": "1"}).payload["pos"] == 0
    assert run("log_append", {"op": "put", "key": "b", "val": "2"}).payload["pos"] == 1
    resp = run("log_fetch", {"pos": 0})
    assert resp.payload["tail"] == 2
    entries = [LogEntry.from_dict(d) for d in resp.payload["entries"]]
    assert [e.key for e in entries] == ["a", "b"]
    assert run("log_trim", {"pos": 1}).payload["dropped"] == 1


def test_actor_concurrent_writers_get_total_order():
    c = SimCluster()
    c.add_actor(SharedLogActor("log"))
    w1, w2 = c.add_port("w1"), c.add_port("w2")
    c.start()
    futs = []
    for i in range(10):
        futs.append(w1.request("log", "log_append", {"op": "put", "key": f"a{i}", "val": "x"}))
        futs.append(w2.request("log", "log_append", {"op": "put", "key": f"b{i}", "val": "y"}))
    results = c.sim.run_future(c.sim.gather(futs))
    positions = sorted(r.payload["pos"] for r in results)
    assert positions == list(range(20))  # dense, no duplicates
