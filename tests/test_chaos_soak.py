"""Randomized chaos soak: determinism + all four combos survive faults.

These are the headline acceptance tests: every topology/consistency
combination is soaked with seeded random crashes, asymmetric
partitions, latency spikes, slow nodes and (for EC) duplicate/reorder
windows, and the matching consistency oracle must pass; the same seed
must reproduce the run bit-for-bit.
"""

from repro.chaos import run_combo, run_soak
from repro.chaos.runner import ALL_COMBOS
from repro.core.types import Consistency, Topology

SOAK_SEEDS = [1, 2, 3]


def test_same_seed_reproduces_run_bit_for_bit():
    a = run_combo(Topology.MS, Consistency.EVENTUAL, seed=5, duration=8.0)
    b = run_combo(Topology.MS, Consistency.EVENTUAL, seed=5, duration=8.0)
    assert a.digest == b.digest
    assert a.schedule.digest() == b.schedule.digest()
    assert a.stats == b.stats


def test_different_seeds_diverge():
    a = run_combo(Topology.MS, Consistency.EVENTUAL, seed=1, duration=8.0)
    b = run_combo(Topology.MS, Consistency.EVENTUAL, seed=2, duration=8.0)
    assert a.digest != b.digest


def test_soak_all_combos_multiple_seeds():
    report = run_soak(SOAK_SEEDS, duration=10.0)
    assert len(report.results) == len(SOAK_SEEDS) * len(ALL_COMBOS)
    assert report.ok, report.describe()
    # chaos actually happened: faults applied in every run, and at
    # least one run drove a real failover
    assert all(res.stats["faults"] > 0 for res in report.results)
    assert any(res.stats["failovers"] > 0 for res in report.results)
    assert all(res.stats["acked"] > 50 for res in report.results)


def test_reshard_soak_passes_oracle_and_reproduces():
    """A soak with two live cutovers (add at 25%, drain+remove at 60%)
    under the mild fault menu still satisfies the combo's consistency
    oracle, and the reshard outcomes are folded into the digest."""
    a = run_combo(Topology.AA, Consistency.STRONG, seed=1, duration=12.0,
                  reshard=True)
    assert a.ok, a.report.describe() if hasattr(a.report, "describe") else a
    assert a.stats["reshards"] == 2
    assert a.stats["keys_migrated"] > 0
    b = run_combo(Topology.AA, Consistency.STRONG, seed=1, duration=12.0,
                  reshard=True)
    assert a.digest == b.digest


def test_reshard_soak_eventual_combo():
    res = run_combo(Topology.MS, Consistency.EVENTUAL, seed=2, duration=12.0,
                    reshard=True)
    assert res.ok
    assert res.stats["reshards"] == 2
    assert res.stats["acked"] > 50


def test_failure_report_names_reproducing_seed():
    bad = run_combo(Topology.MS, Consistency.EVENTUAL, seed=3, duration=6.0)
    bad.report.violations.append("synthetic violation")
    from repro.chaos.runner import SoakReport

    report = SoakReport(results=[bad])
    text = report.describe()
    assert "FAIL" in text and "--seed 3" in text


def test_cli_chaos_subcommand(capsys):
    from repro.cli import main

    rc = main(["chaos", "--seed", "1", "--duration", "4", "--combo", "ms-ec"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "soak: PASS" in out
    assert "MS+EC seed=1" in out
