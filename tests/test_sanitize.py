"""Tests for the copy-on-send payload sanitizer (repro.net.sanitize)."""

import pytest

from repro.net.actor import Actor
from repro.net.sanitize import (
    FrozenDict,
    FrozenList,
    PayloadMutationError,
    PayloadSanitizer,
    canonical_digest,
    deep_freeze,
    deep_unfreeze,
)
from repro.net.simnet import SimCluster
from repro.sim import NetworkParams, Simulator


# ---------------------------------------------------------------------------
# frozen views
# ---------------------------------------------------------------------------
def test_frozen_dict_reads_like_a_dict_but_blocks_mutation():
    d = deep_freeze({"a": 1, "nested": {"b": [1, 2]}})
    assert isinstance(d, FrozenDict)
    assert d["a"] == 1
    assert len(d) == 2
    assert sorted(d) == ["a", "nested"]
    assert isinstance(d["nested"], FrozenDict)
    assert isinstance(d["nested"]["b"], FrozenList)
    assert d["nested"]["b"][1] == 2
    for mutate in (
        lambda: d.__setitem__("a", 2),
        lambda: d.pop("a"),
        lambda: d.update({"c": 3}),
        lambda: d.setdefault("c", 3),
        lambda: d.clear(),
        lambda: d["nested"]["b"].append(3),
        lambda: d["nested"].__delitem__("b"),
    ):
        with pytest.raises(PayloadMutationError):
            mutate()


def test_frozen_copy_is_the_mutable_escape_hatch():
    d = deep_freeze({"a": 1})
    c = d.copy()
    c["a"] = 2  # plain dict again
    assert c["a"] == 2 and d["a"] == 1
    l = deep_freeze([1, 2]).copy()
    l.append(3)
    assert l == [1, 2, 3]


def test_deep_unfreeze_round_trips():
    original = {"a": [1, {"b": 2}], "c": "x"}
    thawed = deep_unfreeze(deep_freeze(original))
    assert thawed == original
    thawed["a"].append(9)  # fully mutable again
    assert original["a"] == [1, {"b": 2}]


def test_canonical_digest_ignores_freezing_and_key_order():
    a = {"x": 1, "y": [1, 2, {"z": "v"}]}
    b = {"y": [1, 2, {"z": "v"}], "x": 1}
    assert canonical_digest(a) == canonical_digest(b)
    assert canonical_digest(deep_freeze(a)) == canonical_digest(a)
    assert canonical_digest({"x": 2}) != canonical_digest({"x": 1})
    # type-sensitive: 1 and "1" must not collide
    assert canonical_digest({"x": 1}) != canonical_digest({"x": "1"})


# ---------------------------------------------------------------------------
# fabric-boundary checks
# ---------------------------------------------------------------------------
def build_pair(sanitize=True):
    sim = Simulator()
    cluster = SimCluster(sim=sim, net_params=NetworkParams(jitter_frac=0.0))
    sink = Actor("sink")
    seen = []
    sink.register("ping", lambda m: seen.append(m.payload))
    cluster.add_actor(sink)
    src = Actor("src")
    cluster.add_actor(src)
    sanitizer = cluster.attach_sanitizer() if sanitize else None
    cluster.start()
    return sim, cluster, src, sink, seen, sanitizer


def test_receiver_mutation_raises_at_the_mutating_line():
    sim, cluster, src, sink, seen, sanitizer = build_pair()
    sink.register("stash", lambda m: m.payload.update({"hacked": True}))
    src.send("sink", "stash", {"a": 1})
    with pytest.raises(PayloadMutationError):
        sim.run()
    assert sanitizer.deliveries >= 1


def test_sender_mutating_in_flight_payload_is_a_digest_violation():
    sim, cluster, src, sink, seen, sanitizer = build_pair()
    payload = {"a": 1}
    src.send("sink", "ping", payload)
    payload["a"] = 2  # mutated while the message is on the wire
    with pytest.raises(PayloadMutationError):
        sim.run()
    assert sanitizer.violations == [("src", "sink", "ping")]


def test_clean_traffic_passes_and_is_frozen_on_arrival():
    sim, cluster, src, sink, seen, sanitizer = build_pair()
    src.send("sink", "ping", {"a": 1, "l": [1, 2]})
    sim.run()
    assert len(seen) == 1
    assert isinstance(seen[0], FrozenDict)
    assert seen[0]["a"] == 1
    assert sanitizer.violations == []
    assert sanitizer.sends == 1 and sanitizer.deliveries == 1


def test_without_sanitizer_aliasing_stays_invisible():
    """The control case: reference-passing hides the same bug."""
    sim, cluster, src, sink, seen, _ = build_pair(sanitize=False)
    payload = {"a": 1}
    src.send("sink", "ping", payload)
    payload["a"] = 2
    sim.run()
    assert seen[0]["a"] == 2  # the receiver saw the impossible rewrite
