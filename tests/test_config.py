"""Tests for control-plane configuration and the artifact file formats."""

import json

import pytest

from repro.core.config import (
    ControlConfig,
    load_deployment_config,
    parse_datalet_hosts,
)
from repro.core.types import Consistency, Topology
from repro.errors import ConfigError


# ---------------------------------------------------------------------------
# ControlConfig
# ---------------------------------------------------------------------------
def test_control_config_defaults_valid():
    cfg = ControlConfig()
    assert cfg.heartbeat_interval > 0
    assert cfg.failure_timeout > cfg.heartbeat_interval


@pytest.mark.parametrize(
    "field",
    ["heartbeat_interval", "failure_timeout", "replication_timeout",
     "ec_batch_interval", "log_fetch_interval", "lock_lease"],
)
def test_control_config_rejects_nonpositive(field):
    with pytest.raises(ConfigError):
        ControlConfig(**{field: 0.0})


def test_control_config_rejects_bad_batch():
    with pytest.raises(ConfigError):
        ControlConfig(ec_batch_max=0)
    with pytest.raises(ConfigError):
        ControlConfig(log_fetch_max=0)


def test_control_config_frozen():
    cfg = ControlConfig()
    with pytest.raises(AttributeError):
        cfg.heartbeat_interval = 9


# ---------------------------------------------------------------------------
# deployment JSON (artifact appendix format)
# ---------------------------------------------------------------------------
ARTIFACT_JSON = {
    "zk": "192.168.0.173:2181",
    "mq": "192.168.0.173:9092",
    "consistency_model": "strong",
    "consistency_tech": "cr",
    "topology": "ms",
    "num_replicas": "2",
}


def test_load_artifact_example():
    cfg = load_deployment_config(dict(ARTIFACT_JSON))
    assert cfg.topology is Topology.MS
    assert cfg.consistency is Consistency.STRONG
    assert cfg.consistency_tech == "cr"
    # num_replicas excludes the master; total = 3
    assert cfg.num_replicas == 3
    assert cfg.coordinator == "192.168.0.173:2181"
    assert cfg.extras["mq"] == "192.168.0.173:9092"


def test_load_from_json_string():
    cfg = load_deployment_config(json.dumps({"topology": "aa"}))
    assert cfg.topology is Topology.AA
    assert cfg.consistency is Consistency.EVENTUAL  # default


def test_load_from_file(tmp_path):
    p = tmp_path / "c1.json"
    p.write_text(json.dumps(ARTIFACT_JSON))
    assert load_deployment_config(p).topology is Topology.MS


def test_load_rejects_bad_topology():
    with pytest.raises(ConfigError):
        load_deployment_config({"topology": "ring"})
    with pytest.raises(ConfigError):
        load_deployment_config({})


def test_load_rejects_bad_consistency():
    with pytest.raises(ConfigError):
        load_deployment_config({"topology": "ms", "consistency_model": "linearizable"})


def test_load_rejects_bad_replicas():
    with pytest.raises(ConfigError):
        load_deployment_config({"topology": "ms", "num_replicas": "two"})
    with pytest.raises(ConfigError):
        load_deployment_config({"topology": "ms", "num_replicas": "-1"})


def test_load_rejects_bad_json():
    with pytest.raises(ConfigError):
        load_deployment_config("{not json")


def test_load_datalet_kinds():
    cfg = load_deployment_config({"topology": "ms", "datalet_kinds": ["lsm", "mt"]})
    assert cfg.datalet_kinds == ["lsm", "mt"]
    with pytest.raises(ConfigError):
        load_deployment_config({"topology": "ms", "datalet_kinds": []})


# ---------------------------------------------------------------------------
# datalet host file (artifact format)
# ---------------------------------------------------------------------------
HOSTFILE = """\
# 0: master; 1: slave
192.168.0.171:11111:0
192.168.0.171:11112:1
192.168.0.171:11113:1
"""


def test_parse_hostfile():
    hosts = parse_datalet_hosts(HOSTFILE)
    assert hosts == [
        ("192.168.0.171", 11111, "master"),
        ("192.168.0.171", 11112, "slave"),
        ("192.168.0.171", 11113, "slave"),
    ]


def test_parse_hostfile_blank_and_comments():
    assert parse_datalet_hosts("\n  # just a comment\n\n") == []


def test_parse_hostfile_errors():
    with pytest.raises(ConfigError):
        parse_datalet_hosts("10.0.0.1:1234")  # missing role
    with pytest.raises(ConfigError):
        parse_datalet_hosts("10.0.0.1:abc:0")  # bad port
    with pytest.raises(ConfigError):
        parse_datalet_hosts("10.0.0.1:1234:2")  # bad role
